"""E12 — the ESR trade-off behind epsilon specifications (§3.2).

"Divergence control algorithms allow limited non-serializable
conflicts between updates and the epsilon query to happen, to increase
system execution flexibility and concurrency."

A SUM epsilon query scans 2k accounts in chunks while 60 conflicting
update transactions ask to run. Sweep ε: admitted concurrency rises
with ε while the answer's error stays within the imported divergence,
which stays within ε — the quantitative version of the bank manager's
"could contain errors up to half a million and still return a
meaningful result".
"""

import random

import pytest

from repro import Database
from repro.esr.divergence import EpsilonScan, UpdateIntent
from repro.relational import AttributeType

ACCOUNTS = 2_000
INTENTS = 60
EPSILONS = [0.0, 500.0, 5_000.0, 50_000.0, 10**9]


def build(seed=121):
    rng = random.Random(seed)
    db = Database()
    accounts = db.create_table(
        "accounts",
        [("owner", AttributeType.STR), ("amount", AttributeType.INT)],
    )
    tids = accounts.insert_many(
        (f"c{i}", rng.randrange(100, 1000)) for i in range(ACCOUNTS)
    )
    return db, accounts, tids


def make_intents(tids, seed=122):
    rng = random.Random(seed)
    # Target the front half of the scan so conflicts are plentiful.
    return [
        UpdateIntent().modify(
            tids[rng.randrange(len(tids) // 2)],
            {"amount": rng.randrange(100, 2_000)},
        )
        for __ in range(INTENTS)
    ]


def run_once(epsilon, seed=121):
    db, accounts, tids = build(seed)
    scan = EpsilonScan(db, accounts, "amount", epsilon, chunk_size=200)
    return scan.run(make_intents(tids))


def test_concurrency_precision_tradeoff(print_table, benchmark):
    rows = []
    reports = {}
    for epsilon in EPSILONS:
        report = run_once(epsilon)
        reports[epsilon] = report
        rows.append(
            {
                "epsilon": epsilon if epsilon < 10**9 else "inf",
                "admitted": report.admitted,
                "deferred": report.deferred_final,
                "imported": report.imported,
                "answer_error": report.error,
                "bound_holds": report.error <= report.imported <= epsilon + 1e-9,
            }
        )
    print_table(rows, title="E12: ESR concurrency vs precision")

    # Monotone concurrency in epsilon.
    admitted = [reports[e].admitted for e in EPSILONS]
    assert admitted == sorted(admitted)
    # Serializable at epsilon 0 (exact answer, conflicts deferred).
    assert reports[0.0].error == 0
    assert reports[0.0].deferred_final > 0
    # Fully concurrent at epsilon = inf.
    assert reports[10**9].deferred_final == 0
    # The ESR guarantee at every point.
    for epsilon in EPSILONS:
        report = reports[epsilon]
        assert report.error <= report.imported + 1e-9
        assert report.imported <= epsilon + 1e-9
    benchmark(lambda: run_once(5_000.0))


@pytest.mark.parametrize("epsilon", [0.0, 5_000.0])
def test_scan_cost(benchmark, epsilon):
    benchmark.group = "e12 scan"
    benchmark(lambda: run_once(epsilon))
