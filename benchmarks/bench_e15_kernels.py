"""E15 — columnar Z-set kernels: batch-at-a-time term evaluation must
beat the per-row interpreter by a widening margin as deltas grow.

Three workload mixes run through the real deployment path
(:func:`repro.dra.algorithm.dra_execute` with a live ``Metrics`` bag,
prepared plans, maintained join indexes):

* **filter-heavy** — single-table selection, spec-compiled local
  predicate; measures the vectorized seed filter.
* **join-heavy** — a 4-way star join (orders ⋈ customers ⋈ products ⋈
  stores) under a modify-heavy delta; measures grouped probing, fused
  residuals, and the batched attach cascade.
* **aggregate** — a grouped SUM over a join core, refreshed through
  :class:`repro.dra.aggregates.DifferentialAggregate`; measures the
  kernels feeding the aggregate state machine.

Each mix runs at three delta tiers (≈1k/10k/100k signed rows); both
evaluators consume identical consolidated deltas and their results are
asserted equal before anything is timed. Timings are min-of-reps
wall-clock converted to delta rows/second.

Run ``python benchmarks/bench_e15_kernels.py --smoke`` for the CI
self-check: it verifies row/columnar equivalence on every mix, runs
the 1k and 10k tiers, asserts the columnar evaluator clears ≥3x
rows/sec on the join-heavy mix at the 10k tier, and writes the
measurement record to ``BENCH_e15.json``.
"""

import json
import random
import sys
import time

from repro import Database
from repro.delta.capture import deltas_since
from repro.dra import dra_execute, prepare_cq
from repro.dra.aggregates import DifferentialAggregate
from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query

INT = AttributeType.INT

#: delta tier name -> approximate signed-row count of the orders delta.
TIERS = {"1k": 1_000, "10k": 10_000, "100k": 100_000}


# -- scenario builders --------------------------------------------------------


def build_star(delta_rows, seed=15):
    """The join-heavy star: a fact table over three dimensions, with a
    modify-heavy delta (80% amount ticks, 10% inserts, 10% deletes)."""
    rng = random.Random(seed)
    db = Database()
    orders = db.create_table(
        "orders",
        [("oid", INT), ("cid", INT), ("pid", INT), ("sid", INT), ("amt", INT)],
    )
    customers = db.create_table("customers", [("cid", INT), ("seg", INT)])
    products = db.create_table("products", [("pid", INT), ("price", INT)])
    stores = db.create_table("stores", [("sid", INT), ("region", INT)])
    customers.insert_many([(c, rng.randint(0, 9)) for c in range(2000)])
    products.insert_many([(p, rng.randint(1, 999)) for p in range(500)])
    stores.insert_many([(s, rng.randint(0, 99)) for s in range(100)])
    base = max(2 * delta_rows, 2000)
    for o in range(base):
        orders.insert(
            (
                o,
                rng.randint(0, 1999),
                rng.randint(0, 499),
                rng.randint(0, 99),
                rng.randint(0, 999),
            )
        )
    since = db.now()
    tids = list(orders.current.tids())
    n_mod = int(delta_rows * 0.8)
    n_ins = n_del = delta_rows // 10
    with db.begin() as txn:
        for tid in rng.sample(tids, n_mod):
            v = orders.current.get(tid)
            txn.modify_in(
                orders, tid, (v[0], v[1], v[2], v[3], rng.randint(0, 999))
            )
        for o in range(base, base + n_ins):
            txn.insert_into(
                orders,
                (
                    o,
                    rng.randint(0, 1999),
                    rng.randint(0, 499),
                    rng.randint(0, 99),
                    rng.randint(0, 999),
                ),
            )
        for tid in rng.sample(tids, n_del):
            txn.delete_from(orders, tid)
    tables = [orders, customers, products, stores]
    return db, tables, since


JOIN_SQL = (
    "SELECT orders.oid, orders.amt, customers.seg, products.price, "
    "stores.region FROM orders, customers, products, stores "
    "WHERE orders.cid = customers.cid AND orders.pid = products.pid "
    "AND orders.sid = stores.sid AND orders.amt > 100 "
    "AND products.price < 800 AND stores.region < 90 "
    "AND customers.seg < products.price"
)

AGG_SQL = (
    "SELECT customers.seg, SUM(orders.amt) AS total "
    "FROM orders, customers "
    "WHERE orders.cid = customers.cid AND orders.amt > 100 "
    "GROUP BY customers.seg"
)


def build_filter(delta_rows, seed=16):
    """The filter-heavy mix: one wide table, range-filtered selection."""
    rng = random.Random(seed)
    db = Database()
    events = db.create_table(
        "events", [("eid", INT), ("kind", INT), ("value", INT)]
    )
    base = max(2 * delta_rows, 2000)
    for e in range(base):
        events.insert((e, rng.randint(0, 9), rng.randint(0, 9999)))
    since = db.now()
    tids = list(events.current.tids())
    n_mod = int(delta_rows * 0.5)
    n_ins = delta_rows - n_mod
    with db.begin() as txn:
        for tid in rng.sample(tids, n_mod):
            v = events.current.get(tid)
            txn.modify_in(events, tid, (v[0], v[1], rng.randint(0, 9999)))
        for e in range(base, base + n_ins):
            txn.insert_into(events, (e, rng.randint(0, 9), rng.randint(0, 9999)))
    return db, [events], since


FILTER_SQL = "SELECT eid, kind, value FROM events WHERE value > 2500"


# -- measurement --------------------------------------------------------------


def _time_pair(row_fn, col_fn, reps):
    """Min-of-reps wall-clock for both evaluators, interleaved.

    Alternating row/col within each rep means a drifting CPU (thermal
    or noisy-neighbour frequency swings) biases both sides equally
    instead of whichever happened to run in the slow phase.
    """
    row_best = col_best = float("inf")
    for __ in range(reps):
        t0 = time.perf_counter()
        row_fn()
        row_best = min(row_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        col_fn()
        col_best = min(col_best, time.perf_counter() - t0)
    return row_best, col_best


def measure_spj(sql, db, tables, since, reps):
    """Row vs columnar through dra_execute; asserts equal deltas."""
    query = parse_query(sql)
    prepared = prepare_cq(query, db)
    deltas = deltas_since(tables, since)
    delta_rows = sum(len(d) for d in deltas.values())

    def run(columnar):
        return dra_execute(
            query,
            db,
            deltas=deltas,
            prepared=prepared,
            ts=99,
            metrics=Metrics(),
            columnar=columnar,
        )

    row_result = run(False)
    col_result = run(True)
    assert col_result.delta == row_result.delta, "columnar result diverged"
    row_s, col_s = _time_pair(lambda: run(False), lambda: run(True), reps)
    return delta_rows, row_s, col_s


def measure_aggregate(db, tables, since, reps):
    """Row vs columnar through DifferentialAggregate.update."""
    query = parse_query(AGG_SQL)
    prepared = prepare_cq(query.core, db)
    deltas = deltas_since(tables, since)
    delta_rows = sum(len(d) for d in deltas.values())
    now = db.now()

    def run(columnar):
        """Returns (update seconds, aggregate delta). Initialization is
        a full evaluation identical for both evaluators, so it happens
        outside the timed region; only the differential fold — the part
        the kernels accelerate — is measured."""
        state = DifferentialAggregate(query, db)
        state.initialize()
        t0 = time.perf_counter()
        delta = state.update(
            deltas, now, Metrics(), prepared=prepared, columnar=columnar
        )
        return time.perf_counter() - t0, delta

    # Each run folds the captured window into a freshly initialized
    # state, so reps are independent; the fold's core differential (the
    # part the kernels accelerate) dominates. Both evaluators must
    # agree on the produced aggregate delta.
    __, row_delta = run(False)
    __, col_delta = run(True)
    assert col_delta == row_delta, "columnar aggregate delta diverged"
    row_s = col_s = float("inf")
    for __ in range(reps):
        row_s = min(row_s, run(False)[0])
        col_s = min(col_s, run(True)[0])
    return delta_rows, row_s, col_s


def run_mix(mix, tier, reps):
    delta_rows = TIERS[tier]
    if mix == "join-heavy":
        db, tables, since = build_star(delta_rows)
        n, row_s, col_s = measure_spj(JOIN_SQL, db, tables, since, reps)
    elif mix == "filter-heavy":
        db, tables, since = build_filter(delta_rows)
        n, row_s, col_s = measure_spj(FILTER_SQL, db, tables, since, reps)
    elif mix == "aggregate":
        db, tables, since = build_star(delta_rows)
        n, row_s, col_s = measure_aggregate(db, tables, since, reps)
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(mix)
    return {
        "mix": mix,
        "tier": tier,
        "delta_rows": n,
        "row_ms": round(row_s * 1000, 3),
        "col_ms": round(col_s * 1000, 3),
        "row_rows_per_s": round(n / row_s),
        "col_rows_per_s": round(n / col_s),
        "speedup": round(row_s / col_s, 3),
    }


def sweep(tiers, reps, out_path):
    rows = []
    for mix in ("filter-heavy", "join-heavy", "aggregate"):
        for tier in tiers:
            rows.append(run_mix(mix, tier, reps))
            r = rows[-1]
            print(
                f"{r['mix']:>13} {r['tier']:>5}: "
                f"row {r['row_ms']:9.1f} ms  col {r['col_ms']:9.1f} ms  "
                f"speedup {r['speedup']:5.2f}x  ({r['delta_rows']} delta rows)"
            )
    record = {"experiment": "e15_kernels", "tiers": list(tiers), "rows": rows}
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI self-check: 1k+10k tiers, asserts the join-heavy "
        "10k speedup >= 3x, writes BENCH_e15.json",
    )
    parser.add_argument(
        "--full", action="store_true", help="include the 100k tier"
    )
    parser.add_argument(
        "--reps", type=int, default=7, help="timing repetitions (min taken)"
    )
    parser.add_argument(
        "--out", default="BENCH_e15.json", help="measurement record path"
    )
    args = parser.parse_args(argv)
    if not (args.smoke or args.full):
        parser.error("pass --smoke (CI check) or --full (all tiers)")
    tiers = ("1k", "10k", "100k") if args.full else ("1k", "10k")
    record = sweep(tiers, args.reps, args.out)
    if args.smoke:
        by_key = {(r["mix"], r["tier"]): r for r in record["rows"]}
        gate = by_key[("join-heavy", "10k")]
        assert gate["speedup"] >= 3.0, (
            f"columnar join-heavy speedup regressed: {gate['speedup']:.2f}x "
            f"< 3x at the 10k tier"
        )
        # Every mix must at least not lose to the row evaluator.
        for r in record["rows"]:
            assert r["speedup"] >= 1.0, (
                f"{r['mix']}@{r['tier']} columnar slower than row path: "
                f"{r['speedup']:.2f}x"
            )
        print("e15 smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
