"""E1 — §5.1 ¶1: "DRA processing ... will be much faster, reducing both
I/O and CPU requirements", because results (and deltas) are much
smaller than base data.

Fixed update batch (50 ops), base relation swept 1k -> 50k rows.
Claim shape: complete re-evaluation work grows linearly with |R|;
DRA work depends only on |Δ| and is independent of |R|.
"""

import pytest

from repro.bench.harness import time_fn
from repro.delta.diff import diff
from repro.dra.algorithm import dra_execute
from repro.metrics import Metrics
from repro.relational import parse_query

from conftest import Scenario

WATCH = parse_query("SELECT sid, name, price FROM stocks WHERE price > 800")
SIZES = [1_000, 10_000, 50_000]
UPDATES = 50


@pytest.fixture(scope="module")
def scenarios():
    return {size: Scenario(size, UPDATES, seed=size) for size in SIZES}


def dra_once(scenario, metrics=None):
    return dra_execute(
        WATCH, scenario.db, deltas=scenario.deltas, ts=99, metrics=metrics
    )


def reeval_once(scenario, previous, metrics=None):
    from repro.relational.evaluate import evaluate_spj

    new = evaluate_spj(WATCH, scenario.db.relation, metrics)
    return diff(previous, new, 99)


class TestClaimShape:
    def test_dra_work_independent_of_base_size(
        self, scenarios, print_table, benchmark
    ):
        rows = []
        dra_delta_reads = {}
        reeval_scans = {}
        for size in SIZES:
            scenario = scenarios[size]
            metrics = Metrics()
            dra_once(scenario, metrics)
            dra_delta_reads[size] = metrics[Metrics.DELTA_ROWS_READ]
            assert metrics[Metrics.ROWS_SCANNED] == 0, "DRA must not scan base"
            metrics2 = Metrics()
            previous = scenario.old_resolver()("stocks")  # just for the diff
            from repro.relational.evaluate import evaluate_spj

            prev_result = evaluate_spj(WATCH, scenario.old_resolver())
            reeval_once(scenario, prev_result, metrics2)
            reeval_scans[size] = metrics2[Metrics.ROWS_SCANNED]
            rows.append(
                {
                    "base_rows": size,
                    "dra_delta_rows": dra_delta_reads[size],
                    "dra_base_scanned": 0,
                    "reeval_rows_scanned": reeval_scans[size],
                }
            )
        print_table(rows, title="E1: work vs base size (counts)")
        # DRA work flat in |R|; re-evaluation linear in |R|.
        assert dra_delta_reads[SIZES[0]] == dra_delta_reads[SIZES[-1]]
        assert reeval_scans[SIZES[-1]] == len(scenarios[SIZES[-1]].market.stocks)
        assert reeval_scans[SIZES[-1]] >= 45 * reeval_scans[SIZES[0]]
        benchmark(lambda: dra_once(scenarios[SIZES[-1]]))

    def test_results_equal_despite_strategy(self, scenarios, benchmark):
        scenario = scenarios[SIZES[1]]
        from repro.relational.evaluate import evaluate_spj

        prev_result = evaluate_spj(WATCH, scenario.old_resolver())
        expected = reeval_once(scenario, prev_result)
        got = benchmark(lambda: dra_once(scenario).delta)
        assert got == expected


@pytest.mark.parametrize("size", SIZES)
def test_dra_refresh(benchmark, scenarios, size):
    benchmark.group = f"e1 base={size}"
    benchmark(lambda: dra_once(scenarios[size]))


@pytest.mark.parametrize("size", SIZES)
def test_reeval_refresh(benchmark, scenarios, size):
    benchmark.group = f"e1 base={size}"
    scenario = scenarios[size]
    from repro.relational.evaluate import evaluate_spj

    prev_result = evaluate_spj(WATCH, scenario.old_resolver())
    benchmark(lambda: reeval_once(scenario, prev_result))
