"""E7 — §4.2/4.3: DRA is functionally equivalent to complete
re-evaluation (Propagate) — and cheaper.

Every benchmark round both computes the DRA delta and asserts it equals
the Propagate delta over the same consolidated update window, across
selection, join, and aggregate query shapes.
"""

import pytest

from repro.delta.propagate import propagate
from repro.dra.algorithm import dra_execute
from repro.relational import parse_query

from conftest import Scenario

SELECT_Q = parse_query("SELECT sid, name, price FROM stocks WHERE price > 700")
JOIN_Q = parse_query(
    "SELECT s.name, t.shares FROM stocks s, trades t "
    "WHERE s.sid = t.sid AND s.price > 700"
)


@pytest.fixture(scope="module")
def select_scenario():
    return Scenario(5_000, updates=100, seed=71)


@pytest.fixture(scope="module")
def join_scenario():
    return Scenario(
        2_000, updates=100, seed=72, with_trades=True, trades_per_stock=2
    )


def test_select_equivalence(select_scenario, benchmark):
    scenario = select_scenario
    expected = propagate(SELECT_Q, scenario.db.relation, scenario.deltas, ts=9)
    got = benchmark(
        lambda: dra_execute(
            SELECT_Q, scenario.db, deltas=scenario.deltas, ts=9
        ).delta
    )
    assert got == expected
    assert not got.is_empty()


def test_join_equivalence(join_scenario, benchmark):
    scenario = join_scenario
    expected = propagate(JOIN_Q, scenario.db.relation, scenario.deltas, ts=9)
    got = benchmark(
        lambda: dra_execute(
            JOIN_Q, scenario.db, deltas=scenario.deltas, ts=9
        ).delta
    )
    assert got == expected


def test_select_propagate_baseline(select_scenario, benchmark):
    scenario = select_scenario
    benchmark(
        lambda: propagate(SELECT_Q, scenario.db.relation, scenario.deltas, ts=9)
    )


def test_join_propagate_baseline(join_scenario, benchmark):
    scenario = join_scenario
    benchmark(
        lambda: propagate(JOIN_Q, scenario.db.relation, scenario.deltas, ts=9)
    )


def test_speedup_report(select_scenario, join_scenario, print_table, benchmark):
    from repro.bench.harness import time_fn

    rows = []
    for name, scenario, query in [
        ("select", select_scenario, SELECT_Q),
        ("join", join_scenario, JOIN_Q),
    ]:
        dra_s = time_fn(
            lambda: dra_execute(query, scenario.db, deltas=scenario.deltas, ts=9)
        )
        prop_s = time_fn(
            lambda: propagate(query, scenario.db.relation, scenario.deltas, ts=9)
        )
        rows.append(
            {
                "query": name,
                "dra_ms": dra_s * 1e3,
                "propagate_ms": prop_s * 1e3,
                "speedup_x": round(prop_s / max(dra_s, 1e-9), 1),
            }
        )
    print_table(rows, title="E7: DRA vs Propagate (equal outputs)")
    benchmark(
        lambda: dra_execute(
            SELECT_Q, select_scenario.db, deltas=select_scenario.deltas, ts=9
        )
    )
