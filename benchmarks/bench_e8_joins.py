"""E8 — Algorithm 1 steps 1-2: the truth table has 2^k − 1 terms in the
number k of *changed* operand relations, independent of the query's
total width n.

A 4-way join chain r1 ⋈ r2 ⋈ r3 ⋈ r4; the update batch touches k of
the four tables. Claim shape: term count doubles(+1) with each
additional changed relation, and refresh cost tracks delta volume, not
the number of operands.
"""

import pytest

from repro import Database
from repro.delta.capture import deltas_since
from repro.dra.algorithm import dra_execute
from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query

N_TABLES = 4
ROWS_PER_TABLE = 500
UPDATES_PER_CHANGED_TABLE = 10

QUERY = parse_query(
    "SELECT r1.v1, r4.v4 FROM r1, r2, r3, r4 "
    "WHERE r1.k = r2.k AND r2.k = r3.k AND r3.k = r4.k"
)


def build(changed_count, seed=81):
    import random

    rng = random.Random(seed)
    db = Database()
    tables = []
    for i in range(1, N_TABLES + 1):
        table = db.create_table(
            f"r{i}",
            [("k", AttributeType.INT), (f"v{i}", AttributeType.INT)],
            indexes=[("k",)],
        )
        table.insert_many(
            (j % (ROWS_PER_TABLE // 2), rng.randrange(1000))
            for j in range(ROWS_PER_TABLE)
        )
        tables.append(table)
    ts = db.now()
    for table in tables[:changed_count]:
        with db.begin() as txn:
            for __ in range(UPDATES_PER_CHANGED_TABLE):
                txn.insert_into(
                    table, (rng.randrange(ROWS_PER_TABLE // 2), rng.randrange(1000))
                )
    deltas = deltas_since(tables, ts)
    return db, deltas


@pytest.fixture(scope="module")
def setups():
    return {k: build(k) for k in range(1, N_TABLES + 1)}


def test_term_count_is_exponential_in_changed_only(setups, print_table, benchmark):
    rows = []
    for k in range(1, N_TABLES + 1):
        db, deltas = setups[k]
        metrics = Metrics()
        result = dra_execute(QUERY, db, deltas=deltas, ts=9, metrics=metrics)
        assert result.terms_evaluated == 2**k - 1
        assert len(result.changed_aliases) == k
        rows.append(
            {
                "changed_tables_k": k,
                "terms (2^k-1)": result.terms_evaluated,
                "delta_rows_read": metrics[Metrics.DELTA_ROWS_READ],
                "index_probes": metrics[Metrics.INDEX_PROBES],
                "base_rows_scanned": metrics[Metrics.ROWS_SCANNED],
            }
        )
    print_table(rows, title="E8: truth-table growth in a 4-way join")
    # Base tables are probed through indexes, never scanned.
    db, deltas = setups[N_TABLES]
    metrics = Metrics()
    dra_execute(QUERY, db, deltas=deltas, ts=9, metrics=metrics)
    assert metrics[Metrics.ROWS_SCANNED] == 0
    benchmark(lambda: dra_execute(QUERY, db, deltas=deltas, ts=9))


def test_correctness_against_propagate(setups, benchmark):
    from repro.delta.propagate import propagate

    db, deltas = setups[3]
    expected = propagate(QUERY, db.relation, deltas, ts=9)
    got = benchmark(
        lambda: dra_execute(QUERY, db, deltas=deltas, ts=9).delta
    )
    assert got == expected


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_refresh_with_k_changed(benchmark, setups, k):
    benchmark.group = "e8 refresh"
    db, deltas = setups[k]
    benchmark(lambda: dra_execute(QUERY, db, deltas=deltas, ts=9))
