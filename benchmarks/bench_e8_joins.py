"""E8 — Algorithm 1 steps 1-2: the truth table has 2^k − 1 terms in the
number k of *changed* operand relations, independent of the query's
total width n.

A 4-way join chain r1 ⋈ r2 ⋈ r3 ⋈ r4; the update batch touches k of
the four tables. Claim shape: term count doubles(+1) with each
additional changed relation, and refresh cost tracks delta volume, not
the number of operands.

Run ``python benchmarks/bench_e8_joins.py --smoke`` for a fast
self-check of the prepared-plan layer (used by CI): on the small-delta
join workload it asserts that refreshes off a cached
:class:`~repro.dra.prepared.PreparedCQ` make **zero**
``plan_predicate`` calls after the one-time compile and run ≥2x faster
per refresh than the plan-every-time path, and writes the measurements
to ``BENCH_e8.json``.
"""

import sys

import pytest

from repro import Database
from repro.delta.capture import deltas_since
from repro.dra.algorithm import dra_execute
from repro.dra.prepared import prepare_cq
from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query

N_TABLES = 4
ROWS_PER_TABLE = 500
UPDATES_PER_CHANGED_TABLE = 10

QUERY = parse_query(
    "SELECT r1.v1, r4.v4 FROM r1, r2, r3, r4 "
    "WHERE r1.k = r2.k AND r2.k = r3.k AND r3.k = r4.k"
)


def build(changed_count, seed=81):
    import random

    rng = random.Random(seed)
    db = Database()
    tables = []
    for i in range(1, N_TABLES + 1):
        table = db.create_table(
            f"r{i}",
            [("k", AttributeType.INT), (f"v{i}", AttributeType.INT)],
            indexes=[("k",)],
        )
        table.insert_many(
            (j % (ROWS_PER_TABLE // 2), rng.randrange(1000))
            for j in range(ROWS_PER_TABLE)
        )
        tables.append(table)
    ts = db.now()
    for table in tables[:changed_count]:
        with db.begin() as txn:
            for __ in range(UPDATES_PER_CHANGED_TABLE):
                txn.insert_into(
                    table, (rng.randrange(ROWS_PER_TABLE // 2), rng.randrange(1000))
                )
    deltas = deltas_since(tables, ts)
    return db, deltas


@pytest.fixture(scope="module")
def setups():
    return {k: build(k) for k in range(1, N_TABLES + 1)}


def test_term_count_is_exponential_in_changed_only(setups, print_table, benchmark):
    rows = []
    for k in range(1, N_TABLES + 1):
        db, deltas = setups[k]
        metrics = Metrics()
        result = dra_execute(QUERY, db, deltas=deltas, ts=9, metrics=metrics)
        assert result.terms_evaluated == 2**k - 1
        assert len(result.changed_aliases) == k
        rows.append(
            {
                "changed_tables_k": k,
                "terms (2^k-1)": result.terms_evaluated,
                "delta_rows_read": metrics[Metrics.DELTA_ROWS_READ],
                "index_probes": metrics[Metrics.INDEX_PROBES],
                "base_rows_scanned": metrics[Metrics.ROWS_SCANNED],
            }
        )
    print_table(rows, title="E8: truth-table growth in a 4-way join")
    # Base tables are probed through indexes, never scanned.
    db, deltas = setups[N_TABLES]
    metrics = Metrics()
    dra_execute(QUERY, db, deltas=deltas, ts=9, metrics=metrics)
    assert metrics[Metrics.ROWS_SCANNED] == 0
    benchmark(lambda: dra_execute(QUERY, db, deltas=deltas, ts=9))


def test_correctness_against_propagate(setups, benchmark):
    from repro.delta.propagate import propagate

    db, deltas = setups[3]
    expected = propagate(QUERY, db.relation, deltas, ts=9)
    got = benchmark(
        lambda: dra_execute(QUERY, db, deltas=deltas, ts=9).delta
    )
    assert got == expected


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_refresh_with_k_changed(benchmark, setups, k):
    benchmark.group = "e8 refresh"
    db, deltas = setups[k]
    benchmark(lambda: dra_execute(QUERY, db, deltas=deltas, ts=9))


# -- smoke entry point (CI) ---------------------------------------------------


def smoke(refreshes=300, out_path="BENCH_e8.json"):
    """Fast self-check that prepared plans amortize planning to zero.

    Small-delta refreshes (one changed table of four) are the regime
    where per-refresh planning dominates the differential work. Returns
    the measurement record (also written to ``out_path``); raises
    AssertionError when the prepared path plans again or loses its
    ≥2x per-refresh advantage.
    """
    import json
    import random
    import time

    from repro.bench.harness import format_table
    from repro.relational import planning

    # Unique join keys and a 2-row delta: the small-delta regime where
    # the differential work is a handful of probes and per-refresh
    # planning is the dominant cost for the unprepared path.
    rng = random.Random(82)
    db = Database()
    tables = []
    for i in range(1, N_TABLES + 1):
        table = db.create_table(
            f"r{i}",
            [("k", AttributeType.INT), (f"v{i}", AttributeType.INT)],
            indexes=[("k",)],
        )
        table.insert_many(
            (j, rng.randrange(1000)) for j in range(ROWS_PER_TABLE)
        )
        tables.append(table)
    ts = db.now()
    with db.begin() as txn:
        for j in range(2):
            txn.insert_into(tables[0], (j, rng.randrange(1000)))
    deltas = deltas_since(tables, ts)
    prepared = prepare_cq(QUERY, db)
    baseline = dra_execute(QUERY, db, deltas=deltas, ts=9).delta

    # Warm-up, then the planner must stay silent for every refresh.
    assert dra_execute(QUERY, db, deltas=deltas, ts=9, prepared=prepared).delta == baseline
    calls_before = planning.plan_calls
    start = time.perf_counter()
    for __ in range(refreshes):
        dra_execute(QUERY, db, deltas=deltas, ts=9, prepared=prepared)
    prepared_us = (time.perf_counter() - start) * 1e6 / refreshes
    plan_calls_per_refresh = (planning.plan_calls - calls_before) / refreshes
    assert plan_calls_per_refresh == 0, (
        f"prepared refreshes called plan_predicate "
        f"{plan_calls_per_refresh} times per refresh"
    )

    start = time.perf_counter()
    for __ in range(refreshes):
        dra_execute(QUERY, db, deltas=deltas, ts=9)
    unprepared_us = (time.perf_counter() - start) * 1e6 / refreshes

    speedup = unprepared_us / prepared_us
    record = {
        "benchmark": "e8_prepared_smoke",
        "refreshes": refreshes,
        "delta_rows": sum(len(d) for d in deltas.values()),
        "plan_calls_per_prepared_refresh": plan_calls_per_refresh,
        "prepared_us_per_refresh": round(prepared_us, 2),
        "unprepared_us_per_refresh": round(unprepared_us, 2),
        "speedup": round(speedup, 2),
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(format_table([record], title="E8 smoke: prepared vs per-refresh planning"))
    assert speedup >= 2.0, (
        f"prepared refreshes only {speedup:.2f}x faster "
        f"({prepared_us:.1f}us vs {unprepared_us:.1f}us); expected >=2x"
    )
    return record


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast prepared-plan self-check and exit",
    )
    parser.add_argument(
        "--refreshes",
        type=int,
        default=300,
        help="timed refreshes per configuration (smoke mode)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e8.json",
        help="where to write the smoke measurement record",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run the full sweep via pytest; use --smoke here")
    if args.refreshes < 10:
        parser.error("--refreshes must be >= 10 for a stable timing ratio")
    smoke(refreshes=args.refreshes, out_path=args.out)
    print("e8 smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
