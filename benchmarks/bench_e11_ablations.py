"""E11 — ablations of the reproduction's design choices (DESIGN.md §5).

Not a paper table: these quantify the paper-adjacent design decisions
the text only hints at, over the same substrate as E1-E10.

* (a) deferred consolidation (the paper's DRA, §4.1 "net effect of ...
  several transactions") vs EAGER per-commit maintenance (§2's
  immediate materialized-view refresh);
* (b) shared subscription evaluation (§5.2 "extracting common
  subexpressions") vs per-subscriber evaluation;
* (c) lazy delta shipping (§5.1 "lazy evaluation and transmission")
  vs shipping every refresh, under repeated updates to hot tuples.
"""

import pytest

from repro import Database
from repro.core import CQManager, Engine, EvaluationStrategy, Every
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 500"


def churn_hot_rows(db, market, hot, n_commits, base=600):
    for i in range(n_commits):
        with db.begin() as txn:
            for j, tid in enumerate(hot):
                txn.modify_in(market.stocks, tid, updates={"price": base + i + j})


def test_a_deferred_vs_eager_consolidation(print_table, benchmark):
    rows = []
    for n_commits in (2, 10, 50):
        db = Database()
        market = StockMarket(db, seed=111)
        market.populate(300)
        hot = [row.tid for row in market.stocks.rows()][:5]
        costs = {}
        for engine in (Engine.DRA, Engine.EAGER):
            metrics = Metrics()
            mgr = CQManager(
                db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics
            )
            mgr.register_sql("cq", WATCH, engine=engine, trigger=Every(1))
            mgr.drain()
            metrics.reset()
            churn_hot_rows(db, market, hot, n_commits)
            mgr.poll()
            costs[engine] = metrics[Metrics.DELTA_ROWS_READ]
            mgr.deregister("cq")
        rows.append(
            {
                "commits": n_commits,
                "hot_rows": 5,
                "deferred_delta_rows": costs[Engine.DRA],
                "eager_delta_rows": costs[Engine.EAGER],
                "eager/deferred": round(
                    costs[Engine.EAGER] / max(1, costs[Engine.DRA]), 1
                ),
            }
        )
    print_table(rows, title="E11a: deferred consolidation vs eager refresh")
    # Deferred reads the net effect (<= 2 sides x 5 rows) regardless of
    # how many commits hit the same tuples; eager pays per commit.
    assert rows[-1]["deferred_delta_rows"] <= 10
    assert rows[-1]["eager_delta_rows"] >= 40 * rows[-1]["deferred_delta_rows"] / 10

    db = Database()
    market = StockMarket(db, seed=112)
    market.populate(300)
    hot = [row.tid for row in market.stocks.rows()][:5]
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("cq", WATCH, trigger=Every(1))
    mgr.drain()

    def deferred_cycle():
        churn_hot_rows(db, market, hot, 10)
        mgr.poll()

    benchmark(deferred_cycle)


def test_b_shared_vs_per_client_evaluation(print_table, benchmark):
    rows = []
    for n_clients in (4, 16):
        work = {}
        for share in (False, True):
            db = Database()
            market = StockMarket(db, seed=113)
            market.populate(1_000)
            server = CQServer(
                db, SimulatedNetwork(), share_evaluation=share
            )
            clients = []
            for i in range(n_clients):
                client = CQClient(f"c{i}")
                server.attach(client)
                client.register("watch", WATCH, Protocol.DRA_DELTA)
                clients.append(client)
            market.tick(20)
            server.metrics.reset()
            server.refresh_all()
            work[share] = server.metrics[Metrics.DELTA_ROWS_READ]
            truth = db.query(WATCH)
            assert all(c.result("watch") == truth for c in clients)
        rows.append(
            {
                "clients": n_clients,
                "per_client_delta_rows": work[False],
                "shared_delta_rows": work[True],
                "savings_x": round(work[False] / max(1, work[True]), 1),
            }
        )
    print_table(rows, title="E11b: shared subscription evaluation")
    assert rows[-1]["shared_delta_rows"] * (16 // 2) <= rows[-1]["per_client_delta_rows"]

    db = Database()
    market = StockMarket(db, seed=114)
    market.populate(1_000)
    server = CQServer(db, SimulatedNetwork(), share_evaluation=True)
    for i in range(16):
        client = CQClient(f"c{i}")
        server.attach(client)
        client.register("watch", WATCH, Protocol.DRA_DELTA)

    def shared_cycle():
        market.tick(20)
        server.refresh_all()

    benchmark(shared_cycle)


def test_c_lazy_vs_eager_shipping(print_table, benchmark):
    rows = []
    for cycles in (3, 10):
        db = Database()
        market = StockMarket(db, seed=115)
        market.populate(300)
        hot = [row.tid for row in market.stocks.rows()][:10]
        net = SimulatedNetwork()
        server = CQServer(db, net)
        lazy = CQClient("lazy")
        eager = CQClient("eager")
        server.attach(lazy)
        server.attach(eager)
        lazy.register("watch", WATCH, Protocol.DRA_LAZY)
        eager.register("watch", WATCH, Protocol.DRA_DELTA)
        net.reset()
        for cycle in range(cycles):
            churn_hot_rows(db, market, hot, 1, base=600 + cycle)
            server.refresh_all()
        lazy.fetch("watch")
        truth = db.query(WATCH)
        assert lazy.result("watch") == truth
        assert eager.result("watch") == truth
        rows.append(
            {
                "refresh_cycles": cycles,
                "lazy_bytes": net.link("server", "lazy").bytes,
                "eager_bytes": net.link("server", "eager").bytes,
                "savings_x": round(
                    net.link("server", "eager").bytes
                    / max(1, net.link("server", "lazy").bytes),
                    2,
                ),
            }
        )
    print_table(rows, title="E11c: lazy vs per-refresh delta shipping")
    # With hot tuples modified every cycle, lazy ships each net change
    # once; eager ships every intermediate version.
    assert rows[-1]["lazy_bytes"] < rows[-1]["eager_bytes"]
    benchmark(lambda: None)
