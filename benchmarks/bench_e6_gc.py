"""E6 — §5.4: active-delta-zone garbage collection keeps differential
relations bounded; the system zone is pinned by the oldest active CQ.

Long run (40 rounds x 25 updates) with CQs at different cadences.
Claim shape: without GC the log grows linearly with total updates;
with GC it stays bounded by one refresh window; a slow CQ holds the
horizon back until it finally executes.
"""

import pytest

from repro import Database
from repro.core import CQManager, EvaluationStrategy, Every
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 700"
ROUNDS = 40
UPDATES_PER_ROUND = 25


def run(gc: bool, slow_interval=None, seed=11):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(500)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("fast", WATCH, trigger=Every(1))
    if slow_interval:
        mgr.register_sql("slow", WATCH, trigger=Every(slow_interval))
    mgr.drain()
    log_sizes = []
    for __ in range(ROUNDS):
        market.tick(UPDATES_PER_ROUND)
        mgr.poll()
        if gc:
            mgr.collect_garbage()
        log_sizes.append(len(market.stocks.log))
    return log_sizes


def test_gc_bounds_log_size(print_table, benchmark):
    without_gc = run(gc=False)
    with_gc = run(gc=True)
    rows = [
        {
            "round": i + 1,
            "log_no_gc": without_gc[i],
            "log_with_gc": with_gc[i],
        }
        for i in range(0, ROUNDS, 8)
    ]
    print_table(rows, title="E6: update-log size over time")
    # Without GC: linear growth to the full history (500 bulk-load
    # records plus every round's updates).
    assert without_gc[-1] == 500 + ROUNDS * UPDATES_PER_ROUND
    # With GC: bounded by (roughly) one refresh window at all times.
    assert max(with_gc) <= 2 * UPDATES_PER_ROUND
    benchmark(lambda: run(gc=True))


def test_slow_cq_pins_the_horizon(print_table, benchmark):
    """A CQ that refreshes every ~8 rounds forces the system zone to
    retain up to 8 rounds of deltas even though the fast CQ is caught
    up — then releases them when it fires.

    Each round is one commit, so virtual time advances by one tick per
    round; Every(8) therefore fires every 8th round.
    """
    db = Database()
    market = StockMarket(db, seed=12)
    market.populate(500)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("fast", WATCH, trigger=Every(1))
    mgr.register_sql("slow", WATCH, trigger=Every(8))
    mgr.drain()
    sizes = []
    for __ in range(24):
        market.tick(UPDATES_PER_ROUND)
        mgr.poll()
        mgr.collect_garbage()
        sizes.append(len(market.stocks.log))
    print_table(
        [{"round": i + 1, "log": s} for i, s in enumerate(sizes) if i % 4 == 3],
        title="E6b: sawtooth under a slow CQ",
    )
    # The retained window exceeds a single fast refresh batch...
    assert max(sizes) > 2 * UPDATES_PER_ROUND
    # ...but is still bounded by the slow CQ's full window.
    assert max(sizes) <= 10 * UPDATES_PER_ROUND
    # And it drains right after the slow CQ fires.
    assert min(sizes[4:]) <= 2 * UPDATES_PER_ROUND
    benchmark(lambda: mgr.collect_garbage())


def test_collect_garbage_cost(benchmark):
    db = Database()
    market = StockMarket(db, seed=13)
    market.populate(500)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("watch", WATCH)
    market.tick(200)
    mgr.poll()
    benchmark(mgr.collect_garbage)
