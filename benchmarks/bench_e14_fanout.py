"""E14 — million-subscriber fan-out: routing one consolidated delta
batch to the affected subscriptions must cost probes proportional to
the *matched* population, not the registered one.

A Zipf-skewed population of parameterized subscriptions (equality and
interval templates over ``stocks.price``) goes into one
:class:`~repro.dra.predindex.PredicateIndex`. The per-subscription
baseline inspects every subscription for every batch — n probes. The
index stabs hash buckets and interval bound arrays instead, so probe
counts are governed by the template count and the match set, both of
which stay fixed while the subscriber population grows.

Run ``python benchmarks/bench_e14_fanout.py --smoke`` for the fast
self-check used by CI: it routes one batch through populations of
1k/3k/10k subscribers, asserts ≥10x fewer probes than the
per-subscription baseline at 10k plus sublinear probe growth across
the sweep, verifies the routed set against the relevance oracle, and
writes the measurements to ``BENCH_e14.json``.
"""

import sys

import pytest

from repro import Database
from repro.core import CQManager, EvaluationStrategy
from repro.dra.predindex import PredicateIndex
from repro.metrics import Metrics
from repro.relational import parse_query
from repro.workload.fanout import FanoutWorkload
from repro.workload.stocks import STOCKS_SCHEMA, StockMarket

N_TEMPLATES = 100
BATCH_TICKS = 8


def build_population(n_subs, seed=14):
    """An index over ``n_subs`` generated subscriptions.

    Mirrors the server's group-granularity routing: one index entry per
    distinct ``sql_key`` (subscribers sharing a template share one
    maintained result, so they share one routing entry). Returns the
    index, its metrics, the distinct queries by sql_key, and the
    group membership map.
    """
    workload = FanoutWorkload(
        n_templates=N_TEMPLATES,
        seed=seed,
        skew=1.1,
        domain=(0, 1000),
        eq_fraction=0.5,
        interval_width=40,
    )
    metrics = Metrics()
    index = PredicateIndex(metrics)
    scopes = {"stocks": STOCKS_SCHEMA}
    queries = {}
    members = {}
    for sub in workload.subscriptions(n_subs):
        if sub.sql not in queries:
            query = parse_query(sub.sql)
            index.add(sub.sql, query, scopes)
            queries[sub.sql] = query
        members.setdefault(sub.sql, set()).add(sub.name)
    return index, metrics, queries, members


def capture_batch(seed=15):
    """One consolidated delta batch from a ticked market."""
    from repro.delta.capture import deltas_since

    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(500)
    since = db.now()
    market.tick(BATCH_TICKS, p_insert=0.2, p_delete=0.2)
    return db, deltas_since([market.stocks], since)


def oracle_matches(queries, deltas):
    """The §5.2 relevance oracle, applied per subscription."""
    from repro.dra.relevance import is_relevant

    scopes = {"stocks": STOCKS_SCHEMA}
    return {
        name
        for name, query in queries.items()
        if is_relevant(query, scopes, deltas)
    }


@pytest.fixture(scope="module")
def batch():
    return capture_batch()


@pytest.mark.parametrize("n_subs", [500, 2000, 8000])
def test_routing_matches_oracle_with_sublinear_probes(batch, n_subs, print_table):
    __, deltas = batch
    index, metrics, queries, members = build_population(n_subs)
    routed = index.match_batch(deltas)
    assert routed == oracle_matches(queries, deltas)
    routed_subs = sum(len(members[key]) for key in routed)
    probes = metrics[Metrics.PREDINDEX_PROBES]
    # Per-subscription evaluation spends >= one probe per subscription
    # per delta entry on this batch.
    assert probes * 10 <= n_subs * len(deltas["stocks"])
    print_table(
        [
            {
                "subscribers": n_subs,
                "delta_entries": len(deltas["stocks"]),
                "routed_groups": len(routed),
                "routed_subscribers": routed_subs,
                "probes": probes,
                "matches": metrics[Metrics.PREDINDEX_MATCHES],
            }
        ],
        title="E14: routed probes vs population",
    )


def test_routing_throughput(batch, benchmark):
    __, deltas = batch
    index, __, __, __ = build_population(5000)
    benchmark(lambda: index.match_batch(deltas))


def test_manager_fanout_end_to_end(print_table):
    """A small end-to-end slice: shared groups collapse duplicate
    templates and every maintained result stays correct."""
    db = Database()
    market = StockMarket(db, seed=21)
    market.populate(300)
    workload = FanoutWorkload(n_templates=20, seed=22, skew=1.2)
    mgr = CQManager(
        db, strategy=EvaluationStrategy.PERIODIC, metrics=Metrics(), fanout=True
    )
    subs = workload.subscriptions(120)
    for sub in subs:
        mgr.register_sql(sub.name, sub.sql)
    mgr.drain()
    market.tick(30, p_insert=0.2, p_delete=0.2)
    mgr.poll(advance_to=db.now() + 1)
    groups = mgr.metrics[Metrics.SHARED_GROUPS]
    assert groups <= 20 < len(subs)
    for sub in subs[:10]:
        assert mgr.get(sub.name).previous_result == db.query(sub.sql)
    print_table(
        [
            {
                "subscribers": len(subs),
                "shared_groups": groups,
                "group_hits": mgr.metrics[Metrics.SHARED_GROUP_HITS],
                "probes": mgr.metrics[Metrics.PREDINDEX_PROBES],
            }
        ],
        title="E14: shared materialization in CQManager",
    )


# -- smoke entry point (CI) ---------------------------------------------------


def smoke(n_subs=10_000, out_path="BENCH_e14.json"):
    """Fast self-check of the fan-out routing claim.

    Routes the same consolidated batch through growing subscriber
    populations. Asserts the 10k population routes with ≥10x fewer
    probes than the per-subscription baseline, that probe counts grow
    sublinearly in the population (templates are fixed, so probes
    should barely move), and that the routed set equals the relevance
    oracle at every size. Returns the measurement record (also written
    to ``out_path``).
    """
    import json
    import time

    from repro.bench.harness import format_table

    __, deltas = capture_batch()
    entries = len(deltas["stocks"])
    sizes = [max(n_subs // 10, 1), max(n_subs // 3, 1), n_subs]
    rows = []
    for size in sizes:
        index, metrics, queries, members = build_population(size)
        start = time.perf_counter()
        routed = index.match_batch(deltas)
        elapsed_us = (time.perf_counter() - start) * 1e6
        assert routed == oracle_matches(queries, deltas)
        rows.append(
            {
                "subscribers": size,
                "delta_entries": entries,
                "routed_groups": len(routed),
                "routed_subscribers": sum(len(members[k]) for k in routed),
                "probes": metrics[Metrics.PREDINDEX_PROBES],
                "baseline_probes": size * entries,
                "route_us": round(elapsed_us, 1),
            }
        )

    final = rows[-1]
    assert final["probes"] * 10 <= n_subs, (
        f"routing 10k subscribers took {final['probes']} probes; "
        f"expected <= {n_subs // 10} (10x under per-subscription)"
    )
    growth = final["probes"] / max(rows[0]["probes"], 1)
    population_growth = final["subscribers"] / rows[0]["subscribers"]
    assert growth * 2 <= population_growth, (
        f"probes grew {growth:.1f}x while the population grew "
        f"{population_growth:.1f}x; routing is not sublinear"
    )

    record = {
        "benchmark": "e14_fanout_smoke",
        "templates": N_TEMPLATES,
        "sweep": rows,
        "probe_growth": round(growth, 2),
        "population_growth": round(population_growth, 2),
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(format_table(rows, title="E14 smoke: routed probes vs population"))
    return record


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast routing self-check and exit",
    )
    parser.add_argument(
        "--subs",
        type=int,
        default=10_000,
        help="largest subscriber population (smoke mode)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e14.json",
        help="where to write the smoke measurement record",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run the full sweep via pytest; use --smoke here")
    if args.subs < 100:
        parser.error("--subs must be >= 100 for a meaningful sweep")
    smoke(n_subs=args.subs, out_path=args.out)
    print("e14 smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
