"""E3 — §5.1: "caching the results on the client side makes the servers
more scalable with respect to the number of clients."

Sweep the client count with a fixed update batch per refresh cycle and
measure the server's work per cycle. Claim shape: with the naive
protocol the server re-scans the base table once *per client*; with DRA
the per-client cost is delta-sized, so server work stays near-flat as
clients grow.
"""

import pytest

from repro import Database
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 800"
BASE_ROWS = 2_000
CLIENT_COUNTS = [1, 8, 32]


def build(n_clients, protocol, seed=3):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(BASE_ROWS)
    server = CQServer(db, SimulatedNetwork())
    for i in range(n_clients):
        client = CQClient(f"c{i}")
        server.attach(client)
        client.register("watch", WATCH, protocol)
    return db, market, server


def one_cycle(market, server):
    market.tick(20)
    server.refresh_all()


def server_work_per_cycle(n_clients, protocol):
    db, market, server = build(n_clients, protocol)
    market.tick(20)
    server.metrics.reset()
    server.refresh_all()
    m = server.metrics
    return (
        m[Metrics.ROWS_SCANNED]
        + m[Metrics.DELTA_ROWS_READ]
        + m[Metrics.INDEX_PROBES]
    )


def test_server_work_vs_client_count(print_table, benchmark):
    rows = []
    work = {}
    for n in CLIENT_COUNTS:
        work[(n, "dra")] = server_work_per_cycle(n, Protocol.DRA_DELTA)
        work[(n, "naive")] = server_work_per_cycle(n, Protocol.REEVAL_FULL)
        rows.append(
            {
                "clients": n,
                "dra_server_ops": work[(n, "dra")],
                "naive_server_ops": work[(n, "naive")],
                "naive/dra": round(
                    work[(n, "naive")] / max(1, work[(n, "dra")]), 1
                ),
            }
        )
    print_table(rows, title="E3: server work per refresh cycle")

    # Naive work is linear in the client count (one base scan each).
    assert work[(32, "naive")] >= 30 * BASE_ROWS
    assert work[(32, "naive")] / work[(1, "naive")] > 20
    # DRA's per-client cost is delta-sized, not base-sized: at 32
    # clients the server does >10x less work than naive, and each
    # client costs at most both sides of the 20-update batch.
    assert work[(32, "dra")] < work[(32, "naive")] / 10
    assert work[(32, "dra")] / 32 <= 2 * 20
    benchmark(lambda: server_work_per_cycle(8, Protocol.DRA_DELTA))


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_cycle_dra(benchmark, n_clients):
    benchmark.group = f"e3 clients={n_clients}"
    db, market, server = build(n_clients, Protocol.DRA_DELTA)
    benchmark(lambda: one_cycle(market, server))


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_cycle_naive(benchmark, n_clients):
    benchmark.group = f"e3 clients={n_clients}"
    db, market, server = build(n_clients, Protocol.REEVAL_FULL)
    benchmark(lambda: one_cycle(market, server))
