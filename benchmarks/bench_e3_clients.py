"""E3 — §5.1: "caching the results on the client side makes the servers
more scalable with respect to the number of clients."

Sweep the client count with a fixed update batch per refresh cycle and
measure the server's work per cycle. Claim shape: with the naive
protocol the server re-scans the base table once *per client*; with DRA
the per-client cost is delta-sized, so server work stays near-flat as
clients grow — and with the shared-delta refresh layer (delta-batch
cache + shared evaluation) the per-cycle cost is independent of the
client count altogether.

Run ``python benchmarks/bench_e3_clients.py --smoke`` for a fast
self-check that delta-batch sharing is active (used by CI): it builds
8 distinct CQs over one hot table and asserts ``delta_batches_reused``
is charged on both the server and the manager refresh paths.
"""

import sys

import pytest

from repro import Database
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 800"
BASE_ROWS = 2_000
CLIENT_COUNTS = [1, 8, 32]


def build(
    n_clients,
    protocol,
    seed=3,
    share_evaluation=False,
    share_deltas=True,
    queries=None,
):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(BASE_ROWS)
    server = CQServer(
        db,
        SimulatedNetwork(),
        share_evaluation=share_evaluation,
        share_deltas=share_deltas,
    )
    for i in range(n_clients):
        client = CQClient(f"c{i}")
        server.attach(client)
        sql = WATCH if queries is None else queries[i % len(queries)]
        client.register("watch", sql, protocol)
    return db, market, server


def one_cycle(market, server):
    market.tick(20)
    server.refresh_all()


def server_work_per_cycle(n_clients, protocol, share_evaluation=False):
    db, market, server = build(
        n_clients, protocol, share_evaluation=share_evaluation
    )
    market.tick(20)
    server.metrics.reset()
    server.refresh_all()
    m = server.metrics
    return (
        m[Metrics.ROWS_SCANNED]
        + m[Metrics.DELTA_ROWS_READ]
        + m[Metrics.INDEX_PROBES]
    )


def test_server_work_vs_client_count(print_table, benchmark):
    rows = []
    work = {}
    for n in CLIENT_COUNTS:
        work[(n, "dra")] = server_work_per_cycle(n, Protocol.DRA_DELTA)
        work[(n, "shared")] = server_work_per_cycle(
            n, Protocol.DRA_DELTA, share_evaluation=True
        )
        work[(n, "naive")] = server_work_per_cycle(n, Protocol.REEVAL_FULL)
        rows.append(
            {
                "clients": n,
                "shared_server_ops": work[(n, "shared")],
                "dra_server_ops": work[(n, "dra")],
                "naive_server_ops": work[(n, "naive")],
                "naive/dra": round(
                    work[(n, "naive")] / max(1, work[(n, "dra")]), 1
                ),
            }
        )
    print_table(rows, title="E3: server work per refresh cycle")

    # Naive work is linear in the client count (one base scan each).
    assert work[(32, "naive")] >= 30 * BASE_ROWS
    assert work[(32, "naive")] / work[(1, "naive")] > 20
    # DRA's per-client cost is delta-sized, not base-sized: at 32
    # clients the server does >10x less work than naive, and each
    # client costs at most both sides of the 20-update batch.
    assert work[(32, "dra")] < work[(32, "naive")] / 10
    assert work[(32, "dra")] / 32 <= 2 * 20
    # The shared-delta scheduler makes server work per cycle flat in
    # the client count: 32 identical subscriptions cost one refresh.
    assert work[(32, "shared")] <= work[(1, "dra")] * 2
    benchmark(lambda: server_work_per_cycle(8, Protocol.DRA_DELTA))


def test_delta_sharing_cuts_delta_reads(print_table):
    """With ≥32 CQs over a shared table, the shared-delta refresh path
    reads each delta batch once — ≥2x fewer delta rows than the
    per-subscription baseline (the PR's headline acceptance claim)."""
    readings = {}
    for label, kwargs in [
        ("private", dict(share_evaluation=False, share_deltas=False)),
        ("shared", dict(share_evaluation=True, share_deltas=True)),
    ]:
        db, market, server = build(32, Protocol.DRA_DELTA, **kwargs)
        market.tick(20)
        server.metrics.reset()
        server.refresh_all()
        readings[label] = server.metrics.snapshot()
    print_table(
        [
            {"config": label, **{k: v for k, v in sorted(m.items())}}
            for label, m in readings.items()
        ],
        columns=["config", "delta_rows_read", "delta_batches_computed",
                 "delta_batches_reused", "index_probes"],
        title="E3b: 32 subscriptions, one hot table",
    )
    private = readings["private"].get(Metrics.DELTA_ROWS_READ, 0)
    shared = readings["shared"].get(Metrics.DELTA_ROWS_READ, 0)
    assert private > 0
    assert shared * 2 <= private, (shared, private)
    # With distinct queries per client, evaluation can't be shared but
    # consolidation still is: every subscription after the first reuses
    # the cycle's cached batch.
    queries = [
        f"SELECT sid, price FROM stocks WHERE price > {600 + 20 * i}"
        for i in range(8)
    ]
    db, market, server = build(
        32, Protocol.DRA_DELTA, share_deltas=True, queries=queries
    )
    market.tick(20)
    server.metrics.reset()
    server.refresh_all()
    assert server.metrics[Metrics.DELTA_BATCHES_REUSED] >= 31


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_cycle_dra(benchmark, n_clients):
    benchmark.group = f"e3 clients={n_clients}"
    db, market, server = build(n_clients, Protocol.DRA_DELTA)
    benchmark(lambda: one_cycle(market, server))


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_cycle_naive(benchmark, n_clients):
    benchmark.group = f"e3 clients={n_clients}"
    db, market, server = build(n_clients, Protocol.REEVAL_FULL)
    benchmark(lambda: one_cycle(market, server))


# -- smoke entry point (CI) ---------------------------------------------------


def smoke(n_cqs=8):
    """Fast self-check that delta-batch sharing is wired up end to end.

    Returns the (server, manager) reuse counts; raises AssertionError
    when either refresh path stops sharing.
    """
    from repro.bench.harness import format_table, summarize_latency
    from repro.core import CQManager, EvaluationStrategy

    queries = [
        f"SELECT sid, price FROM stocks WHERE price > {500 + 25 * i}"
        for i in range(n_cqs)
    ]

    # Server path: distinct queries, one hot table, shared batches.
    db, market, server = build(
        n_cqs, Protocol.DRA_DELTA, queries=queries, share_deltas=True
    )
    market.tick(20)
    server.metrics.reset()
    server.refresh_all()
    server_reused = server.metrics[Metrics.DELTA_BATCHES_REUSED]
    assert server_reused > 0, "server refresh cycle shared no delta batches"

    # Manager path: same queries behind CQManager.poll() with the
    # shared-delta scheduler and the parallel refresh pool.
    db = Database()
    market = StockMarket(db, seed=3)
    market.populate(BASE_ROWS)
    metrics = Metrics()
    manager = CQManager(
        db,
        strategy=EvaluationStrategy.PERIODIC,
        metrics=metrics,
        parallelism=4,
    )
    for i, sql in enumerate(queries):
        manager.register_sql(f"q{i}", sql)
    manager.drain()
    market.tick(20)
    manager.poll()
    manager_reused = metrics[Metrics.DELTA_BATCHES_REUSED]
    assert manager_reused > 0, "manager poll shared no delta batches"
    for i, sql in enumerate(queries):
        assert manager.get(f"q{i}").previous_result == db.query(sql)

    print(
        format_table(
            [
                {"path": "server", "cqs": n_cqs, "delta_batches_reused": server_reused},
                {"path": "manager", "cqs": n_cqs, "delta_batches_reused": manager_reused},
            ],
            title="E3 smoke: shared-delta refresh",
        )
    )
    latency = metrics.histogram(Metrics.REFRESH_LATENCY_US)
    print(
        format_table(
            [summarize_latency(latency)],
            title="manager refresh latency (us)",
        )
    )
    return server_reused, manager_reused


def obs_smoke(n_cqs=8, cycles=20):
    """Fast self-check of the observability layer (used by CI).

    Runs the manager-path workload untraced and fully traced
    (sample rate 1.0), then asserts three things: every pipeline stage
    shows up as spans with per-CQ attribution, the Prometheus
    exposition parses and carries the expected series, and full
    tracing costs at most 10% wall time over the untraced run.
    """
    from repro.bench.harness import format_table, time_fn
    from repro.core import CQManager, EvaluationStrategy
    from repro.obs import (
        Tracer,
        counter_value,
        parse_prometheus_text,
        prometheus_text,
    )

    queries = [
        f"SELECT sid, price FROM stocks WHERE price > {500 + 25 * i}"
        for i in range(n_cqs)
    ]

    def run_cycles(tracer):
        db = Database()
        market = StockMarket(db, seed=3)
        market.populate(BASE_ROWS)
        metrics = Metrics()
        manager = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            metrics=metrics,
            tracer=tracer,
        )
        for i, sql in enumerate(queries):
            manager.register_sql(f"q{i}", sql)
        manager.drain()
        for __ in range(cycles):
            market.tick(20)
            manager.poll()
        return metrics

    untraced_s = time_fn(lambda: run_cycles(None), repeat=5)

    tracer = Tracer(sample_rate=1.0, max_spans=1_000_000)

    def traced_run():
        tracer.reset()
        return run_cycles(tracer)

    traced_s = time_fn(traced_run, repeat=5)
    metrics = traced_run()

    # 1. Every pipeline stage left spans, attributed to the right CQs.
    required = {"scheduler.poll", "cq.trigger", "cq.refresh", "cq.notify"}
    span_names = {record["name"] for record in tracer.spans()}
    missing = required - span_names
    assert not missing, f"traced run produced no spans for: {sorted(missing)}"
    assert {"delta.consolidate", "dra.apply"} & span_names, (
        "traced run surfaced no delta/DRA work"
    )
    refresh_cqs = {record["cq"] for record in tracer.spans("cq.refresh")}
    assert refresh_cqs == {f"q{i}" for i in range(n_cqs)}, refresh_cqs

    # 2. The exposition round-trips through the strict parser.
    parsed = parse_prometheus_text(prometheus_text(metrics))
    for series in ("repro_cq_refreshes", "repro_delta_rows_read"):
        value = counter_value(parsed, series)
        assert value and value > 0, f"{series} missing from exposition"
    assert "repro_refresh_latency_us_bucket" in parsed

    # 3. Full tracing stays within the 10% overhead budget. Best-of-5
    # wall times on a sub-second workload still jitter; the +2ms
    # epsilon keeps the gate about the trend, not scheduler noise.
    overhead = (traced_s - untraced_s) / untraced_s
    print(
        format_table(
            [
                {
                    "untraced_s": round(untraced_s, 4),
                    "traced_s": round(traced_s, 4),
                    "overhead_pct": round(100 * overhead, 2),
                    "spans": len(tracer.spans()),
                }
            ],
            title="obs smoke: tracing overhead",
        )
    )
    assert traced_s <= untraced_s * 1.10 + 0.002, (
        f"tracing overhead {100 * overhead:.1f}% exceeds the 10% budget"
    )
    return overhead


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast delta-sharing self-check and exit",
    )
    parser.add_argument(
        "--obs-smoke",
        action="store_true",
        help="run the tracing/exporter self-check and exit",
    )
    parser.add_argument(
        "--cqs",
        type=int,
        default=8,
        help="number of CQs over the shared table (smoke mode)",
    )
    args = parser.parse_args(argv)
    if not args.smoke and not args.obs_smoke:
        parser.error(
            "run the full sweep via pytest; use --smoke/--obs-smoke here"
        )
    if args.cqs < 2:
        parser.error("--cqs must be >= 2: one CQ has nothing to share")
    if args.smoke:
        smoke(n_cqs=args.cqs)
        print("e3 smoke ok")
    if args.obs_smoke:
        obs_smoke(n_cqs=args.cqs)
        print("obs smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
