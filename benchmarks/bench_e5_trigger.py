"""E5 — §5.3: "the cost of evaluating the differential form of T_cq is
cheaper than the complete re-evaluation of T_cq over the entire base
relations ... when |CheckingAccounts| > |ΔCheckingAccounts|."

The checking-account trigger |Deposits − Withdrawals| >= ε evaluated
two ways at each check:
* differential — fold the delta batch into a NetChangeEpsilon
  (reads |Δ| rows);
* complete — rescan the base relation, SUM, and compare against the
  last reported sum (reads |R| rows).

Sweep the |R| / |Δ| ratio; the differential form's advantage is the
ratio itself.
"""

import pytest

from repro import Database
from repro.bench.harness import time_fn
from repro.core.epsilon import NetChangeEpsilon
from repro.delta.capture import delta_since
from repro.relational import parse_query
from repro.relational.evaluate import evaluate_spj  # noqa: F401 (docs)
from repro.workload.accounts import Bank

SUM_QUERY = parse_query("SELECT SUM(amount) AS total FROM accounts")
BASE_SIZES = [1_000, 10_000, 50_000]
DELTA_SIZE = 20


def build(base_size):
    db = Database()
    bank = Bank(db, seed=base_size)
    bank.populate(base_size)
    last_reported = bank.total_balance()
    ts = db.now()
    bank.business_day(DELTA_SIZE, deposit_bias=0.9)
    delta = delta_since(bank.accounts, ts)
    return db, bank, delta, last_reported


def differential_check(delta, epsilon=500.0):
    spec = NetChangeEpsilon(epsilon, "amount")
    spec.observe("accounts", delta)
    return spec.exceeded()


def complete_check(db, last_reported, epsilon=500.0):
    from repro.relational.aggregates import evaluate_aggregate
    from repro.relational.sql import parse_query as parse

    current = evaluate_aggregate(
        parse("SELECT SUM(amount) AS total FROM accounts"), db.relation
    ).get(())[0]
    return abs(current - last_reported) >= epsilon


def test_trigger_evaluation_cost_ratio(print_table, benchmark):
    rows = []
    for base_size in BASE_SIZES:
        db, bank, delta, last_reported = build(base_size)
        # Both forms agree on whether the trigger fires.
        assert differential_check(delta) == complete_check(db, last_reported)
        diff_s = time_fn(lambda: differential_check(delta), repeat=5)
        full_s = time_fn(lambda: complete_check(db, last_reported), repeat=5)
        rows.append(
            {
                "base_rows": base_size,
                "delta_rows": len(delta),
                "diff_check_us": diff_s * 1e6,
                "full_check_us": full_s * 1e6,
                "speedup_x": round(full_s / max(diff_s, 1e-9), 1),
            }
        )
    print_table(rows, title="E5: trigger-condition evaluation cost")
    # The differential check reads |Δ| rows regardless of |R|: at the
    # largest ratio it must be dramatically cheaper (margin is huge,
    # so a timing assert is safe even on noisy machines).
    db, bank, delta, last_reported = build(BASE_SIZES[-1])
    diff_s = time_fn(lambda: differential_check(delta), repeat=5)
    full_s = time_fn(lambda: complete_check(db, last_reported), repeat=5)
    assert full_s > diff_s * 5
    benchmark(lambda: differential_check(delta))


@pytest.mark.parametrize("base_size", BASE_SIZES)
def test_differential_trigger_check(benchmark, base_size):
    benchmark.group = f"e5 base={base_size}"
    __, __, delta, __ = build(base_size)
    benchmark(lambda: differential_check(delta))


@pytest.mark.parametrize("base_size", BASE_SIZES)
def test_complete_trigger_check(benchmark, base_size):
    benchmark.group = f"e5 base={base_size}"
    db, __, __, last_reported = build(base_size)
    benchmark(lambda: complete_check(db, last_reported))
