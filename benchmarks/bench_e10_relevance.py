"""E10 — §5.2: "if the updates ... have no impact on the previous query
result set ... no computation is performed for this CQ."

Sweep the fraction of updates that land inside the query's selection
band from 0% to 100%. Claim shape: executions are skipped entirely
when every update is irrelevant, and DRA's work tracks the *relevant*
update count, not the total.
"""

import pytest

from repro import Database
from repro.dra.algorithm import dra_execute
from repro.delta.capture import deltas_since
from repro.metrics import Metrics
from repro.relational import parse_query
from repro.workload.stocks import StockMarket

# Query band: price > 800. Updates land in [850,1000) (relevant) or
# [0,700) (irrelevant; safely away from the boundary).
WATCH = parse_query("SELECT sid, name, price FROM stocks WHERE price > 800")
BATCH = 100
RELEVANT_FRACTIONS = [0.0, 0.25, 0.5, 1.0]


def pin_below_band(db, market, ceiling=700):
    """Deterministically move every row below the query band."""
    with db.begin() as txn:
        for row in list(market.stocks.rows()):
            if row.values[2] >= ceiling:
                txn.modify_in(
                    market.stocks, row.tid, updates={"price": row.values[2] % ceiling}
                )


def build(relevant_fraction, seed=101):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(2_000)
    # Pre-position every row below the band so in-band moves are the
    # only relevant changes.
    pin_below_band(db, market)
    ts = db.now()
    relevant = int(BATCH * relevant_fraction)
    market.modify_in_band(relevant, 850, 1_000)
    market.modify_in_band(BATCH - relevant, 0, 700)
    deltas = deltas_since([market.stocks], ts)
    return db, deltas


def test_relevance_sweep(print_table, benchmark):
    rows = []
    outcomes = {}
    for fraction in RELEVANT_FRACTIONS:
        db, deltas = build(fraction)
        metrics = Metrics()
        result = dra_execute(WATCH, db, deltas=deltas, ts=9, metrics=metrics)
        outcomes[fraction] = (result, metrics)
        rows.append(
            {
                "relevant_frac": fraction,
                "updates": BATCH,
                "skipped": result.skipped,
                "result_changes": len(result.delta),
                "delta_rows_read": metrics[Metrics.DELTA_ROWS_READ],
                "terms": result.terms_evaluated,
            }
        )
    print_table(rows, title="E10: irrelevant-update filtering")

    fully_irrelevant, __ = outcomes[0.0]
    assert fully_irrelevant.skipped
    assert fully_irrelevant.terms_evaluated == 0
    # Result changes track the relevant fraction.
    assert len(outcomes[1.0][0].delta) > len(outcomes[0.25][0].delta)
    assert len(outcomes[0.25][0].delta) > 0
    db, deltas = build(0.0)
    benchmark(lambda: dra_execute(WATCH, db, deltas=deltas, ts=9))


def test_manager_skips_irrelevant_notifications(benchmark):
    from repro.core import CQManager

    db = Database()
    market = StockMarket(db, seed=102)
    market.populate(1_000)
    pin_below_band(db, market)
    mgr = CQManager(db)
    mgr.register_sql("watch", "SELECT name FROM stocks WHERE price > 800")
    mgr.drain()
    market.modify_in_band(50, 0, 700)  # all irrelevant
    assert mgr.drain() == []

    def churn():
        market.modify_in_band(10, 0, 700)
        mgr.drain()

    benchmark(churn)


@pytest.mark.parametrize("fraction", [0.0, 1.0])
def test_refresh_cost_by_relevance(benchmark, fraction):
    benchmark.group = "e10 refresh"
    db, deltas = build(fraction)
    benchmark(lambda: dra_execute(WATCH, db, deltas=deltas, ts=9))
