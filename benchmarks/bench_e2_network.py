"""E2 — §5.1 ¶2: "if the volume of relevant updates is smaller than the
results (which is the common case), then we are further reducing the
network traffic."

Client-server simulation over a 5k-row stocks table with a result of
~1000 rows; the per-refresh update volume is swept from 0.1% to 50% of
the base. Claim shape: DRA ships bytes proportional to the *relevant
delta*, the naive protocol ships the full result every time; DRA wins
until deltas approach the result size.
"""

import pytest

from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro import Database
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 800"
BASE_ROWS = 5_000
ROUNDS = 5
UPDATE_FRACTIONS = [0.001, 0.01, 0.1, 0.5]


def run_deployment(update_fraction):
    db = Database()
    market = StockMarket(db, seed=int(update_fraction * 10_000) + 3)
    market.populate(BASE_ROWS)
    net = SimulatedNetwork()
    server = CQServer(db, net)
    clients = {}
    for name, protocol in [
        ("dra", Protocol.DRA_DELTA),
        ("reeval_delta", Protocol.REEVAL_DELTA),
        ("naive_full", Protocol.REEVAL_FULL),
    ]:
        client = CQClient(name)
        server.attach(client)
        client.register("watch", WATCH, protocol)
        clients[name] = client
    # Ignore registration traffic; measure refresh traffic only.
    net.reset()
    updates_per_round = max(1, int(BASE_ROWS * update_fraction))
    for __ in range(ROUNDS):
        market.tick(updates_per_round, p_insert=0.1, p_delete=0.1)
        server.refresh_all()
    truth = db.query(WATCH)
    for client in clients.values():
        assert client.result("watch") == truth
    return {
        name: net.link("server", name).bytes for name in clients
    }, updates_per_round


@pytest.fixture(scope="module")
def sweep():
    return {
        fraction: run_deployment(fraction) for fraction in UPDATE_FRACTIONS
    }


def test_traffic_vs_update_volume(sweep, print_table, benchmark):
    rows = []
    for fraction in UPDATE_FRACTIONS:
        bytes_by_protocol, updates = sweep[fraction]
        rows.append(
            {
                "update_frac": fraction,
                "updates/round": updates,
                "dra_bytes": bytes_by_protocol["dra"],
                "reeval_delta_bytes": bytes_by_protocol["reeval_delta"],
                "naive_full_bytes": bytes_by_protocol["naive_full"],
                "dra_savings_x": round(
                    bytes_by_protocol["naive_full"]
                    / max(1, bytes_by_protocol["dra"]),
                    1,
                ),
            }
        )
    print_table(rows, title="E2: refresh traffic (bytes over 5 rounds)")

    # Sparse updates: DRA ships orders of magnitude less than naive.
    sparse = sweep[UPDATE_FRACTIONS[0]][0]
    assert sparse["dra"] * 50 < sparse["naive_full"]
    # The two delta-shipping protocols ship identical content.
    for fraction in UPDATE_FRACTIONS:
        bp, __ = sweep[fraction]
        assert bp["dra"] == bp["reeval_delta"]
    # DRA traffic grows with update volume; naive stays result-sized.
    assert (
        sweep[UPDATE_FRACTIONS[-1]][0]["dra"]
        > sweep[UPDATE_FRACTIONS[0]][0]["dra"] * 10
    )
    benchmark(lambda: run_deployment(0.01))


def test_refresh_round_dra(benchmark):
    db = Database()
    market = StockMarket(db, seed=5)
    market.populate(BASE_ROWS)
    net = SimulatedNetwork()
    server = CQServer(db, net)
    client = CQClient("c")
    server.attach(client)
    client.register("watch", WATCH, Protocol.DRA_DELTA)

    def round_trip():
        market.tick(20)
        server.refresh_all()

    benchmark(round_trip)


def test_refresh_round_naive(benchmark):
    db = Database()
    market = StockMarket(db, seed=5)
    market.populate(BASE_ROWS)
    net = SimulatedNetwork()
    server = CQServer(db, net)
    client = CQClient("c")
    server.attach(client)
    client.register("watch", WATCH, Protocol.REEVAL_FULL)

    def round_trip():
        market.tick(20)
        server.refresh_all()

    benchmark(round_trip)


# -- real-socket smoke entry point (CI) ---------------------------------------


def real_smoke(rows=2_000, rounds=5, updates_per_round=20, durability=None):
    """Replay the E2 claim over loopback TCP with *measured* bytes.

    Two sessions subscribe to the same CQ — one on DRA_DELTA, one on
    REEVAL_FULL — and the per-connection encoded byte counts after
    ``rounds`` refresh cycles must show the delta protocol well under
    the naive one. Raises AssertionError when the claim fails.
    ``durability`` optionally journals every commit through a WAL at
    that path (the crash-safe configuration).
    """
    import asyncio

    from repro.bench.harness import format_table
    from repro.net.client import CQSession
    from repro.net.service import CQService

    async def scenario():
        db = Database()
        market = StockMarket(db, seed=11)
        market.populate(rows)
        service = CQService(db, durability=durability)
        addr = await service.start()
        sessions = {}
        for name, protocol in [
            ("dra", Protocol.DRA_DELTA),
            ("naive", Protocol.REEVAL_FULL),
        ]:
            session = CQSession(name, *addr)
            await session.connect()
            await session.register("watch", WATCH, protocol)
            sessions[name] = session
        # Registration ships a full initial result to both; measure
        # refresh traffic only, from this baseline.
        baseline = {
            name: service.sessions()[name].conn.bytes_sent
            for name in sessions
        }
        for __ in range(rounds):
            market.tick(updates_per_round, p_insert=0.1, p_delete=0.1)
            await service.refresh()
            for session in sessions.values():
                await session.wait_applied("watch", db.now(), timeout=10.0)
        truth = db.query(WATCH)
        for session in sessions.values():
            assert session.result("watch") == truth
        measured = {
            name: service.sessions()[name].conn.bytes_sent - baseline[name]
            for name in sessions
        }
        for session in sessions.values():
            await session.close()
        await service.stop()
        return measured

    measured = asyncio.run(scenario())
    dra_bytes, naive_bytes = measured["dra"], measured["naive"]
    print(
        format_table(
            [
                {
                    "rounds": rounds,
                    "updates/round": updates_per_round,
                    "dra_bytes": dra_bytes,
                    "naive_bytes": naive_bytes,
                    "dra_savings_x": round(naive_bytes / max(1, dra_bytes), 1),
                }
            ],
            title="E2 smoke: measured refresh bytes over loopback TCP",
        )
    )
    assert dra_bytes > 0, "DRA session saw no refresh traffic"
    assert dra_bytes * 3 < naive_bytes, (
        f"DRA shipped {dra_bytes} bytes vs naive {naive_bytes}; "
        "expected at least a 3x reduction"
    )
    return measured


# -- durability overhead smoke (CI) --------------------------------------------


def durability_smoke(
    rows=2_000,
    rounds=8,
    updates_per_round=40,
    policy="batch",
    repeats=3,
    out_path="BENCH_e2.json",
    budget_pct=15.0,
):
    """Measure the WAL's cost on the loopback refresh path.

    Runs the same update+refresh loop with and without a write-ahead
    log (``fsync=policy``), best-of-``repeats`` each, and asserts the
    journaled configuration stays within ``budget_pct`` of the plain
    one. The measurements land in ``out_path`` (BENCH_e2 notes).
    """
    import asyncio
    import json
    import os
    import tempfile
    import time

    from repro.bench.harness import format_table
    from repro.net.client import CQSession
    from repro.net.service import CQService

    async def one_run(durability):
        db = Database(durability=durability)
        market = StockMarket(db, seed=29)
        market.populate(rows)
        service = CQService(db)
        addr = await service.start()
        session = CQSession("bench", *addr)
        await session.connect()
        await session.register("watch", WATCH, Protocol.DRA_DELTA)
        start = time.perf_counter()
        for __ in range(rounds):
            market.tick(updates_per_round, p_insert=0.1, p_delete=0.1)
            await service.refresh()
            await session.wait_applied("watch", db.now(), timeout=10.0)
        elapsed = time.perf_counter() - start
        assert session.result("watch") == db.query(WATCH)
        await session.close()
        await service.stop()
        if db.wal is not None:
            db.wal.close()
        return elapsed

    def best_of(durability_factory):
        times = []
        for __ in range(repeats):
            times.append(asyncio.run(one_run(durability_factory())))
        return min(times)

    with tempfile.TemporaryDirectory() as tmp:
        counter = iter(range(1_000))

        def wal_path():
            from repro.storage.wal import WriteAheadLog

            path = os.path.join(tmp, f"bench-{next(counter)}.wal")
            return WriteAheadLog(path, fsync=policy)

        plain_s = best_of(lambda: None)
        wal_s = best_of(wal_path)

    overhead_pct = (wal_s - plain_s) / plain_s * 100.0
    record = {
        "benchmark": "e2_durability_smoke",
        "rows": rows,
        "rounds": rounds,
        "updates_per_round": updates_per_round,
        "fsync_policy": policy,
        "plain_s": round(plain_s, 4),
        "wal_s": round(wal_s, 4),
        "overhead_pct": round(overhead_pct, 1),
        "budget_pct": budget_pct,
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        format_table(
            [record], title="E2 durability smoke: WAL overhead on refresh path"
        )
    )
    assert overhead_pct < budget_pct, (
        f"WAL ({policy}) overhead {overhead_pct:.1f}% exceeds the "
        f"{budget_pct:.0f}% budget ({wal_s:.3f}s vs {plain_s:.3f}s)"
    )
    return record


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--real",
        action="store_true",
        help="run over real loopback sockets instead of the simulator",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast traffic self-check and exit",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=2_000,
        help="base table size (real smoke mode)",
    )
    parser.add_argument(
        "--durability",
        choices=["always", "batch", "off"],
        default=None,
        help="also measure WAL overhead under this fsync policy "
        "(asserts it stays under ~15%% and writes BENCH_e2.json)",
    )
    args = parser.parse_args(argv)
    if not (args.real and args.smoke):
        parser.error("run the full sweep via pytest; use --real --smoke here")
    real_smoke(rows=args.rows)
    if args.durability:
        durability_smoke(rows=args.rows, policy=args.durability)
    print("e2 real-socket smoke ok")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
