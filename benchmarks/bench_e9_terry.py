"""E9 — §1/§2 vs Terry et al.: Continuous Queries handle only
append-only sources; DRA supports general updates.

Two workloads over the same watch query:
* append-only — both systems are correct; their refresh costs are
  comparable (both are incremental);
* general updates — Terry's model silently diverges from the truth
  (quantified staleness), while DRA remains exact.
"""

import pytest

from repro import Database
from repro.baselines.terry import TerryContinuousQuery
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.relational import parse_query
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 500"
ROUNDS = 6


def build(seed=91):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(1_000)
    return db, market


def test_append_only_both_correct(print_table, benchmark):
    db, market = build()
    q = parse_query(WATCH)
    terry = TerryContinuousQuery(q, db, strict=True)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("dra", WATCH, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    for __ in range(ROUNDS):
        market.tick(50, p_insert=1.0)
        terry.refresh()
        mgr.poll()
    truth = db.query(WATCH)
    assert terry.result == truth
    assert mgr.get("dra").previous_result == truth
    benchmark(lambda: terry.refresh())


def test_general_updates_terry_diverges(print_table, benchmark):
    db, market = build(seed=92)
    q = parse_query(WATCH)
    terry = TerryContinuousQuery(q, db, strict=False)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("dra", WATCH, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    rows = []
    for round_no in range(ROUNDS):
        market.tick(80, p_insert=0.2, p_delete=0.3)
        terry.refresh()
        mgr.poll()
        truth = db.query(WATCH)
        terry_values = terry.result.values_set()
        truth_values = truth.values_set()
        stale = len(terry_values - truth_values)
        missing = len(truth_values - terry_values)
        rows.append(
            {
                "round": round_no + 1,
                "truth_rows": len(truth),
                "terry_rows": len(terry.result),
                "stale_rows": stale,
                "missed_rows": missing,
                "dra_exact": mgr.get("dra").previous_result == truth,
            }
        )
    print_table(rows, title="E9: Terry (append-only model) vs truth")
    final = rows[-1]
    assert final["dra_exact"]
    assert final["stale_rows"] > 0  # deleted rows linger
    assert final["missed_rows"] > 0  # modified-in rows never appear
    assert terry.ignored_updates > 0
    benchmark(lambda: db.query(WATCH))


def test_refresh_cost_append_only_dra(benchmark):
    db, market = build(seed=93)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("dra", WATCH)
    mgr.drain()

    def cycle():
        market.tick(50, p_insert=1.0)
        mgr.poll()

    benchmark.group = "e9 append-only refresh"
    benchmark(cycle)


def test_refresh_cost_append_only_terry(benchmark):
    db, market = build(seed=93)
    terry = TerryContinuousQuery(parse_query(WATCH), db, strict=True)

    def cycle():
        market.tick(50, p_insert=1.0)
        terry.refresh()

    benchmark.group = "e9 append-only refresh"
    benchmark(cycle)
