"""E13 — cumulative work over a long monitoring horizon.

The paper's opening complaint is *cumulative*: users "re-issue their
queries frequently", so the cost that matters is the total over the
monitoring lifetime, not one refresh. Run the same 40-round monitoring
horizon (sparse updates per round — the common case of §5.1) under all
three engines and compare total work and total bytes that would ship.

Claim shape: re-evaluation's cumulative work is rounds × |R|; DRA's is
rounds × |Δ|; the gap is the whole argument for continual queries.
"""

import pytest

from repro import Database
from repro.core import CQManager, DeliveryMode, Engine, EvaluationStrategy
from repro.metrics import Metrics
from repro.net.messages import delta_wire_size, relation_wire_size
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 700"
BASE_ROWS = 3_000
ROUNDS = 40
UPDATES_PER_ROUND = 15


def run_horizon(engine):
    db = Database()
    market = StockMarket(db, seed=131)
    market.populate(BASE_ROWS)
    metrics = Metrics()
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics)
    mgr.register_sql("watch", WATCH, engine=engine, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    metrics.reset()
    shipped_bytes = 0
    for __ in range(ROUNDS):
        market.tick(UPDATES_PER_ROUND)
        for note in mgr.poll():
            if note.delta is not None:
                shipped_bytes += delta_wire_size(note.delta)
    work = (
        metrics[Metrics.ROWS_SCANNED]
        + metrics[Metrics.DELTA_ROWS_READ]
        + metrics[Metrics.INDEX_PROBES]
    )
    final = mgr.get("watch").previous_result
    assert final == db.query(WATCH)
    naive_ship = ROUNDS * relation_wire_size(final)
    return work, shipped_bytes, naive_ship


def test_cumulative_work_over_horizon(print_table, benchmark):
    rows = []
    results = {}
    for engine in (Engine.DRA, Engine.EAGER, Engine.REEVALUATE):
        work, shipped, naive_ship = run_horizon(engine)
        results[engine] = (work, shipped)
        rows.append(
            {
                "engine": engine.value,
                "total_ops": work,
                "delta_bytes_shipped": shipped,
                "naive_full_ship_bytes": naive_ship,
            }
        )
    print_table(
        rows,
        title=f"E13: {ROUNDS} rounds x {UPDATES_PER_ROUND} updates "
        f"over {BASE_ROWS} rows",
    )
    dra_work, dra_ship = results[Engine.DRA]
    reeval_work, reeval_ship = results[Engine.REEVALUATE]
    eager_work, __ = results[Engine.EAGER]

    # Cumulative DRA work ~ rounds x delta; re-eval ~ rounds x base.
    assert dra_work <= 2 * ROUNDS * UPDATES_PER_ROUND
    assert reeval_work >= ROUNDS * (BASE_ROWS - 1)
    assert reeval_work > 40 * dra_work
    # Eager pays the same order as deferred here (no repeated hot rows
    # within a round's single transaction).
    assert eager_work <= 3 * dra_work
    # Both differential engines ship identical (delta-sized) content.
    assert dra_ship == reeval_ship
    benchmark(lambda: run_horizon(Engine.DRA))


@pytest.mark.parametrize("engine", [Engine.DRA, Engine.REEVALUATE])
def test_horizon_time(benchmark, engine):
    benchmark.group = "e13 horizon"
    benchmark.pedantic(
        lambda: run_horizon(engine), rounds=3, iterations=1
    )
