"""E16 — sharded cluster: refresh throughput must scale with shards.

A :class:`~repro.cluster.ClusterRouter` drives N partitioned shards
through scatter/gather refresh cycles. The partitioned fan-out workload
(10k Zipf-skewed subscribers over ``stocks``, partitioned by ``sid``)
runs partition-parallel: every shard owns every group but evaluates it
over its slice only, so per-cycle work splits across shards while the
router's scatter/merge overhead stays fixed.

The machine has one core, so the claim is asserted on a deterministic
*critical-path cost model*, never on wall-clock: per configuration,

    cost  =  router work  +  max over shards of that shard's work

where work is the operation counters the rest of the suite gates on
(``terms_evaluated``, ``rows_scanned``, ``delta_rows_read``,
``predindex_probes``) accumulated over the measured refresh cycles.
Registration/seeding cost is excluded by snapshotting after setup.
With perfect balance the 4-shard critical path approaches 1/4 of the
1-shard path; consistent-hash imbalance and router overhead eat some of
it, so the gate is ≥2.5x modelled throughput at 4 shards vs 1.

Run ``python benchmarks/bench_e16_cluster.py --smoke`` for the CI
self-check: sweeps 1/2/4 shards with a fixed seed, verifies every
sampled subscription against the authoritative oracle, asserts the
≥2.5x gate, and writes ``BENCH_e16.json``.

``--wall-clock`` is the one measurement the cost model cannot make on
a single core: real OS-process shards (``ProcessBackend``) with an
injected per-frame delay on *every* shard, so a refresh cycle's
evaluation time is visible as wall-clock. Sequentially the cycle costs
``shards × d``; the overlapped scatter/gather path is bounded by the
slowest host, ~``d``. The gate is overlapped ≥1.8x faster at 4 shards
(the honest floor after spawn/codec overhead; the ideal is ~4x).
Writes ``BENCH_e17.json``.
"""

import random
import sys
import time

import pytest

from repro.cluster import ClusterRouter, ProcessBackend
from repro.metrics import Metrics
from repro.workload.fanout import FanoutWorkload

N_TEMPLATES = 100
BASE_ROWS = 400
PRICE_DOMAIN = (0, 1000)

#: The operation counters that model evaluation work, router and shard
#: alike (the same counters every other bench gates on).
WORK_COUNTERS = (
    Metrics.TERMS_EVALUATED,
    Metrics.ROWS_SCANNED,
    Metrics.DELTA_ROWS_READ,
    Metrics.PREDINDEX_PROBES,
)


def build_cluster(shards, seed=16, replicas=0):
    """A started cluster with a partitioned, populated stocks table."""
    router = ClusterRouter(
        shards=shards,
        seed=seed,
        vnodes=256,
        replicas=min(replicas, shards - 1),
    )
    router.declare_table(
        "stocks",
        [("sid", int), ("name", str), ("price", int)],
        partition_key="sid",
        indexes=[("sid",)],
    )
    router.start()
    stocks = router.db.table("stocks")
    rng = random.Random(seed + 1)
    tids = []
    with router.db.begin() as txn:
        for sid in range(BASE_ROWS):
            tids.append(
                txn.insert_into(
                    stocks,
                    (sid, f"S{sid}", rng.randrange(*PRICE_DOMAIN)),
                )
            )
    return router, tids


def subscribe_population(router, n_subs, seed=17):
    """Zipf-skewed fan-out subscribers; returns a correctness sample."""
    workload = FanoutWorkload(
        n_templates=N_TEMPLATES,
        seed=seed,
        skew=1.1,
        domain=PRICE_DOMAIN,
        eq_fraction=0.5,
        interval_width=40,
    )
    subs = workload.subscriptions(n_subs)
    for sub in subs:
        router.subscribe(sub.name, "watch", sub.sql)
    return subs[:: max(n_subs // 20, 1)]


def run_cycles(router, tids, cycles, mutations, seed=18):
    """Seeded mutation stream against the authoritative database."""
    rng = random.Random(seed)
    stocks = router.db.table("stocks")
    next_sid = BASE_ROWS
    for __ in range(cycles):
        with router.db.begin() as txn:
            for __ in range(mutations):
                if rng.random() < 0.15:
                    tids.append(
                        txn.insert_into(
                            stocks,
                            (
                                next_sid,
                                f"S{next_sid}",
                                rng.randrange(*PRICE_DOMAIN),
                            ),
                        )
                    )
                    next_sid += 1
                else:
                    tid = rng.choice(tids)
                    row = stocks.current.get_or_none(tid)
                    if row is None:
                        continue
                    sid, name, __price = row
                    txn.modify_in(
                        stocks,
                        tid,
                        (sid, name, rng.randrange(*PRICE_DOMAIN)),
                    )
        router.refresh()


def _work(counters):
    return sum(counters.get(name, 0) for name in WORK_COUNTERS)


def _shard_snapshots(router):
    stats = router.stats()
    return {
        shard_id: _work(info["counters"])
        for shard_id, info in stats["shards"].items()
    }


def measure(shards, n_subs, cycles=8, mutations=60, replicas=0):
    """One configuration's modelled critical path over the cycles."""
    router, tids = build_cluster(shards, replicas=replicas)
    sample = subscribe_population(router, n_subs)
    router.refresh()  # flush registration-era windows out of the model
    shard_before = _shard_snapshots(router)
    router_before = _work(router.metrics.snapshot())
    run_cycles(router, tids, cycles, mutations)
    shard_after = _shard_snapshots(router)
    router_work = _work(router.metrics.snapshot()) - router_before
    per_shard = {
        shard_id: shard_after[shard_id] - shard_before.get(shard_id, 0)
        for shard_id in shard_after
    }
    for sub in sample:
        got = sorted(r.values for r in router.result(sub.name, "watch"))
        want = sorted(r.values for r in router.db.query(sub.sql))
        assert got == want, f"{sub.name} diverged from the oracle"
    router.close()
    shard_path = max(per_shard.values())
    total = sum(per_shard.values())
    return {
        "shards": shards,
        "replicas": min(replicas, shards - 1),
        "subscribers": n_subs,
        "cycles": cycles,
        "router_work": router_work,
        "shard_work_total": total,
        "shard_work_max": shard_path,
        "critical_path": router_work + shard_path,
    }


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_cluster_refresh_converges_and_splits_work(shards, print_table):
    row = measure(shards, n_subs=600, cycles=4, mutations=40)
    # Fragment-and-replicate: the busiest shard's share of the
    # evaluation work shrinks as shards are added.
    assert row["shard_work_max"] <= row["shard_work_total"]
    if shards > 1:
        assert row["shard_work_max"] * shards < row["shard_work_total"] * 2
    print_table([row], title=f"E16: {shards}-shard refresh work")


def test_four_shards_beat_one_on_the_cost_model(print_table):
    one = measure(1, n_subs=600, cycles=4, mutations=40)
    four = measure(4, n_subs=600, cycles=4, mutations=40)
    speedup = one["critical_path"] / four["critical_path"]
    assert speedup >= 2.0, f"4-shard speedup {speedup:.2f}x < 2.0x"
    print_table(
        [one, four], title=f"E16: modelled speedup {speedup:.2f}x"
    )


# -- smoke entry point (CI) ---------------------------------------------------


def smoke(n_subs=10_000, out_path="BENCH_e16.json", replicas=0):
    """Fast self-check of the scaling claim at full population.

    Sweeps 1/2/4 shards over the same seeded workload, asserts the
    modelled refresh throughput at 4 shards against the single-shard
    configuration, and that every sampled subscription matches the
    authoritative oracle. With ``replicas=0`` the gate is ≥2.5x; with
    replication on, every slice is scattered to replica stores as well,
    so the gate allows the bounded overhead but still demands ≥2.0x —
    fault tolerance must not eat the scaling claim. Replicated runs
    merge into the existing record under ``"replicated"`` instead of
    replacing the base sweep. Returns the record (also written to
    ``out_path``).
    """
    import json
    import os

    from repro.bench.harness import format_table

    rows = [
        measure(shards, n_subs, replicas=replicas) for shards in (1, 2, 4)
    ]
    by_shards = {row["shards"]: row for row in rows}
    speedup = (
        by_shards[1]["critical_path"] / by_shards[4]["critical_path"]
    )
    for row in rows:
        row["speedup_vs_1"] = round(
            by_shards[1]["critical_path"] / row["critical_path"], 2
        )
    gate = 2.5 if replicas == 0 else 2.0
    assert speedup >= gate, (
        f"modelled 4-shard refresh throughput is {speedup:.2f}x the "
        f"single shard; the scaling claim (replicas={replicas}) needs "
        f">= {gate}x"
    )

    sweep = {
        "replicas": replicas,
        "sweep": rows,
        "speedup_4_vs_1": round(speedup, 2),
    }
    record = {
        "benchmark": "e16_cluster_smoke",
        "templates": N_TEMPLATES,
        "base_rows": BASE_ROWS,
    }
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                previous = json.load(fh)
            if previous.get("benchmark") == record["benchmark"]:
                record = previous
        except (ValueError, OSError):
            pass
    if replicas == 0:
        record.update(sweep)
    else:
        record["replicated"] = sweep
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        format_table(
            rows,
            title=(
                "E16 smoke: critical path vs shards "
                f"(replicas={replicas})"
            ),
        )
    )
    return record


def _wall_clock_router(shards, delay, overlap):
    """A real-process cluster where every shard sleeps ``delay`` per
    frame — evaluation time made visible without real query load."""
    router = ClusterRouter(
        shards=shards,
        seed=16,
        backend=ProcessBackend(slow={i: delay for i in range(shards)}),
        overlap=overlap,
    )
    router.declare_table(
        "stocks",
        [("sid", int), ("name", str), ("price", int)],
        partition_key="sid",
        indexes=[("sid",)],
    )
    router.start()
    stocks = router.db.table("stocks")
    rng = random.Random(21)
    tids = []
    with router.db.begin() as txn:
        for sid in range(48):
            tids.append(
                txn.insert_into(
                    stocks, (sid, f"S{sid}", rng.randrange(*PRICE_DOMAIN))
                )
            )
    sql = "SELECT sid, price FROM stocks WHERE price >= 0"
    router.subscribe("bench", "watch", sql)
    router.refresh()  # registration/seeding cost stays out of the timing
    return router, tids, sql


def _wall_clock_cycles(router, tids, cycles):
    """Timed refresh cycles over a seeded mutation stream."""
    rng = random.Random(22)
    stocks = router.db.table("stocks")
    elapsed = 0.0
    for __ in range(cycles):
        with router.db.begin() as txn:
            for tid in rng.sample(tids, 8):
                row = stocks.current.get_or_none(tid)
                if row is None:
                    continue
                sid, name, __price = row
                txn.modify_in(
                    stocks, tid, (sid, name, rng.randrange(*PRICE_DOMAIN))
                )
        start = time.monotonic()
        router.refresh()
        elapsed += time.monotonic() - start
    return elapsed


def wall_clock(
    shards=4, delay=0.25, cycles=2, out_path="BENCH_e17.json", gate=1.8
):
    """Overlapped vs sequential scatter over real-process shards.

    Every shard sleeps ``delay`` before each frame, so a sequential
    cycle costs ``shards × delay`` while the overlapped path is
    bounded by the slowest host. Both modes run the same seeded
    mutation stream, both converge to the oracle, and the overlapped
    run must be ≥ ``gate``x faster. Returns the record (also written
    to ``out_path``).
    """
    import json

    from repro.bench.harness import format_table

    timings = {}
    for label, overlap in (("sequential", False), ("overlapped", True)):
        router, tids, sql = _wall_clock_router(shards, delay, overlap)
        try:
            timings[label] = _wall_clock_cycles(router, tids, cycles)
            got = sorted(r.values for r in router.result("bench", "watch"))
            want = sorted(r.values for r in router.db.query(sql))
            assert got == want, f"{label} run diverged from the oracle"
        finally:
            router.close()
    speedup = timings["sequential"] / timings["overlapped"]
    floor = shards * delay * cycles  # what a fully serial sweep costs
    rows = [
        {
            "mode": label,
            "shards": shards,
            "delay_s": delay,
            "cycles": cycles,
            "elapsed_s": round(seconds, 3),
            "per_cycle_s": round(seconds / cycles, 3),
        }
        for label, seconds in timings.items()
    ]
    assert speedup >= gate, (
        f"overlapped scatter is {speedup:.2f}x the sequential sweep "
        f"(sequential {timings['sequential']:.2f}s vs overlapped "
        f"{timings['overlapped']:.2f}s); the wall-clock claim needs "
        f">= {gate}x"
    )
    record = {
        "benchmark": "e17_overlap_wall_clock",
        "shards": shards,
        "delay_s": delay,
        "cycles": cycles,
        "serial_floor_s": round(floor, 3),
        "sequential_s": round(timings["sequential"], 3),
        "overlapped_s": round(timings["overlapped"], 3),
        "speedup": round(speedup, 2),
        "gate": gate,
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        format_table(
            rows, title=f"E17 wall-clock: overlap speedup {speedup:.2f}x"
        )
    )
    return record


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast scaling self-check and exit",
    )
    parser.add_argument(
        "--wall-clock",
        action="store_true",
        help=(
            "measure overlapped vs sequential scatter wall-clock over "
            "real-process shards (writes BENCH_e17.json)"
        ),
    )
    parser.add_argument(
        "--delay",
        type=float,
        default=0.25,
        help="injected per-frame delay per shard (wall-clock mode)",
    )
    parser.add_argument(
        "--subs",
        type=int,
        default=10_000,
        help="subscriber population (smoke mode)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e16.json",
        help="where to write the smoke measurement record",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help=(
            "replica stores per placement group (capped at shards-1; "
            "the scaling gate relaxes from 2.5x to 2.0x)"
        ),
    )
    args = parser.parse_args(argv)
    if args.wall_clock:
        if args.delay <= 0:
            parser.error("--delay must be > 0")
        out = args.out if args.out != "BENCH_e16.json" else "BENCH_e17.json"
        wall_clock(delay=args.delay, out_path=out)
        print("e17 wall-clock ok")
        return 0
    if not args.smoke:
        parser.error(
            "run the full sweep via pytest; use --smoke or --wall-clock here"
        )
    if args.subs < 100:
        parser.error("--subs must be >= 100 for a meaningful sweep")
    if args.replicas < 0:
        parser.error("--replicas must be >= 0")
    smoke(n_subs=args.subs, out_path=args.out, replicas=args.replicas)
    print("e16 smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
