"""E4 — §5.1 limitations: "when the results turn out to be large (poor
selectivity of the query), then a lazy evaluation and transmission of
results is necessary" — i.e. DRA's edge shrinks as selectivity and
update volume grow; find where re-evaluation catches up.

Two sweeps over a 5k-row table:
* selectivity 1% -> 90% at a fixed update batch — DRA's *initial ship*
  and refresh traffic grow with the result, but refresh compute stays
  delta-bound;
* update fraction 1% -> 100% at fixed selectivity — DRA work grows
  linearly with the delta and meets complete re-evaluation near
  full-table churn (the crossover).
"""

import pytest

from repro.bench.harness import time_fn
from repro.dra.algorithm import dra_execute
from repro.metrics import Metrics
from repro.relational import parse_query
from repro.relational.evaluate import evaluate_spj

from conftest import Scenario

BASE_ROWS = 5_000
SELECTIVITY_THRESHOLDS = {0.01: 990, 0.10: 900, 0.50: 500, 0.90: 100}
UPDATE_FRACTIONS = [0.01, 0.1, 0.5, 1.0]


def query_for(threshold):
    return parse_query(
        f"SELECT sid, name, price FROM stocks WHERE price > {threshold}"
    )


def measure(scenario, query):
    """(dra_ops, reeval_ops, dra_seconds, reeval_seconds)."""
    dra_metrics = Metrics()
    dra_execute(query, scenario.db, deltas=scenario.deltas, ts=9, metrics=dra_metrics)
    reeval_metrics = Metrics()
    evaluate_spj(query, scenario.db.relation, reeval_metrics)
    dra_ops = (
        dra_metrics[Metrics.DELTA_ROWS_READ]
        + dra_metrics[Metrics.ROWS_SCANNED]
        + dra_metrics[Metrics.INDEX_PROBES]
    )
    reeval_ops = reeval_metrics[Metrics.ROWS_SCANNED]
    dra_s = time_fn(
        lambda: dra_execute(query, scenario.db, deltas=scenario.deltas, ts=9)
    )
    reeval_s = time_fn(lambda: evaluate_spj(query, scenario.db.relation))
    return dra_ops, reeval_ops, dra_s, reeval_s


def test_selectivity_sweep(print_table, benchmark):
    scenario = Scenario(BASE_ROWS, updates=50, seed=17)
    rows = []
    ops = {}
    for selectivity, threshold in SELECTIVITY_THRESHOLDS.items():
        query = query_for(threshold)
        dra_ops, reeval_ops, dra_s, reeval_s = measure(scenario, query)
        ops[selectivity] = (dra_ops, reeval_ops)
        rows.append(
            {
                "selectivity": selectivity,
                "dra_ops": dra_ops,
                "reeval_ops": reeval_ops,
                "dra_ms": dra_s * 1e3,
                "reeval_ms": reeval_s * 1e3,
            }
        )
    print_table(rows, title="E4a: fixed updates, selectivity sweep")
    # Refresh compute is delta-bound at every selectivity: re-eval
    # always scans the full base.
    for selectivity, (dra_ops, reeval_ops) in ops.items():
        assert dra_ops <= 2 * 50  # at most both sides of 50 updates
        assert reeval_ops >= BASE_ROWS - 50  # full scan (minus deletions)
    benchmark(lambda: measure(scenario, query_for(500)))


def test_update_fraction_crossover(print_table, benchmark):
    query = query_for(500)
    rows = []
    dra_ops_by_fraction = {}
    for fraction in UPDATE_FRACTIONS:
        scenario = Scenario(
            BASE_ROWS,
            updates=int(BASE_ROWS * fraction),
            seed=int(fraction * 100) + 1,
            p_insert=0.0,
            p_delete=0.0,
        )
        dra_ops, reeval_ops, dra_s, reeval_s = measure(scenario, query)
        dra_ops_by_fraction[fraction] = dra_ops
        rows.append(
            {
                "update_frac": fraction,
                "dra_ops": dra_ops,
                "reeval_ops": reeval_ops,
                "dra_ms": dra_s * 1e3,
                "reeval_ms": reeval_s * 1e3,
                "dra_wins": dra_ops < reeval_ops,
            }
        )
    print_table(rows, title="E4b: fixed selectivity, update-volume sweep")
    # DRA work grows with update volume...
    assert dra_ops_by_fraction[1.0] > 20 * dra_ops_by_fraction[0.01]
    # ...clearly ahead when updates are sparse...
    assert dra_ops_by_fraction[0.01] * 10 < BASE_ROWS
    # ...and no longer ahead at full-table churn (the crossover the
    # paper's limitation paragraph concedes).
    assert dra_ops_by_fraction[1.0] >= BASE_ROWS * 0.5
    scenario = Scenario(BASE_ROWS, updates=BASE_ROWS, seed=2)
    benchmark(
        lambda: dra_execute(query, scenario.db, deltas=scenario.deltas, ts=9)
    )
