"""Shared builders for the experiment benchmarks.

Each bench file reproduces one performance claim from the paper (see
DESIGN.md Section 3). Scenarios are deterministic: a seeded workload
perturbs a seeded initial state, and the *claims* are asserted on
operation counts (never on wall-clock), while pytest-benchmark reports
the timings that illustrate the same shapes.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.delta.capture import deltas_since
from repro.workload.stocks import StockMarket


class Scenario:
    """A populated market plus one captured update window."""

    def __init__(
        self,
        base_rows: int,
        updates: int,
        seed: int = 7,
        p_insert: float = 0.1,
        p_delete: float = 0.1,
        with_trades: bool = False,
        trades_per_stock: int = 0,
    ):
        self.db = Database()
        self.market = StockMarket(self.db, seed=seed, with_trades=with_trades)
        self.market.populate(base_rows, trades_per_stock=trades_per_stock)
        self.ts_before = self.db.now()
        if updates:
            self.market.tick(updates, p_insert=p_insert, p_delete=p_delete)
        self.tables = [self.market.stocks]
        if with_trades:
            self.tables.append(self.market.trades)
        self.deltas = deltas_since(self.tables, self.ts_before)

    def old_resolver(self):
        from repro.delta.propagate import old_resolver

        return old_resolver(self.db.relation, self.deltas)


@pytest.fixture(scope="module")
def print_table():
    """Print a formatted results table (visible with -s; always in
    captured output on failure)."""
    from repro.bench.harness import format_table

    def emit(rows, columns=None, title=None):
        print()
        print(format_table(rows, columns, title))

    return emit
