#!/usr/bin/env python
"""Quickstart: register a continual query and watch it refresh.

Run:  python examples/quickstart.py
"""

from repro import AttributeType, Database
from repro.core import CQManager, DeliveryMode


def main() -> None:
    # 1. A database with one table.
    db = Database()
    stocks = db.create_table(
        "stocks",
        [
            ("sid", AttributeType.INT),
            ("name", AttributeType.STR),
            ("price", AttributeType.INT),
        ],
    )
    stocks.insert_many(
        [
            (100000, "DEC", 156),
            (92394, "QLI", 145),
            (120992, "DEC", 150),
        ]
    )

    # 2. A continual query: by default it fires on every relevant
    #    commit and delivers the differential result.
    manager = CQManager(db)
    manager.register_sql(
        "watch",
        "SELECT sid, name, price FROM stocks WHERE price > 120",
        mode=DeliveryMode.COMPLETE,
    )
    for note in manager.drain():
        print(note.summary())
        print(note.result.to_table_string())
        print()

    # 3. Updates arrive — the paper's Example 1 transaction T.
    tids = {row.values[0]: row.tid for row in stocks.rows()}
    with db.begin() as txn:
        txn.insert_into(stocks, (101088, "MAC", 117))
        txn.modify_in(stocks, tids[120992], updates={"price": 149})
        txn.delete_from(stocks, tids[92394])

    # 4. The refresh was computed differentially (DRA): only the three
    #    changed tuples were examined, never the whole table.
    for note in manager.drain():
        print(note.summary())
        print("changed since last execution:")
        print(note.delta.as_wide_relation().to_table_string())
        print()
        print("complete result now:")
        print(note.result.to_table_string())


if __name__ == "__main__":
    main()
