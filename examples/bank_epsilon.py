#!/usr/bin/env python
"""The checking-account epsilon query (paper Sections 3.2 and 5.3).

"A bank manager wants to know how many millions of dollars she has in
all the checking accounts", re-reported only when
|Deposits − Withdrawals| exceeds half a million — not on a timer, not
on every update.

The trigger condition is evaluated *differentially*: each committed
batch feeds only its delta into the epsilon accumulator; the base
relation is never rescanned just to test T_cq.

Run:  python examples/bank_epsilon.py
"""

from repro.core import (
    CQManager,
    DeliveryMode,
    EpsilonTrigger,
    EvaluationStrategy,
    NetChangeEpsilon,
)
from repro import Database
from repro.workload.accounts import Bank

EPSILON = 500_000.0  # half a million dollars


def main() -> None:
    db = Database()
    bank = Bank(db, seed=1996)
    bank.populate(5_000)

    manager = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    epsilon = NetChangeEpsilon(EPSILON, "amount", table="accounts")
    manager.register_sql(
        "sum-up",
        "SELECT SUM(amount) AS total FROM accounts",
        trigger=EpsilonTrigger(epsilon),
        mode=DeliveryMode.COMPLETE,
    )
    initial = manager.drain()[0]
    print(f"initial report: ${initial.result.get(())[0]:,.0f}")
    print()

    reports = 0
    for day in range(1, 61):
        # A day's banking: deposits slightly outweigh withdrawals.
        bank.business_day(400, mean_amount=800.0, deposit_bias=0.58)
        # The CQ manager checks T_cq at its periodic evaluation point
        # ("say every day at midnight") — cheaply, from deltas alone.
        for note in manager.poll():
            reports += 1
            total = note.result.get(())[0]
            print(
                f"day {day:2d}: epsilon exceeded -> new report "
                f"${total:,.0f} (true: ${bank.total_balance():,.0f})"
            )
    print()
    print(f"60 business days, {reports} re-reports "
          f"(epsilon = ${EPSILON:,.0f})")
    print(f"current divergence since last report: "
          f"${epsilon.divergence:,.0f}")


if __name__ == "__main__":
    main()
