#!/usr/bin/env python
"""Monitoring a (simulated) file system through a DIOM translator.

Paper Section 5.5: "file system updates can be captured by either
operating system or middleware and translated into a differential
relation and fed into DRA." Here a simulated file system's journal is
mirrored into a ``files`` relation; two continual queries watch it:

* ``big-files``  — files over 1 MB (selection CQ);
* ``dir-usage``  — bytes per directory (grouped aggregate CQ,
  maintained differentially).

Run:  python examples/filesys_monitor.py
"""

from repro import Database
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.sources.base import MirrorAdapter
from repro.sources.filesystem import FileSystemSource, SimulatedFileSystem

MB = 1_000_000


def main() -> None:
    db = Database()
    fs = SimulatedFileSystem()
    adapter = MirrorAdapter(db, "files", FileSystemSource(fs))

    # Initial tree.
    fs.create("/var/log/app.log", 200_000)
    fs.create("/var/log/audit.log", 50_000)
    fs.create("/home/ann/thesis.tex", 80_000)
    fs.create("/home/ann/data.bin", 3 * MB)
    adapter.sync()

    manager = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    manager.register_sql(
        "big-files",
        f"SELECT path, size FROM files WHERE size > {MB}",
        mode=DeliveryMode.COMPLETE,
    )
    manager.register_sql(
        "dir-usage",
        "SELECT directory, SUM(size) AS bytes, COUNT(*) AS files "
        "FROM files GROUP BY directory",
        mode=DeliveryMode.COMPLETE,
    )
    for note in manager.drain():
        print(note.summary())
        print(note.result.to_table_string())
        print()

    print("--- the log grows past 1 MB; a scratch file appears ---")
    fs.write("/var/log/app.log", 2 * MB)
    fs.create("/tmp/scratch", 10)
    adapter.sync()
    show(manager)

    print("--- cleanup: data.bin deleted, thesis renamed ---")
    fs.remove("/home/ann/data.bin")
    fs.rename("/home/ann/thesis.tex", "/home/ann/thesis-final.tex")
    adapter.sync()
    show(manager)


def show(manager: CQManager) -> None:
    for note in manager.poll():
        print(f"  {note.summary()}")
        if note.cq_name == "big-files":
            print("  big files now:")
            for row in note.result.sorted_rows():
                print(f"    {row.values[0]} ({row.values[1]:,} bytes)")
        else:
            print(note.result.to_table_string())
    print()


if __name__ == "__main__":
    main()
