#!/usr/bin/env python
"""Federated continual queries across autonomous sites.

The paper's Internet topology, concretely: two producer sites own their
data (a stock exchange and a brokerage), a consumer site replicates
both by pulling *differential relations* over a simulated network —
"each server only generates delta relations when communicating with the
clients" (§5.1) — and runs a join CQ locally via DRA.

Federation is the loosely-coupled end of the distribution spectrum:
each site keeps its own clock and the consumer converges by pulling.
For the tightly-coupled end — one authoritative database scaled out
over partitioned shards with scatter/gather refresh and crash
recovery — see ``examples/sharded_cluster.py`` and DESIGN.md §12.

Run:  python examples/federated_sites.py
"""

from repro import AttributeType, Database
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.net.simnet import SimulatedNetwork
from repro.sources.base import MirrorAdapter
from repro.sources.remote import RemoteTableSource
from repro.workload.stocks import StockMarket


def main() -> None:
    # --- site 1: the exchange (owns quotes) --------------------------
    exchange = Database()
    market = StockMarket(exchange, seed=99)
    market.populate(1_000)

    # --- site 2: the brokerage (owns client positions) ---------------
    brokerage = Database()
    positions = brokerage.create_table(
        "positions",
        [("client", AttributeType.STR), ("sid", AttributeType.INT),
         ("shares", AttributeType.INT)],
    )
    with brokerage.begin() as txn:
        for i, client in enumerate(["ann", "bob", "cem"] * 20):
            txn.insert_into(positions, (client, (i * 37) % 1000 + 1, 10 + i))

    # --- the consumer site: replicas + a local CQ --------------------
    net = SimulatedNetwork(latency_seconds=0.005)
    consumer = Database()
    replicas = [
        MirrorAdapter(
            consumer, "stocks",
            RemoteTableSource(market.stocks, net, "exchange", "consumer"),
        ),
        MirrorAdapter(
            consumer, "positions",
            RemoteTableSource(positions, net, "brokerage", "consumer"),
        ),
    ]
    for replica in replicas:
        replica.sync()
    consumer.table("stocks").create_index(["sid"])
    consumer.table("positions").create_index(["sid"])

    manager = CQManager(consumer, strategy=EvaluationStrategy.PERIODIC)
    watch = (
        "SELECT p.client, s.name, s.price, p.shares "
        "FROM positions p, stocks s "
        "WHERE p.sid = s.sid AND s.price > 900"
    )
    manager.register_sql("exposure", watch, mode=DeliveryMode.COMPLETE)
    initial = manager.drain()[0]
    print(f"initial: {len(initial.result)} high-price holdings")
    print()

    for day in range(1, 6):
        # Each site evolves independently...
        market.tick(100, p_insert=0.05, p_delete=0.05, volatility=150)
        with brokerage.begin() as txn:
            txn.insert_into(positions, (f"day{day}-client", day * 111, 5))
        # ...the consumer pulls both delta streams, then refreshes.
        for replica in replicas:
            replica.sync()
        notes = manager.poll()
        changed = len(notes[0].delta) if notes and notes[0].delta else 0
        print(f"day {day}: {changed:3d} result changes, "
              f"holdings now {len(manager.get('exposure').previous_result)}")

    # The maintained result matches a from-scratch run on the consumer.
    assert manager.get("exposure").previous_result == consumer.query(watch)
    print()
    print("replication traffic:")
    for (src, dst), stats in sorted(net.links().items()):
        print(f"  {src:>9} -> {dst}: {stats.bytes:7,d} bytes "
              f"in {stats.messages} pulls")
    print()
    print("consumer-side status:")
    print(manager.status_report())


if __name__ == "__main__":
    main()
