#!/usr/bin/env python
"""Stock monitoring — the paper's running example, end to end.

Three continual queries over a live stock market:

* ``hot``   — σ_price>900: the Example 2 selection CQ, differential
  delivery (only what changed);
* ``q3``    — the introduction's Q3: "show the IBM stock transactions
  that differ by more than $5 from $75 per share";
* ``drops`` — deletions-only delivery: tuples that *left* the result,
  the notification mode Terry-style continuous queries cannot express.

Run:  python examples/stock_monitor.py
"""

from repro import Database
from repro.core import CQManager, DeliveryMode
from repro.workload.stocks import StockMarket


def main() -> None:
    db = Database()
    market = StockMarket(db, seed=2026)
    market.populate(2_000)

    manager = CQManager(db)
    manager.register_sql(
        "hot",
        "SELECT sid, name, price FROM stocks WHERE price > 900",
    )
    manager.register_sql(
        "q3",
        "SELECT sid, name, price FROM stocks "
        "WHERE name = 'IBM' AND ABS(price - 75) > 5",
    )
    manager.register_sql(
        "drops",
        "SELECT sid, name, price FROM stocks WHERE price > 900",
        mode=DeliveryMode.DELETIONS_ONLY,
    )
    for note in manager.drain():
        print(note.summary())
    print()

    # Plant an IBM listing so Q3 has something to track.
    ibm_tid = market.stocks.insert((999_001, "IBM", 76))
    for note in manager.drain():
        pass  # price 76 is within $5 of $75: no Q3 notification

    print("--- trading day 1: gentle drift ---")
    market.tick(100, volatility=30)
    market.stocks.modify(ibm_tid, updates={"price": 85})  # |85-75| > 5
    report(manager)

    print("--- trading day 2: crash (prices collapse) ---")
    market.tick(300, volatility=400)
    market.stocks.modify(ibm_tid, updates={"price": 72})  # back in band
    report(manager)

    print("--- trading day 3: delistings ---")
    market.tick(150, p_delete=0.5)
    report(manager)

    hot = manager.get("hot")
    print(f"final 'hot' result has {len(hot.previous_result)} rows; "
          f"verified equal to a from-scratch run: "
          f"{hot.previous_result == db.query('SELECT sid, name, price FROM stocks WHERE price > 900')}")


def report(manager: CQManager) -> None:
    for note in manager.drain():
        print(f"  {note.summary()}")
        if note.cq_name == "q3" and note.delta is not None:
            for entry in note.delta:
                print(f"    Q3 {entry.kind.value}: old={entry.old} new={entry.new}")
        if note.cq_name == "drops" and note.result is not None:
            for row in note.result.sorted_rows()[:5]:
                print(f"    left the hot list: {row.values}")
    print()


if __name__ == "__main__":
    main()
