#!/usr/bin/env python
"""A three-shard replicated CQ cluster: partitioned tables, a
cross-shard join, zero-downtime failover, and rejoin.

The router owns the authoritative database. ``positions`` is
partitioned by ``client`` — each shard holds one slice and evaluates
every continual query over it in parallel — while ``stocks`` is
replicated on demand. Each refresh cycle scatters only the delta
slices whose predicate footprints match (§5.2 relevance), gathers the
per-shard partial result deltas, and merges them (re-confirming
residual predicates) before notifying subscribers.

With ``replicas=1`` every placement group also keeps a lockstep
replica store on a distinct shard: killing a primary mid-stream costs
no refresh cycle — the router promotes the replica over its
already-hot tables within the same cycle, re-replicates the lost
capacity in the background, and releases the dead shard's pinned GC
zone once the fleet is healthy again. The killed shard later rejoins
from its WAL-first journal as spare capacity.

Run:  python examples/sharded_cluster.py
"""

import random
import tempfile

from repro.cluster import ClusterRouter, LocalBackend
from repro.metrics import Metrics

WATCH = (
    "SELECT p.client, s.name, s.price, p.shares "
    "FROM positions p, stocks s "
    "WHERE p.sid = s.sid AND s.price > 650"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as wal_root:
        router = ClusterRouter(
            shards=3,
            seed=11,
            replicas=1,
            backend=LocalBackend(wal_root=wal_root),
        )
        router.declare_table(
            "stocks",
            [("sid", int), ("name", str), ("price", int)],
            indexes=[("sid",)],
        )
        router.declare_table(
            "positions",
            [("client", str), ("sid", int), ("shares", int)],
            partition_key="client",
            indexes=[("sid",)],
        )
        router.start()
        run(router)
        router.close()


def run(router) -> None:
    rng = random.Random(2026)
    db = router.db
    stocks, positions = db.table("stocks"), db.table("positions")
    with db.begin() as txn:
        for sid in range(40):
            txn.insert_into(
                stocks, (sid, f"SYM{sid}", rng.randrange(100, 1000))
            )
        for i, client in enumerate(["ann", "bob", "cem"] * 10):
            txn.insert_into(positions, (client, i % 40, 10 + i))

    deltas = []
    initial = router.subscribe(
        "desk",
        "exposure",
        WATCH,
        on_delta=lambda cq, delta, ts: deltas.append((cq, len(delta), ts)),
    )
    print(f"initial: {len(initial)} high-price holdings")
    for record in router.describe():
        spread = "all shards" if record["parallel"] else "one shard"
        print(f"  {record['cq']}: partition-parallel across {spread}")
    placement = router.stats()["placement"]
    for group, hosts in sorted(placement.items()):
        print(
            f"  group {group}: primary on shard {hosts[0]}, "
            f"replicas on {hosts[1:]}"
        )
    print()

    for day in range(1, 4):
        with db.begin() as txn:
            for row in list(stocks.current):
                if rng.random() < 0.3:
                    sid, name, __ = row.values
                    txn.modify_in(
                        stocks, row.tid, (sid, name, rng.randrange(100, 1000))
                    )
            txn.insert_into(positions, (f"day{day}", day % 40, 5))
        router.refresh()
        print(
            f"day {day}: {len(deltas)} notifications so far, "
            f"holdings now {len(router.result('desk', 'exposure'))}"
        )

    # Kill a primary mid-stream: the next refresh promotes its groups'
    # replicas within the cycle — no error, no missed notification —
    # and re-replicates the lost capacity in the background.
    before = len(deltas)
    router.kill_shard(1)
    with db.begin() as txn:
        txn.insert_into(positions, ("late", 3, 99))
        for row in list(stocks.current)[:5]:
            sid, name, __ = row.values
            txn.modify_in(stocks, row.tid, (sid, name, 700 + sid))
    router.refresh()
    snapshot = router.metrics.snapshot()
    print(
        "\nshard 1 killed mid-stream; the same refresh cycle still "
        f"delivered {len(deltas) - before} notification(s)"
    )
    print(
        f"  failovers={snapshot.get(Metrics.FAILOVERS, 0)} "
        f"rereplications={snapshot.get(Metrics.REREPLICATIONS, 0)} "
        f"suspects={snapshot.get(Metrics.SUSPECTS, 0)}"
    )
    placement = router.stats()["placement"]
    for group, hosts in sorted(placement.items()):
        print(f"  group {group}: now served by {hosts}")
    report = router.collect_garbage()
    print(
        "  pinned zones after re-replication: "
        f"{sorted(report.pinned) or 'none (auto-released)'}"
    )
    assert sorted(r.values for r in router.result("desk", "exposure")) == (
        sorted(r.values for r in db.query(WATCH))
    )
    print("  merged result matches the single-process oracle")

    # Rejoin: every group failed over and re-replicated, so the
    # journaled shard comes back as spare capacity (a planned
    # catch-up, never a baseline fallback).
    caught_up = router.recover_shard(1)
    router.refresh()
    print(
        "\nshard 1 rejoined "
        f"({'planned catch-up' if caught_up else 'baseline fallback'}), "
        "idling as spare capacity"
    )
    assert sorted(r.values for r in router.result("desk", "exposure")) == (
        sorted(r.values for r in db.query(WATCH))
    )
    print("merged result matches the single-process oracle")

    print("\ncluster stats:")
    stats = router.stats()
    for shard_id, info in sorted(stats["shards"].items()):
        roles = {
            group: group_info["role"]
            for group, group_info in sorted(info["groups"].items())
        }
        print(
            f"  shard {shard_id}: alive={info['alive']} "
            f"health={info['health']} "
            f"evaluations={info['counters'].get(Metrics.EXECUTIONS, 0)} "
            f"stores={roles or '{spare}'}"
        )
    scrape = router.prometheus()
    primaries = [
        line for line in scrape.splitlines() if 'role="primary"' in line
    ]
    replicas = [
        line for line in scrape.splitlines() if 'role="replica"' in line
    ]
    print(
        f"  scrape: {len(primaries)} primary-store samples, "
        f"{len(replicas)} replica-store samples"
    )


if __name__ == "__main__":
    main()
