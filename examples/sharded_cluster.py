#!/usr/bin/env python
"""A three-shard CQ cluster: partitioned tables, a cross-shard join,
and crash recovery.

The router owns the authoritative database. ``positions`` is
partitioned by ``client`` — each shard holds one slice and evaluates
every continual query over it in parallel — while ``stocks`` is
replicated on demand. Each refresh cycle scatters only the delta
slices whose predicate footprints match (§5.2 relevance), gathers the
per-shard partial result deltas, and merges them (re-confirming
residual predicates) before notifying subscribers. Every shard
journals WAL-first, so a killed shard recovers from its own journal
and the router replays the window it missed.

Run:  python examples/sharded_cluster.py
"""

import random
import tempfile

from repro.cluster import ClusterRouter, LocalBackend
from repro.metrics import Metrics

WATCH = (
    "SELECT p.client, s.name, s.price, p.shares "
    "FROM positions p, stocks s "
    "WHERE p.sid = s.sid AND s.price > 650"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as wal_root:
        router = ClusterRouter(
            shards=3, seed=11, backend=LocalBackend(wal_root=wal_root)
        )
        router.declare_table(
            "stocks",
            [("sid", int), ("name", str), ("price", int)],
            indexes=[("sid",)],
        )
        router.declare_table(
            "positions",
            [("client", str), ("sid", int), ("shares", int)],
            partition_key="client",
            indexes=[("sid",)],
        )
        router.start()
        run(router, wal_root)
        router.close()


def run(router, wal_root) -> None:
    rng = random.Random(2026)
    db = router.db
    stocks, positions = db.table("stocks"), db.table("positions")
    with db.begin() as txn:
        for sid in range(40):
            txn.insert_into(
                stocks, (sid, f"SYM{sid}", rng.randrange(100, 1000))
            )
        for i, client in enumerate(["ann", "bob", "cem"] * 10):
            txn.insert_into(positions, (client, i % 40, 10 + i))

    deltas = []
    initial = router.subscribe(
        "desk",
        "exposure",
        WATCH,
        on_delta=lambda cq, delta, ts: deltas.append((cq, len(delta), ts)),
    )
    print(f"initial: {len(initial)} high-price holdings")
    for record in router.describe():
        spread = "all shards" if record["parallel"] else "one shard"
        print(f"  {record['cq']}: partition-parallel across {spread}")
    print()

    for day in range(1, 4):
        with db.begin() as txn:
            for row in list(stocks.current):
                if rng.random() < 0.3:
                    sid, name, __ = row.values
                    txn.modify_in(
                        stocks, row.tid, (sid, name, rng.randrange(100, 1000))
                    )
            txn.insert_into(positions, (f"day{day}", day % 40, 5))
        router.refresh()
        print(
            f"day {day}: {len(deltas)} notifications so far, "
            f"holdings now {len(router.result('desk', 'exposure'))}"
        )

    # Crash one shard; the stream keeps moving without it.
    router.kill_shard(1)
    with db.begin() as txn:
        txn.insert_into(positions, ("late", 3, 99))
    router.refresh()
    print("\nshard 1 killed; refresh continued on the survivors")

    # Recovery: the journal rebuilds the shard, the router replays the
    # window it missed, and the merged results match the oracle.
    replayed = router.recover_shard(1)
    router.refresh()
    mode = "delta replay" if replayed else "baseline fallback"
    print(f"shard 1 recovered via {mode}")
    assert sorted(r.values for r in router.result("desk", "exposure")) == (
        sorted(r.values for r in db.query(WATCH))
    )
    print("merged result matches the single-process oracle")

    print("\ncluster stats:")
    stats = router.stats()
    for shard_id, info in sorted(stats["shards"].items()):
        print(
            f"  shard {shard_id}: alive={info['alive']} "
            f"horizon={info['horizon']} "
            f"evaluations={info['counters'].get(Metrics.EXECUTIONS, 0)}"
        )
    scrape = router.prometheus()
    labelled = [
        line for line in scrape.splitlines() if 'shard="1"' in line
    ]
    print(f"  per-shard scrape: {len(labelled)} samples labelled shard=\"1\"")


if __name__ == "__main__":
    main()
