#!/usr/bin/env python
"""An Internet-style aggregator over heterogeneous sources, with a
client-server deployment and traffic accounting.

The paper's motivating scenario: information scattered across
autonomous producers —

* a *news wire* (append-only feed, the Terry et al. environment),
* a *quote service* that only publishes full snapshots (legacy source,
  diffed by the translator),

— joined by one continual query ("headlines about stocks trading above
$100"), served to two subscribers over a simulated network: one speaks
the DRA delta protocol, the other naively re-pulls the full result.
The byte counters at the end are Section 5.1's network argument, live.

Run:  python examples/multi_source_aggregator.py
"""

from repro import Database
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.relational import AttributeType, Schema
from repro.sources.append_log import AppendOnlyFeed
from repro.sources.base import MirrorAdapter
from repro.sources.snapshot import CSVSnapshotSource

NEWS_SCHEMA = Schema.of(
    ("sym", AttributeType.STR), ("headline", AttributeType.STR)
)
QUOTES_SCHEMA = Schema.of(("sym", AttributeType.STR), ("px", AttributeType.FLOAT))

WATCH = (
    "SELECT n.sym, n.headline, q.px FROM news n, quotes q "
    "WHERE n.sym = q.sym AND q.px > 100"
)


def main() -> None:
    db = Database()
    news = AppendOnlyFeed(NEWS_SCHEMA)
    quotes = CSVSnapshotSource(QUOTES_SCHEMA, ["sym"])
    adapters = [
        MirrorAdapter(db, "news", news),
        MirrorAdapter(db, "quotes", quotes),
    ]

    symbols = ["IBM", "DEC", "HPQ", "SUN", "SGI", "CRA", "TAN", "WAN"]
    base_quotes = {
        "IBM": 75.0, "DEC": 150.0, "HPQ": 95.0, "SUN": 130.0,
        "SGI": 140.0, "CRA": 110.0, "TAN": 120.0, "WAN": 105.0,
    }

    def snapshot_csv(overrides=None):
        prices = dict(base_quotes, **(overrides or {}))
        lines = ["sym,px"] + [f"{s},{prices[s]}" for s in symbols]
        return "\n".join(lines)

    quotes.publish_csv(snapshot_csv())
    # A backlog of headlines: the standing result is sizable.
    for sym in symbols:
        for i in range(3):
            news.append((sym, f"{sym} wire story #{i + 1}"))
    for adapter in adapters:
        adapter.sync()

    network = SimulatedNetwork(latency_seconds=0.002)
    server = CQServer(db, network)
    smart = CQClient("smart-subscriber")
    naive = CQClient("naive-subscriber")
    server.attach(smart)
    server.attach(naive)
    smart.register("watch", WATCH, Protocol.DRA_DELTA)
    naive.register("watch", WATCH, Protocol.REEVAL_FULL)

    wire_days = [
        # (news items, quote overrides for the day's snapshot)
        ([("IBM", "IBM wins mainframe deal")], {"IBM": 112.0}),
        ([("HPQ", "HPQ spins off printers"), ("DEC", "DEC beats estimates")],
         {"IBM": 112.0, "HPQ": 101.5}),
        ([], {"IBM": 70.0, "HPQ": 101.5}),  # IBM falls back out
        ([("SUN", "SUN ships new SPARC")], {"IBM": 70.0, "HPQ": 101.5}),
    ]
    for day, (items, overrides) in enumerate(wire_days, start=1):
        for item in items:
            news.append(item)
        quotes.publish_csv(snapshot_csv(overrides))
        for adapter in adapters:
            adapter.sync()
        server.refresh_all()
        print(f"day {day}: smart subscriber sees "
              f"{len(smart.result('watch'))} matching headlines")

    assert smart.result("watch") == naive.result("watch") == db.query(WATCH)
    print()
    print("final result (both subscribers identical):")
    print(smart.result("watch").to_table_string())
    print()
    smart_link = network.link("server", "smart-subscriber")
    naive_link = network.link("server", "naive-subscriber")
    print(f"traffic  smart (DRA deltas):  {smart_link.bytes:6d} bytes "
          f"in {smart_link.messages} messages")
    print(f"traffic  naive (full pulls):  {naive_link.bytes:6d} bytes "
          f"in {naive_link.messages} messages")
    print(f"DRA transmission savings: "
          f"{naive_link.bytes / max(1, smart_link.bytes):.1f}x")


if __name__ == "__main__":
    main()
