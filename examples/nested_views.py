#!/usr/bin/env python
"""Nested continual queries over materialized views.

Section 2 of the paper notes that Alert's active queries "can be
defined on multiple tables, on views, and can be nested within other
active queries" — here the same composability on DRA:

    stocks ──CQ──▶ hot_view ──CQ──▶ sector_rollup ──CQ──▶ alert

Every layer refreshes differentially: the view tables' update logs
carry exactly the deltas the upstream CQs delivered.

Run:  python examples/nested_views.py
"""

from repro import Database
from repro.core import CQManager, DeliveryMode, MaterializedView
from repro.workload.stocks import StockMarket


def main() -> None:
    db = Database()
    market = StockMarket(db, seed=777)
    market.populate(2_000)

    manager = CQManager(db)

    # Layer 1: the hot list (a selection CQ), materialized.
    manager.register_sql(
        "hot", "SELECT sid, name, price FROM stocks WHERE price > 800"
    )
    MaterializedView(manager, "hot", "hot_view")

    # Layer 2: per-symbol rollup over the *view*, materialized.
    manager.register_sql(
        "rollup",
        "SELECT name, COUNT(*) AS listings, SUM(price) AS exposure "
        "FROM hot_view GROUP BY name HAVING listings >= 1",
        mode=DeliveryMode.COMPLETE,
    )
    MaterializedView(manager, "rollup", "sector_rollup")

    # Layer 3: an alert CQ over the second view.
    manager.register_sql(
        "alert",
        "SELECT name, exposure FROM sector_rollup WHERE exposure > 950",
        mode=DeliveryMode.COMPLETE,
    )
    manager.drain()

    for day in range(1, 6):
        market.tick(200, p_insert=0.1, p_delete=0.1, volatility=250)
        notes = {n.cq_name: n for n in manager.drain()}
        alert = notes.get("alert")
        fired = len(alert.result) if alert and alert.result else 0
        print(f"day {day}: hot={len(db.relation('hot_view'))} rows, "
              f"rollup groups={len(db.relation('sector_rollup'))}, "
              f"alerts={fired}")

    # End-to-end exactness: the three-layer pipeline equals computing
    # the composition directly over the base table.
    direct = db.query(
        "SELECT name, SUM(price) AS exposure FROM stocks "
        "WHERE price > 800 GROUP BY name HAVING exposure > 950"
    )
    alert_cq = manager.get("alert")
    assert alert_cq.previous_result.values_set() == direct.values_set()
    print()
    print("pipeline result == direct composition over base data:", True)
    print()
    print(manager.status_report())


if __name__ == "__main__":
    main()
