"""Setup shim.

The full project metadata lives in pyproject.toml. This file exists so
that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to the legacy ``setup.py develop``
path when no ``[build-system]`` table is present).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Continual queries with differential re-evaluation "
        "(reproduction of Liu, Pu, Barga, Zhou, ICDCS 1996)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
