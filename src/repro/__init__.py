"""repro — Continual Queries with Differential Re-evaluation.

A faithful, from-scratch reproduction of:

    Ling Liu, Calton Pu, Roger Barga, Tong Zhou.
    "Differential Evaluation of Continual Queries."
    Proc. 16th International Conference on Distributed Computing
    Systems (ICDCS '96), pp. 450-460.

The package implements the paper's continual-query semantics (query +
trigger + termination condition), epsilon-specification triggers, and
the Differential Re-evaluation Algorithm (DRA), together with every
substrate they need: a relational engine, transactional storage with
update logs, differential relations, DIOM-style source translators, and
a deterministic client-server network simulation.

Quickstart::

    from repro import Database, AttributeType, CQManager

    db = Database()
    stocks = db.create_table(
        "stocks", [("name", AttributeType.STR), ("price", AttributeType.INT)]
    )
    manager = CQManager(db)
    cq = manager.register_sql(
        "watch", "SELECT name, price FROM stocks WHERE price > 120"
    )
    stocks.insert(("DEC", 150))
    for notification in manager.run_once():
        print(notification)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-claim reproduction results.
"""

__version__ = "1.0.0"

from repro.core import CQManager, ContinualQuery, DeliveryMode, Engine
from repro.errors import ReproError
from repro.metrics import Metrics
from repro.relational import (
    AggregateQuery,
    AggregateSpec,
    AttributeType,
    Relation,
    Schema,
    SPJQuery,
    col,
    lit,
    parse_query,
)
from repro.storage import Database, LogicalClock, Table, Transaction

__all__ = [
    "AggregateQuery",
    "AggregateSpec",
    "AttributeType",
    "CQManager",
    "ContinualQuery",
    "Database",
    "DeliveryMode",
    "Engine",
    "LogicalClock",
    "Metrics",
    "Relation",
    "ReproError",
    "SPJQuery",
    "Schema",
    "Table",
    "Transaction",
    "col",
    "lit",
    "parse_query",
    "__version__",
]
