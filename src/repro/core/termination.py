"""Termination conditions Stop (paper Section 3.1).

"If the termination condition Stop is nil, CQ will produce results from
Q(S_1) to Q(S_∞). Otherwise, CQ ... ends when the termination condition
becomes true." Stop conditions are checked after each execution and on
every poll.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TriggerError
from repro.storage.timestamps import Timestamp
from repro.core.triggers import TriggerContext


class StopCondition:
    """Base class; subclasses decide when the CQ's sequence ends."""

    def should_stop(self, ctx: TriggerContext) -> bool:
        raise NotImplementedError


class Never(StopCondition):
    """Stop = nil: the CQ runs until explicitly deregistered."""

    def should_stop(self, ctx: TriggerContext) -> bool:
        return False

    def __repr__(self) -> str:
        return "Never()"


class AtTime(StopCondition):
    """Stop once virtual time reaches ``deadline`` (the paper's t_n)."""

    def __init__(self, deadline: Timestamp):
        self.deadline = deadline

    def should_stop(self, ctx: TriggerContext) -> bool:
        return ctx.now >= self.deadline

    def __repr__(self) -> str:
        return f"AtTime({self.deadline})"


class AfterExecutions(StopCondition):
    """Stop after the CQ produced ``count`` results (incl. the initial)."""

    def __init__(self, count: int):
        if count <= 0:
            raise TriggerError("AfterExecutions count must be positive")
        self.count = count

    def should_stop(self, ctx: TriggerContext) -> bool:
        return ctx.executions >= self.count

    def __repr__(self) -> str:
        return f"AfterExecutions({self.count})"


class WhenCondition(StopCondition):
    """Escape hatch: stop when an arbitrary context predicate holds."""

    def __init__(self, fn: Callable[[TriggerContext], bool], name: str = "when"):
        self.fn = fn
        self.name = name

    def should_stop(self, ctx: TriggerContext) -> bool:
        return self.fn(ctx)

    def __repr__(self) -> str:
        return f"WhenCondition({self.name})"
