"""Garbage collection of differential relations (paper Section 5.4).

Each CQ's *active delta zone* is the log suffix newer than its last
execution. The *system active delta zone* of a table is the union of
the zones of all CQs reading it — everything older than the oldest
zone boundary "will not be used by any active CQ" and can be retired.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.storage.database import Database
from repro.storage.timestamps import Timestamp


class ActiveDeltaZones:
    """Tracks per-CQ zone boundaries and prunes table logs."""

    def __init__(self, db: Database):
        self.db = db
        # cq name -> (tables it reads, last execution ts)
        self._zones: Dict[str, Tuple[Tuple[str, ...], Timestamp]] = {}

    def register(self, cq_name: str, tables: Tuple[str, ...], ts: Timestamp) -> None:
        self._zones[cq_name] = (tables, ts)

    def advance(self, cq_name: str, ts: Timestamp) -> None:
        """The CQ executed at ``ts``: its zone boundary moves forward."""
        tables, old_ts = self._zones[cq_name]
        self._zones[cq_name] = (tables, max(old_ts, ts))

    def try_advance(self, cq_name: str, ts: Timestamp) -> bool:
        """Advance if the zone exists; False when it does not.

        Transport sessions advance boundaries from client
        acknowledgements, which can race an unsubscribe or eviction —
        an ack for a zone that is already gone is a no-op, not an
        error.
        """
        if cq_name not in self._zones:
            return False
        self.advance(cq_name, ts)
        return True

    def boundary(self, cq_name: str) -> Optional[Timestamp]:
        """The zone boundary for one CQ, or None if not registered."""
        entry = self._zones.get(cq_name)
        return entry[1] if entry is not None else None

    def boundaries(self) -> Dict[str, Timestamp]:
        """All registered zone boundaries, ``{name: ts}`` (for ops
        introspection — the StatsReply payload ships this map)."""
        return {name: ts for name, (__, ts) in self._zones.items()}

    def remove(self, cq_name: str) -> None:
        self._zones.pop(cq_name, None)

    def watchers(self, table: str) -> List[str]:
        return [
            name
            for name, (tables, __) in list(self._zones.items())
            if table in tables
        ]

    def horizon(self, table: str) -> Optional[Timestamp]:
        """The oldest zone boundary among CQs reading ``table``.

        None when no CQ reads the table — the caller decides whether
        unwatched logs may be discarded wholesale.

        Zone snapshots are taken with ``list`` so a parallel refresh
        advancing (or a finalizing CQ removing) a zone mid-collection
        never trips dict-mutation errors; a concurrently advanced zone
        only makes the horizon *older* than strictly necessary, which
        is always safe.
        """
        boundaries = [
            ts for tables, ts in list(self._zones.values()) if table in tables
        ]
        return min(boundaries) if boundaries else None

    def collect(self, include_unwatched: bool = False) -> Dict[str, int]:
        """Prune every table's log up to its horizon.

        Returns the number of log records retired per table. With
        ``include_unwatched``, logs of tables no CQ reads are pruned to
        the current time.
        """
        pruned: Dict[str, int] = {}
        for table in self.db.tables():
            horizon = self.horizon(table.name)
            if horizon is None:
                if not include_unwatched:
                    continue
                horizon = self.db.now()
            count = table.log.prune_before(horizon)
            if count:
                pruned[table.name] = count
        return pruned

    def __repr__(self) -> str:
        zones = {name: ts for name, (__, ts) in self._zones.items()}
        return f"ActiveDeltaZones({zones})"
