"""Epsilon specifications (paper Sections 3.2 and 5.3).

An ε-spec bounds the divergence between the last produced CQ result
and the current database state; when the accumulated divergence would
exceed the bound, the CQ must re-execute. Divergence is measured *on
the differential relations only* — the differential form of the
trigger condition from Section 5.3 — so checking a trigger never scans
a base relation.

The checking-account example maps directly::

    # T_cq: |Deposits − Withdrawals| >= 0.5M
    NetChangeEpsilon(limit=500_000, column="amount")

where Deposits is the SUM over insertions(Δ) and Withdrawals the SUM
over deletions(Δ) since the last execution.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TriggerError
from repro.delta.differential import DeltaRelation


class EpsilonSpec:
    """Accumulated-divergence bound. Subclasses define the measure.

    The CQ manager calls :meth:`observe` with each new consolidated
    delta batch for a relevant table, :meth:`exceeded` when checking
    the trigger, and :meth:`reset` after each execution.
    """

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        raise NotImplementedError

    def exceeded(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    @property
    def divergence(self) -> float:
        raise NotImplementedError


class CountEpsilon(EpsilonSpec):
    """Fire after ``limit`` or more tuples' worth of net changes."""

    def __init__(self, limit: int):
        if limit <= 0:
            raise TriggerError("CountEpsilon limit must be positive")
        self.limit = limit
        self._count = 0

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        self._count += len(delta)

    def exceeded(self) -> bool:
        return self._count >= self.limit

    def reset(self) -> None:
        self._count = 0

    @property
    def divergence(self) -> float:
        return float(self._count)

    def __repr__(self) -> str:
        return f"CountEpsilon({self._count}/{self.limit})"


class _ColumnEpsilon(EpsilonSpec):
    """Shared machinery for value-based specs over one numeric column.

    ``table`` restricts observation to one table's deltas (None accepts
    every observed delta whose schema has the column).
    """

    def __init__(self, limit: float, column: str, table: Optional[str] = None):
        if limit <= 0:
            raise TriggerError("epsilon limit must be positive")
        self.limit = limit
        self.column = column
        self.table = table
        self._divergence: float = 0.0

    def _column_deltas(self, delta: DeltaRelation):
        """Yield (old_value, new_value) per entry; missing sides are 0."""
        position = delta.schema.position(self.column)
        for entry in delta:
            old = entry.old[position] if entry.old is not None else 0
            new = entry.new[position] if entry.new is not None else 0
            yield (old or 0, new or 0)

    def _accepts(self, table_name: str, delta: DeltaRelation) -> bool:
        if self.table is not None and table_name != self.table:
            return False
        return self.column in delta.schema

    def exceeded(self) -> bool:
        return abs(self._divergence) >= self.limit

    def reset(self) -> None:
        self._divergence = 0.0

    @property
    def divergence(self) -> float:
        return self._divergence


class NetChangeEpsilon(_ColumnEpsilon):
    """|Σ new − Σ old| ≥ limit — the paper's |Deposits − Withdrawals|.

    Inserted values count positively, deleted values negatively, and a
    modification contributes its value change. The accumulated signed
    net change is compared by magnitude against the limit.
    """

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        if not self._accepts(table_name, delta):
            return
        for old, new in self._column_deltas(delta):
            self._divergence += new - old

    def __repr__(self) -> str:
        return (
            f"NetChangeEpsilon(|{self._divergence}| vs {self.limit} "
            f"on {self.column})"
        )


class MagnitudeEpsilon(_ColumnEpsilon):
    """Σ |new − old| ≥ limit — total volume of change regardless of
    direction ("the accumulated amount of withdrawals and deposits")."""

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        if not self._accepts(table_name, delta):
            return
        for old, new in self._column_deltas(delta):
            self._divergence += abs(new - old)

    def __repr__(self) -> str:
        return (
            f"MagnitudeEpsilon({self._divergence} vs {self.limit} "
            f"on {self.column})"
        )


class ResultDriftEpsilon(EpsilonSpec):
    """Bound the drift of a maintained aggregate from its last reported
    value — the original ESR reading of an epsilon query ("the query
    could contain errors up to half a million and still be meaningful").

    The manager updates :attr:`current` from the differentially
    maintained aggregate; :attr:`reported` is pinned at each execution.
    """

    _UNSET = object()  # "nothing reported yet" differs from "reported null"

    def __init__(self, limit: float):
        if limit <= 0:
            raise TriggerError("epsilon limit must be positive")
        self.limit = limit
        self.reported = ResultDriftEpsilon._UNSET
        self.current: Optional[float] = None

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        # Drift is tracked against the maintained aggregate, not raw
        # deltas; see CQManager's aggregate path.
        pass

    def note_current(self, value: Optional[float]) -> None:
        self.current = value
        if self.reported is ResultDriftEpsilon._UNSET:
            self.reported = value

    def exceeded(self) -> bool:
        if self.reported is ResultDriftEpsilon._UNSET:
            return False
        if self.reported is None or self.current is None:
            return self.reported != self.current
        return abs(self.current - self.reported) >= self.limit

    def reset(self) -> None:
        self.reported = self.current

    @property
    def divergence(self) -> float:
        if (
            self.reported is ResultDriftEpsilon._UNSET
            or self.reported is None
            or self.current is None
        ):
            return 0.0
        return self.current - self.reported

    def __repr__(self) -> str:
        return (
            f"ResultDriftEpsilon(reported={self.reported}, "
            f"current={self.current}, limit={self.limit})"
        )
