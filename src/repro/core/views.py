"""Materialized views over continual queries — CQ composition.

Section 2 credits Alert's active queries with being definable "on
multiple tables, on views, and ... nested within other active
queries". This module brings that to DRA-backed CQs: a
:class:`MaterializedView` subscribes to one CQ's notifications and
maintains its result as a *real table* in the same database — which
further CQs can then query, join against base tables, aggregate over,
or materialize again. Every layer refreshes differentially: the view
table's update log carries exactly the deltas the upstream CQ
delivered, so downstream DRA sees ordinary differential relations.

The upstream CQ must deliver deltas (DIFFERENTIAL or COMPLETE mode).
View rows are keyed by the upstream result tids through the same
key-mapping machinery the DIOM translators use.
"""

from __future__ import annotations


from repro.errors import RegistrationError
from repro.relational.schema import Schema
from repro.storage.table import Table
from repro.storage.update_log import UpdateKind
from repro.core.continual_query import DeliveryMode
from repro.core.manager import CQManager
from repro.core.results import Notification, NotificationKind
from repro.sources.base import MirrorAdapter, Source, SourceEvent


class _NotificationSource(Source):
    """Buffers CQ notifications as translator events."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._pending = []

    @property
    def schema(self) -> Schema:
        return self._schema

    def push_initial(self, result) -> None:
        for row in result:
            self._pending.append(
                SourceEvent(UpdateKind.INSERT, row.tid, row.values)
            )

    def push_delta(self, delta) -> None:
        for entry in delta:
            if entry.old is None:
                self._pending.append(
                    SourceEvent(UpdateKind.INSERT, entry.tid, entry.new)
                )
            elif entry.new is None:
                self._pending.append(
                    SourceEvent(UpdateKind.DELETE, entry.tid, None)
                )
            else:
                self._pending.append(
                    SourceEvent(UpdateKind.MODIFY, entry.tid, entry.new)
                )

    def drain(self):
        out, self._pending = self._pending, []
        return out


class MaterializedView:
    """Maintains one CQ's result as a queryable table.

    >>> view = MaterializedView(manager, "hot-stocks", "hot")
    >>> manager.register_sql("hot-count",
    ...     "SELECT COUNT(*) AS n FROM hot")   # a CQ over a CQ

    Synchronization is immediate: the view applies each upstream
    notification inside the notification callback, so by the time the
    manager finishes an execution the view table is current and any
    downstream CQ (in IMMEDIATE strategy) has already been offered the
    change.
    """

    def __init__(
        self,
        manager: CQManager,
        cq_name: str,
        view_table_name: str,
    ):
        cq = manager.get(cq_name)
        if cq.mode not in (DeliveryMode.DIFFERENTIAL, DeliveryMode.COMPLETE):
            raise RegistrationError(
                "a materialized view needs its upstream CQ to deliver "
                "deltas (DIFFERENTIAL or COMPLETE mode)"
            )
        self.manager = manager
        self.cq_name = cq_name
        # The upstream result schema: derive it from the CQ's query.
        if cq.is_aggregate:
            scopes = {
                ref.alias: manager.db.table(ref.table).schema
                for ref in cq.query.core.relations
            }
            from repro.relational.evaluate import spj_output_schema

            schema = cq.query.output_schema(
                spj_output_schema(cq.query.core, scopes)
            )
        else:
            from repro.relational.evaluate import spj_output_schema

            scopes = {
                ref.alias: manager.db.table(ref.table).schema
                for ref in cq.query.relations
            }
            schema = spj_output_schema(cq.query, scopes)

        self._source = _NotificationSource(schema)
        self._adapter = MirrorAdapter(manager.db, view_table_name, self._source)
        self.table: Table = self._adapter.table
        # Backfill the current state (the CQ has already run E_0).
        if cq.previous_result is not None:
            self._source.push_initial(cq.previous_result)
            self._adapter.sync()
        self._unsubscribe = manager.subscribe_notifications(
            cq_name, self._on_notification
        )

    def _on_notification(self, notification: Notification) -> None:
        if notification.kind is NotificationKind.INITIAL:
            return  # backfilled at construction
        if notification.kind is NotificationKind.STOPPED:
            return  # the view freezes at the final state
        if notification.delta is None:
            raise RegistrationError(
                "upstream CQ stopped delivering deltas; cannot maintain view"
            )
        self._source.push_delta(notification.delta)
        self._adapter.sync()

    def close(self) -> None:
        """Stop maintaining the view (the table remains, frozen)."""
        self._unsubscribe()

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.cq_name!r} -> {self.table.name!r}, "
            f"{len(self.table)} rows)"
        )
