"""Notifications: what a CQ execution delivers to its subscriber."""

from __future__ import annotations

import enum
from typing import Optional

from repro.relational.relation import Relation
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaRelation
from repro.core.continual_query import DeliveryMode


class NotificationKind(enum.Enum):
    INITIAL = "initial"  # E_0: the first, complete execution
    REFRESH = "refresh"  # a triggered re-execution with changes
    STOPPED = "stopped"  # the Stop condition became true


class Notification:
    """One element of the CQ's answer sequence, as delivered.

    Exactly which fields are populated depends on the delivery mode:
    ``delta`` carries the differential result (None for INITIAL),
    ``result`` the assembled relation (complete result, insertions, or
    deletions per mode; None when the mode is DIFFERENTIAL on a
    refresh).
    """

    __slots__ = ("cq_name", "kind", "seq", "ts", "mode", "delta", "result")

    def __init__(
        self,
        cq_name: str,
        kind: NotificationKind,
        seq: int,
        ts: Timestamp,
        mode: DeliveryMode,
        delta: Optional[DeltaRelation] = None,
        result: Optional[Relation] = None,
    ):
        self.cq_name = cq_name
        self.kind = kind
        self.seq = seq
        self.ts = ts
        self.mode = mode
        self.delta = delta
        self.result = result

    def summary(self) -> str:
        """One human-readable line, used by examples and logs."""
        if self.kind is NotificationKind.STOPPED:
            return f"[{self.ts}] {self.cq_name} #{self.seq}: stopped"
        if self.kind is NotificationKind.INITIAL:
            count = len(self.result) if self.result is not None else 0
            return f"[{self.ts}] {self.cq_name} #{self.seq}: initial result, {count} rows"
        if self.delta is not None:
            return f"[{self.ts}] {self.cq_name} #{self.seq}: {self.delta!r}"
        count = len(self.result) if self.result is not None else 0
        return f"[{self.ts}] {self.cq_name} #{self.seq}: {count} rows"

    def __repr__(self) -> str:
        return f"Notification({self.summary()})"
