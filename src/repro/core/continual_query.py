"""The continual-query triple (Q, T_cq, Stop) and its runtime state.

Paper Section 3.1: "A continual query CQ is a triple (Q, T_cq, Stop)
... the result of running a continual query is a sequence of query
answers Q(S_1), Q(S_2), ..., obtained by running Q on the sequence of
database states S_i, each time triggered by T_cq."
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union

from repro.errors import RegistrationError
from repro.relational.aggregates import AggregateQuery
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.storage.timestamps import Timestamp
from repro.core.termination import Never, StopCondition
from repro.core.triggers import OnEveryChange, Trigger

Query = Union[SPJQuery, AggregateQuery]


class DeliveryMode(enum.Enum):
    """What each refresh sends the user (Algorithm 1 step 4).

    * DIFFERENTIAL — the full result delta (inserts, deletes, modifies);
    * INSERTIONS_ONLY — "the differential result ... without deletion
      notification";
    * COMPLETE — "the complete set of the result matching the query",
      assembled as E_i(Q) ∪ insertions − deletions;
    * DELETIONS_ONLY — "notified [of] all the deleted tuples since the
      last execution".
    """

    DIFFERENTIAL = "differential"
    INSERTIONS_ONLY = "insertions_only"
    COMPLETE = "complete"
    DELETIONS_ONLY = "deletions_only"


class Engine(enum.Enum):
    """How refreshes are computed.

    * DRA — differential re-evaluation at trigger time, over the
      consolidated delta since the last execution (the paper's
      algorithm; repeated changes to one tuple net out before any
      computation happens);
    * EAGER — DRA applied immediately after *every* commit (the
      eager materialized-view policy of Section 2); notifications are
      still gated by the trigger, but maintenance work is paid per
      commit with no cross-transaction consolidation;
    * REEVALUATE — complete re-evaluation + Diff at trigger time (the
      baseline the paper compares against).
    """

    DRA = "dra"
    EAGER = "eager"
    REEVALUATE = "reevaluate"


class CQStatus(enum.Enum):
    ACTIVE = "active"
    STOPPED = "stopped"


class ContinualQuery:
    """Definition plus runtime state of one registered CQ."""

    def __init__(
        self,
        name: str,
        query: Query,
        trigger: Optional[Trigger] = None,
        stop: Optional[StopCondition] = None,
        mode: DeliveryMode = DeliveryMode.DIFFERENTIAL,
        engine: Engine = Engine.DRA,
        keep_result: bool = True,
    ):
        if not name:
            raise RegistrationError("a continual query needs a name")
        if mode is DeliveryMode.COMPLETE and not keep_result:
            # Section 3.3: complete delivery without a retained copy
            # would force re-processing from scratch on every refresh.
            raise RegistrationError(
                "COMPLETE delivery requires keep_result=True"
            )
        if engine is Engine.EAGER and not keep_result:
            raise RegistrationError(
                "the EAGER engine maintains the result continuously and "
                "therefore requires keep_result=True"
            )
        self.name = name
        self.query = query
        self.trigger = trigger if trigger is not None else OnEveryChange()
        self.stop = stop if stop is not None else Never()
        self.mode = mode
        self.engine = engine
        #: Retain the previous complete result (Section 3.3 trade-off).
        self.keep_result = keep_result

        # -- runtime state, owned by the manager --
        self.status = CQStatus.ACTIVE
        self.last_execution_ts: Timestamp = 0
        self.executions = 0
        self.previous_result: Optional[Relation] = None
        self.aggregate_state = None  # DifferentialAggregate for agg CQs
        #: EAGER engine only: the result maintained on every commit
        #: (previous_result stays pinned at the last *notification*).
        self.maintained_result: Optional[Relation] = None

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.query, AggregateQuery)

    @property
    def spj_core(self) -> SPJQuery:
        return self.query.core if self.is_aggregate else self.query

    @property
    def table_names(self) -> Tuple[str, ...]:
        seen = []
        for name in self.spj_core.table_names:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def __repr__(self) -> str:
        return (
            f"ContinualQuery({self.name!r}, {self.status.value}, "
            f"executions={self.executions}, engine={self.engine.value})"
        )
