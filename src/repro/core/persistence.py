"""Checkpoint and restore of a CQ manager (with its database).

A site checkpoint must capture more than table contents: each
registered continual query owns a delta window (its last execution
timestamp) and a retained previous result, and the update logs must
cover every window. This module serializes the manager together with
its database so a restored site resumes *differentially* — the first
refresh after restore processes exactly the updates the checkpoint had
not yet delivered.

Serializable trigger/stop conditions cover the declarative forms
(:class:`Every`, :class:`At`, epsilon specs, :class:`AfterExecutions`,
:class:`AtTime`, and their AnyOf/AllOf compositions). ``Custom`` and
``WhenCondition`` wrap arbitrary callables and are rejected with a
clear error — code cannot ride along in a JSON file.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ReproError
from repro.storage.snapshots import database_from_dict, database_to_dict
from repro.core.continual_query import ContinualQuery, CQStatus, DeliveryMode, Engine
from repro.core.epsilon import (
    CountEpsilon,
    MagnitudeEpsilon,
    NetChangeEpsilon,
    ResultDriftEpsilon,
)
from repro.core.manager import CQManager, EvaluationStrategy
from repro.core.termination import AfterExecutions, AtTime, Never
from repro.core.triggers import (
    AllOf,
    AnyOf,
    At,
    EpsilonTrigger,
    Every,
    EverySinceResult,
    OnEveryChange,
    OnUpdate,
)

FORMAT_VERSION = 1


class UnserializableCQ(ReproError):
    """The CQ uses a callable-based trigger or stop condition."""


# -- trigger serialization ---------------------------------------------------


def trigger_to_dict(trigger) -> Dict[str, Any]:
    if isinstance(trigger, OnEveryChange):
        return {"kind": "on_every_change"}
    if isinstance(trigger, Every):
        return {"kind": "every", "interval": trigger.interval}
    if isinstance(trigger, EverySinceResult):
        return {"kind": "every_since_result", "interval": trigger.interval}
    if isinstance(trigger, At):
        return {
            "kind": "at",
            "times": list(trigger.times),
            "next": trigger._next,
        }
    if isinstance(trigger, OnUpdate):
        return {
            "kind": "on_update",
            "table": trigger.table,
            "predicate_sql": trigger.predicate.to_sql(),
            "include_deletes": trigger.include_deletes,
            "armed": trigger._armed,
        }
    if isinstance(trigger, EpsilonTrigger):
        return {"kind": "epsilon", "spec": _spec_to_dict(trigger.spec)}
    if isinstance(trigger, (AnyOf, AllOf)):
        return {
            "kind": "any_of" if isinstance(trigger, AnyOf) else "all_of",
            "children": [trigger_to_dict(c) for c in trigger.children],
        }
    raise UnserializableCQ(
        f"trigger {trigger!r} cannot be checkpointed (callable-based)"
    )


def trigger_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "on_every_change":
        return OnEveryChange()
    if kind == "every":
        return Every(data["interval"])
    if kind == "every_since_result":
        return EverySinceResult(data["interval"])
    if kind == "at":
        trigger = At(data["times"])
        trigger._next = data["next"]
        return trigger
    if kind == "on_update":
        predicate = _parse_predicate(data["predicate_sql"])
        trigger = OnUpdate(
            data["table"], predicate, include_deletes=data["include_deletes"]
        )
        trigger._armed = data["armed"]
        return trigger
    if kind == "epsilon":
        return EpsilonTrigger(_spec_from_dict(data["spec"]))
    if kind in ("any_of", "all_of"):
        children = [trigger_from_dict(c) for c in data["children"]]
        return AnyOf(*children) if kind == "any_of" else AllOf(*children)
    raise ReproError(f"unknown trigger kind {kind!r}")


def _parse_predicate(sql_condition: str):
    """Parse a bare predicate by wrapping it in a dummy query."""
    from repro.relational.sql import parse_query

    return parse_query(f"SELECT * FROM t WHERE {sql_condition}").predicate


def _spec_to_dict(spec) -> Dict[str, Any]:
    if isinstance(spec, CountEpsilon):
        return {"kind": "count", "limit": spec.limit, "count": spec._count}
    if isinstance(spec, NetChangeEpsilon):
        return {
            "kind": "net_change",
            "limit": spec.limit,
            "column": spec.column,
            "table": spec.table,
            "divergence": spec.divergence,
        }
    if isinstance(spec, MagnitudeEpsilon):
        return {
            "kind": "magnitude",
            "limit": spec.limit,
            "column": spec.column,
            "table": spec.table,
            "divergence": spec.divergence,
        }
    if isinstance(spec, ResultDriftEpsilon):
        reported = spec.reported
        return {
            "kind": "drift",
            "limit": spec.limit,
            "reported": None if reported is ResultDriftEpsilon._UNSET else reported,
            "current": spec.current,
            "unset": reported is ResultDriftEpsilon._UNSET,
        }
    raise UnserializableCQ(f"epsilon spec {spec!r} cannot be checkpointed")


def _spec_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "count":
        spec = CountEpsilon(data["limit"])
        spec._count = data["count"]
        return spec
    if kind in ("net_change", "magnitude"):
        cls = NetChangeEpsilon if kind == "net_change" else MagnitudeEpsilon
        spec = cls(data["limit"], data["column"], data["table"])
        spec._divergence = data["divergence"]
        return spec
    if kind == "drift":
        spec = ResultDriftEpsilon(data["limit"])
        if not data["unset"]:
            spec.reported = data["reported"]
        spec.current = data["current"]
        return spec
    raise ReproError(f"unknown epsilon spec kind {kind!r}")


def _stop_to_dict(stop) -> Dict[str, Any]:
    if isinstance(stop, Never):
        return {"kind": "never"}
    if isinstance(stop, AtTime):
        return {"kind": "at_time", "deadline": stop.deadline}
    if isinstance(stop, AfterExecutions):
        return {"kind": "after_executions", "count": stop.count}
    raise UnserializableCQ(
        f"stop condition {stop!r} cannot be checkpointed (callable-based)"
    )


def _stop_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "never":
        return Never()
    if kind == "at_time":
        return AtTime(data["deadline"])
    if kind == "after_executions":
        return AfterExecutions(data["count"])
    raise ReproError(f"unknown stop kind {kind!r}")


# -- manager serialization ----------------------------------------------------


def manager_to_dict(manager: CQManager) -> Dict[str, Any]:
    """Serialize the manager and its database into one checkpoint."""
    cqs = []
    for cq in manager._cqs.values():
        cqs.append(
            {
                "name": cq.name,
                "sql": cq.query.to_sql(),
                "trigger": trigger_to_dict(cq.trigger),
                "stop": _stop_to_dict(cq.stop),
                "mode": cq.mode.value,
                "engine": cq.engine.value,
                "keep_result": cq.keep_result,
                "status": cq.status.value,
                "last_execution_ts": cq.last_execution_ts,
                "executions": cq.executions,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "database": database_to_dict(manager.db),
        "strategy": manager.strategy.value,
        "auto_gc": manager.auto_gc,
        "history_limit": manager.history_limit,
        "last_result_ts": dict(manager._last_result_ts),
        "cqs": cqs,
    }


def manager_from_dict(data: Dict[str, Any]) -> CQManager:
    """Restore a manager (and database) from :func:`manager_to_dict`.

    Previous results are re-derived by evaluating each CQ over the
    restored contents *as of the checkpoint* — sound because the
    checkpointed database state is exactly the state at checkpoint
    time, and each CQ's pending window (updates after its
    last_execution_ts) is preserved in the restored logs. The first
    post-restore refresh is therefore differential over precisely the
    not-yet-delivered updates.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(f"unsupported checkpoint format {data.get('format')!r}")
    db = database_from_dict(data["database"])
    manager = CQManager(
        db,
        strategy=EvaluationStrategy(data["strategy"]),
        auto_gc=data["auto_gc"],
        history_limit=data.get("history_limit", 0),
    )
    from repro.delta.capture import deltas_since
    from repro.relational.evaluate import evaluate_spj
    from repro.relational.sql import parse_query
    from repro.dra.aggregates import DifferentialAggregate

    for entry in data["cqs"]:
        query = parse_query(entry["sql"])
        cq = ContinualQuery(
            entry["name"],
            query,
            trigger=trigger_from_dict(entry["trigger"]),
            stop=_stop_from_dict(entry["stop"]),
            mode=DeliveryMode(entry["mode"]),
            engine=Engine(entry["engine"]),
            keep_result=entry["keep_result"],
        )
        cq.status = CQStatus(entry["status"])
        cq.executions = entry["executions"]
        last_ts = entry["last_execution_ts"]
        # Reconstruct the retained result at last_execution_ts: current
        # contents minus the pending window's effects.
        if cq.is_aggregate:
            cq.aggregate_state = DifferentialAggregate(cq.query, db)
            current = cq.aggregate_state.initialize()
            pending = deltas_since(
                [db.table(name) for name in cq.table_names], last_ts
            )
            # The state above is "now"; rewind the reported copy.
            manager._agg_applied[cq.name] = db.now()
            if pending:
                # previous_result = result at last_ts: recompute by
                # unapplying the pending aggregate delta is intricate;
                # instead evaluate over the old base state directly.
                from repro.delta.propagate import old_resolver
                from repro.relational.aggregates import evaluate_aggregate

                cq.previous_result = evaluate_aggregate(
                    cq.query, old_resolver(db.relation, pending)
                )
            else:
                cq.previous_result = current
        else:
            pending = deltas_since(
                [db.table(name) for name in cq.table_names], last_ts
            )
            if pending and cq.keep_result:
                from repro.delta.propagate import old_resolver

                cq.previous_result = evaluate_spj(
                    cq.query, old_resolver(db.relation, pending)
                )
            elif cq.keep_result:
                cq.previous_result = evaluate_spj(cq.query, db.relation)
            if cq.engine is Engine.EAGER:
                cq.maintained_result = evaluate_spj(cq.query, db.relation)
                manager._eager_applied[cq.name] = db.now()
        cq.last_execution_ts = last_ts

        manager._cqs[cq.name] = cq
        manager._last_result_ts[cq.name] = data.get(
            "last_result_ts", {}
        ).get(cq.name, last_ts)
        if manager.history_limit and cq.status is CQStatus.ACTIVE:
            from collections import deque

            manager._history[cq.name] = deque(maxlen=manager.history_limit)
        if cq.status is CQStatus.ACTIVE:
            manager.zones.register(cq.name, cq.table_names, last_ts)
            unsubscribes = []
            for table_name in cq.table_names:
                unsubscribes.append(
                    db.subscribe(table_name, manager._make_observer(cq))
                )
            manager._unsubscribes[cq.name] = unsubscribes
    return manager


def save_manager(manager: CQManager, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manager_to_dict(manager), handle)


def load_manager(path: str) -> CQManager:
    with open(path, "r", encoding="utf-8") as handle:
        return manager_from_dict(json.load(handle))


# -- CQ server serialization --------------------------------------------------


def server_to_dict(server) -> Dict[str, Any]:
    """Checkpoint a :class:`~repro.net.server.CQServer`.

    Captures the database (contents *and* update logs, including
    pruned_through marks) plus every subscription's identity, protocol,
    and refresh position. Retained result copies are not serialized —
    they are a pure function of the checkpointed state and are
    re-derived on restore. A lazy subscription's un-fetched pending
    delta is likewise not serialized: reconnecting clients resume
    through :meth:`CQServer.replay`, which recomputes their missed
    window from the restored logs, so nothing shipped to a client can
    be lost by flattening.
    """
    subscriptions = []
    for (client_id, cq_name), sub in server._subscriptions.items():
        subscriptions.append(
            {
                "client": client_id,
                "cq": cq_name,
                "sql": sub.query.to_sql(),
                "protocol": sub.protocol.value,
                "last_ts": sub.last_ts,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "kind": "cq_server",
        "name": server.name,
        "database": database_to_dict(server.db),
        "subscriptions": subscriptions,
    }


def server_from_dict(data: Dict[str, Any], network=None, metrics=None):
    """Restore a CQ server from :func:`server_to_dict`.

    Each subscription's retained previous result is rebuilt at its
    ``last_ts`` by evaluating the query over the restored base state
    with the pending window's effects unapplied — the same
    reconstruction :func:`manager_from_dict` uses. Replay zones are
    re-registered at each subscription's last refresh, so the first
    post-restore garbage collection cannot prune a window a
    reconnecting client may still request.
    """
    from repro.net.server import CQServer, Protocol, Subscription
    from repro.net.simnet import SimulatedNetwork
    from repro.delta.capture import deltas_since
    from repro.delta.propagate import old_resolver
    from repro.relational.evaluate import evaluate_spj
    from repro.relational.sql import parse_query

    if data.get("format") != FORMAT_VERSION or data.get("kind") != "cq_server":
        raise ReproError(
            f"not a CQ server checkpoint (format={data.get('format')!r}, "
            f"kind={data.get('kind')!r})"
        )
    db = database_from_dict(data["database"])
    server = CQServer(
        db,
        network if network is not None else SimulatedNetwork(),
        name=data["name"],
        metrics=metrics,
    )
    for entry in data["subscriptions"]:
        query = parse_query(entry["sql"])
        protocol = Protocol(entry["protocol"])
        last_ts = entry["last_ts"]
        if protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY):
            server.plans.get(query.to_sql(), query)
        pending = deltas_since(
            [db.table(name) for name in set(query.table_names)], last_ts
        )
        if pending:
            previous = evaluate_spj(query, old_resolver(db.relation, pending))
        else:
            previous = evaluate_spj(query, db.relation)
        subscription = Subscription(
            entry["client"], entry["cq"], query, protocol, last_ts, previous
        )
        server._subscriptions[(entry["client"], entry["cq"])] = subscription
        server.zones.register(
            server._zone(entry["client"], entry["cq"]),
            tuple(query.table_names),
            last_ts,
        )
    return server


def save_server(server, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(server_to_dict(server), handle)


def load_server(path: str, network=None, metrics=None):
    with open(path, "r", encoding="utf-8") as handle:
        return server_from_dict(json.load(handle), network, metrics)
