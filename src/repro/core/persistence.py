"""Checkpoint and restore of a CQ manager (with its database).

A site checkpoint must capture more than table contents: each
registered continual query owns a delta window (its last execution
timestamp) and a retained previous result, and the update logs must
cover every window. This module serializes the manager together with
its database so a restored site resumes *differentially* — the first
refresh after restore processes exactly the updates the checkpoint had
not yet delivered.

Serializable trigger/stop conditions cover the declarative forms
(:class:`Every`, :class:`At`, epsilon specs, :class:`AfterExecutions`,
:class:`AtTime`, and their AnyOf/AllOf compositions). ``Custom`` and
``WhenCondition`` wrap arbitrary callables and are rejected with a
clear error — code cannot ride along in a JSON file.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.errors import CheckpointError, ReproError
from repro.storage.snapshots import (
    database_from_dict,
    database_to_dict,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.continual_query import ContinualQuery, CQStatus, DeliveryMode, Engine
from repro.core.epsilon import (
    CountEpsilon,
    MagnitudeEpsilon,
    NetChangeEpsilon,
    ResultDriftEpsilon,
)
from repro.core.manager import CQManager, EvaluationStrategy
from repro.core.termination import AfterExecutions, AtTime, Never
from repro.core.triggers import (
    AllOf,
    AnyOf,
    At,
    EpsilonTrigger,
    Every,
    EverySinceResult,
    OnEveryChange,
    OnUpdate,
)

FORMAT_VERSION = 1


class UnserializableCQ(ReproError):
    """The CQ uses a callable-based trigger or stop condition."""


# -- trigger serialization ---------------------------------------------------


def trigger_to_dict(trigger) -> Dict[str, Any]:
    if isinstance(trigger, OnEveryChange):
        return {"kind": "on_every_change"}
    if isinstance(trigger, Every):
        return {"kind": "every", "interval": trigger.interval}
    if isinstance(trigger, EverySinceResult):
        return {"kind": "every_since_result", "interval": trigger.interval}
    if isinstance(trigger, At):
        return {
            "kind": "at",
            "times": list(trigger.times),
            "next": trigger._next,
        }
    if isinstance(trigger, OnUpdate):
        return {
            "kind": "on_update",
            "table": trigger.table,
            "predicate_sql": trigger.predicate.to_sql(),
            "include_deletes": trigger.include_deletes,
            "armed": trigger._armed,
        }
    if isinstance(trigger, EpsilonTrigger):
        return {"kind": "epsilon", "spec": _spec_to_dict(trigger.spec)}
    if isinstance(trigger, (AnyOf, AllOf)):
        return {
            "kind": "any_of" if isinstance(trigger, AnyOf) else "all_of",
            "children": [trigger_to_dict(c) for c in trigger.children],
        }
    raise UnserializableCQ(
        f"trigger {trigger!r} cannot be checkpointed (callable-based)"
    )


def trigger_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "on_every_change":
        return OnEveryChange()
    if kind == "every":
        return Every(data["interval"])
    if kind == "every_since_result":
        return EverySinceResult(data["interval"])
    if kind == "at":
        trigger = At(data["times"])
        trigger._next = data["next"]
        return trigger
    if kind == "on_update":
        predicate = _parse_predicate(data["predicate_sql"])
        trigger = OnUpdate(
            data["table"], predicate, include_deletes=data["include_deletes"]
        )
        trigger._armed = data["armed"]
        return trigger
    if kind == "epsilon":
        return EpsilonTrigger(_spec_from_dict(data["spec"]))
    if kind in ("any_of", "all_of"):
        children = [trigger_from_dict(c) for c in data["children"]]
        return AnyOf(*children) if kind == "any_of" else AllOf(*children)
    raise ReproError(f"unknown trigger kind {kind!r}")


def _parse_predicate(sql_condition: str):
    """Parse a bare predicate by wrapping it in a dummy query."""
    from repro.relational.sql import parse_query

    return parse_query(f"SELECT * FROM t WHERE {sql_condition}").predicate


def _spec_to_dict(spec) -> Dict[str, Any]:
    if isinstance(spec, CountEpsilon):
        return {"kind": "count", "limit": spec.limit, "count": spec._count}
    if isinstance(spec, NetChangeEpsilon):
        return {
            "kind": "net_change",
            "limit": spec.limit,
            "column": spec.column,
            "table": spec.table,
            "divergence": spec.divergence,
        }
    if isinstance(spec, MagnitudeEpsilon):
        return {
            "kind": "magnitude",
            "limit": spec.limit,
            "column": spec.column,
            "table": spec.table,
            "divergence": spec.divergence,
        }
    if isinstance(spec, ResultDriftEpsilon):
        reported = spec.reported
        return {
            "kind": "drift",
            "limit": spec.limit,
            "reported": None if reported is ResultDriftEpsilon._UNSET else reported,
            "current": spec.current,
            "unset": reported is ResultDriftEpsilon._UNSET,
        }
    raise UnserializableCQ(f"epsilon spec {spec!r} cannot be checkpointed")


def _spec_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "count":
        spec = CountEpsilon(data["limit"])
        spec._count = data["count"]
        return spec
    if kind in ("net_change", "magnitude"):
        cls = NetChangeEpsilon if kind == "net_change" else MagnitudeEpsilon
        spec = cls(data["limit"], data["column"], data["table"])
        spec._divergence = data["divergence"]
        return spec
    if kind == "drift":
        spec = ResultDriftEpsilon(data["limit"])
        if not data["unset"]:
            spec.reported = data["reported"]
        spec.current = data["current"]
        return spec
    raise ReproError(f"unknown epsilon spec kind {kind!r}")


def _stop_to_dict(stop) -> Dict[str, Any]:
    if isinstance(stop, Never):
        return {"kind": "never"}
    if isinstance(stop, AtTime):
        return {"kind": "at_time", "deadline": stop.deadline}
    if isinstance(stop, AfterExecutions):
        return {"kind": "after_executions", "count": stop.count}
    raise UnserializableCQ(
        f"stop condition {stop!r} cannot be checkpointed (callable-based)"
    )


def _stop_from_dict(data: Dict[str, Any]):
    kind = data["kind"]
    if kind == "never":
        return Never()
    if kind == "at_time":
        return AtTime(data["deadline"])
    if kind == "after_executions":
        return AfterExecutions(data["count"])
    raise ReproError(f"unknown stop kind {kind!r}")


# -- manager serialization ----------------------------------------------------


def manager_to_dict(manager: CQManager) -> Dict[str, Any]:
    """Serialize the manager and its database into one checkpoint."""
    cqs = []
    for cq in manager._cqs.values():
        cqs.append(
            {
                "name": cq.name,
                "sql": cq.query.to_sql(),
                "trigger": trigger_to_dict(cq.trigger),
                "stop": _stop_to_dict(cq.stop),
                "mode": cq.mode.value,
                "engine": cq.engine.value,
                "keep_result": cq.keep_result,
                "status": cq.status.value,
                "last_execution_ts": cq.last_execution_ts,
                "executions": cq.executions,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "database": database_to_dict(manager.db),
        "strategy": manager.strategy.value,
        "auto_gc": manager.auto_gc,
        "history_limit": manager.history_limit,
        "last_result_ts": dict(manager._last_result_ts),
        "cqs": cqs,
    }


def manager_from_dict(data: Dict[str, Any]) -> CQManager:
    """Restore a manager (and database) from :func:`manager_to_dict`.

    Previous results are re-derived by evaluating each CQ over the
    restored contents *as of the checkpoint* — sound because the
    checkpointed database state is exactly the state at checkpoint
    time, and each CQ's pending window (updates after its
    last_execution_ts) is preserved in the restored logs. The first
    post-restore refresh is therefore differential over precisely the
    not-yet-delivered updates.
    """
    if data.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported manager checkpoint format {data.get('format')!r}"
        )
    db = database_from_dict(data["database"])
    manager = CQManager(
        db,
        strategy=EvaluationStrategy(data["strategy"]),
        auto_gc=data["auto_gc"],
        history_limit=data.get("history_limit", 0),
    )
    from repro.delta.capture import deltas_since
    from repro.relational.evaluate import evaluate_spj
    from repro.relational.sql import parse_query
    from repro.dra.aggregates import DifferentialAggregate

    for entry in data["cqs"]:
        query = parse_query(entry["sql"])
        cq = ContinualQuery(
            entry["name"],
            query,
            trigger=trigger_from_dict(entry["trigger"]),
            stop=_stop_from_dict(entry["stop"]),
            mode=DeliveryMode(entry["mode"]),
            engine=Engine(entry["engine"]),
            keep_result=entry["keep_result"],
        )
        cq.status = CQStatus(entry["status"])
        cq.executions = entry["executions"]
        last_ts = entry["last_execution_ts"]
        # Reconstruct the retained result at last_execution_ts: current
        # contents minus the pending window's effects.
        if cq.is_aggregate:
            cq.aggregate_state = DifferentialAggregate(cq.query, db)
            current = cq.aggregate_state.initialize()
            pending = deltas_since(
                [db.table(name) for name in cq.table_names], last_ts
            )
            # The state above is "now"; rewind the reported copy.
            manager._agg_applied[cq.name] = db.now()
            if pending:
                # previous_result = result at last_ts: recompute by
                # unapplying the pending aggregate delta is intricate;
                # instead evaluate over the old base state directly.
                from repro.delta.propagate import old_resolver
                from repro.relational.aggregates import evaluate_aggregate

                cq.previous_result = evaluate_aggregate(
                    cq.query, old_resolver(db.relation, pending)
                )
            else:
                cq.previous_result = current
        else:
            pending = deltas_since(
                [db.table(name) for name in cq.table_names], last_ts
            )
            if pending and cq.keep_result:
                from repro.delta.propagate import old_resolver

                cq.previous_result = evaluate_spj(
                    cq.query, old_resolver(db.relation, pending)
                )
            elif cq.keep_result:
                cq.previous_result = evaluate_spj(cq.query, db.relation)
            if cq.engine is Engine.EAGER:
                cq.maintained_result = evaluate_spj(cq.query, db.relation)
                manager._eager_applied[cq.name] = db.now()
        cq.last_execution_ts = last_ts

        manager._cqs[cq.name] = cq
        manager._last_result_ts[cq.name] = data.get(
            "last_result_ts", {}
        ).get(cq.name, last_ts)
        if manager.history_limit and cq.status is CQStatus.ACTIVE:
            from collections import deque

            manager._history[cq.name] = deque(maxlen=manager.history_limit)
        if cq.status is CQStatus.ACTIVE:
            manager.zones.register(cq.name, cq.table_names, last_ts)
            unsubscribes = []
            for table_name in cq.table_names:
                unsubscribes.append(
                    db.subscribe(table_name, manager._make_observer(cq))
                )
            manager._unsubscribes[cq.name] = unsubscribes
    return manager


def save_manager(manager: CQManager, path: str) -> None:
    """Atomically checkpoint a manager; a journaling database also gets
    its WAL truncated and re-seeded (the checkpoint supersedes it)."""
    write_checkpoint(path, manager_to_dict(manager))
    _retire_wal(manager.db)


def load_manager(path: str) -> CQManager:
    return manager_from_dict(read_checkpoint(path))


def _retire_wal(db) -> None:
    """After a checkpoint lands, the journal restarts from the current
    table set; see :func:`repro.storage.wal.rebase_wal`."""
    if db.wal is not None and not db.wal.closed:
        from repro.storage.wal import rebase_wal

        rebase_wal(db.wal, db)


# -- CQ server serialization --------------------------------------------------


def server_to_dict(server) -> Dict[str, Any]:
    """Checkpoint a :class:`~repro.net.server.CQServer`.

    Captures the database (contents *and* update logs, including
    pruned_through marks) plus every subscription's identity, protocol,
    and refresh position. Retained result copies are not serialized —
    they are a pure function of the checkpointed state and are
    re-derived on restore. A lazy subscription's un-fetched pending
    delta is likewise not serialized: reconnecting clients resume
    through :meth:`CQServer.replay`, which recomputes their missed
    window from the restored logs, so nothing shipped to a client can
    be lost by flattening.
    """
    subscriptions = []
    for (client_id, cq_name), sub in server._subscriptions.items():
        subscriptions.append(
            {
                "client": client_id,
                "cq": cq_name,
                "sql": sub.query.to_sql(),
                "protocol": sub.protocol.value,
                "last_ts": sub.last_ts,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "kind": "cq_server",
        "name": server.name,
        "database": database_to_dict(server.db),
        "subscriptions": subscriptions,
    }


def server_from_dict(
    data: Dict[str, Any],
    network=None,
    metrics=None,
    fanout: bool = False,
    columnar: bool = False,
):
    """Restore a CQ server from :func:`server_to_dict`.

    Each subscription's retained previous result is rebuilt at its
    ``last_ts`` by evaluating the query over the restored base state
    with the pending window's effects unapplied — the same
    reconstruction :func:`manager_from_dict` uses. Replay zones are
    re-registered at each subscription's last refresh, so the first
    post-restore garbage collection cannot prune a window a
    reconnecting client may still request.
    """
    from repro.net.server import CQServer, Protocol, Subscription
    from repro.net.simnet import SimulatedNetwork
    from repro.delta.capture import deltas_since
    from repro.delta.propagate import old_resolver
    from repro.relational.evaluate import evaluate_spj
    from repro.relational.sql import parse_query

    if data.get("format") != FORMAT_VERSION or data.get("kind") != "cq_server":
        raise CheckpointError(
            f"not a CQ server checkpoint (format={data.get('format')!r}, "
            f"kind={data.get('kind')!r})"
        )
    db = database_from_dict(data["database"])
    server = CQServer(
        db,
        network if network is not None else SimulatedNetwork(),
        name=data["name"],
        metrics=metrics,
        fanout=fanout,
        columnar=columnar,
    )
    for entry in data["subscriptions"]:
        query = parse_query(entry["sql"])
        protocol = Protocol(entry["protocol"])
        last_ts = entry["last_ts"]
        if protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY):
            server.plans.get(query.to_sql(), query)
        pending = deltas_since(
            [db.table(name) for name in set(query.table_names)], last_ts
        )
        if pending:
            previous = evaluate_spj(query, old_resolver(db.relation, pending))
        else:
            previous = evaluate_spj(query, db.relation)
        subscription = Subscription(
            entry["client"], entry["cq"], query, protocol, last_ts, previous
        )
        server._subscriptions[(entry["client"], entry["cq"])] = subscription
        server.zones.register(
            server._zone(entry["client"], entry["cq"]),
            tuple(query.table_names),
            last_ts,
        )
    server.rebuild_groups()
    return server


def save_server(server, path: str) -> None:
    """Atomically checkpoint a server; a journaling database also gets
    its WAL truncated and re-seeded (the checkpoint supersedes it)."""
    write_checkpoint(path, server_to_dict(server))
    _retire_wal(server.db)
    if server.db.wal is not None and not server.db.wal.closed:
        # Re-seed subscription events too, so the journal alone can
        # rebuild the subscription set if the checkpoint file is lost.
        from repro.storage.wal import KIND_SUB_REGISTER

        for (client_id, cq_name), sub in server._subscriptions.items():
            server.db.wal.log_event(
                KIND_SUB_REGISTER,
                client=client_id,
                cq=cq_name,
                sql=sub.sql_key,
                protocol=sub.protocol.value,
                ts=sub.last_ts,
            )


def load_server(path: str, network=None, metrics=None, fanout=False, columnar=False):
    return server_from_dict(
        read_checkpoint(path), network, metrics, fanout=fanout, columnar=columnar
    )


# -- crash recovery (checkpoint + WAL suffix) ---------------------------------


def _replay_wal(db, wal_path: str, metrics=None):
    """Scan + replay a journal on top of an (optionally restored) db.

    Frames at or below the database clock are already covered by the
    checkpoint the db came from. Returns the replay summary, whose
    ``cq_events`` the manager/server recovery below re-applies at its
    own level. Re-opens the journal for appending and attaches it."""
    from repro.metrics import Metrics
    from repro.storage.wal import WriteAheadLog, replay_entries, scan_wal

    recovery = scan_wal(wal_path, repair=True)
    summary = replay_entries(db, recovery.entries, base_ts=db.now())
    if metrics:
        metrics.count(Metrics.WAL_RECOVERED, len(recovery.entries))
        if recovery.torn:
            metrics.count(Metrics.WAL_TORN_TRUNCATIONS)
    wal = WriteAheadLog(wal_path, metrics=metrics)
    db.attach_wal(wal, journal_existing=False)
    return summary


def recover_manager(
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    metrics=None,
) -> CQManager:
    """Rebuild a CQ manager after a crash: checkpoint + WAL suffix.

    Loads the last checkpoint when one exists, replays every journal
    frame newer than it (tolerating a torn tail), then re-applies CQ
    register/deregister events the checkpoint had not absorbed. A CQ
    recovered from a journal event re-runs its initial execution over
    the recovered state — its result stream resumes from recovery time,
    which is the strongest guarantee available without checkpointed
    result copies. The journal is re-opened and re-attached, so the
    recovered manager journals exactly like the crashed one did.
    """
    from repro.storage.database import Database

    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        manager = load_manager(checkpoint_path)
    else:
        manager = CQManager(Database(), metrics=metrics)
    if metrics is not None:
        manager.metrics = metrics
    summary = _replay_wal(manager.db, wal_path, metrics=metrics)
    # Net out the journal's lifecycle events: the last event per CQ
    # name wins (register, or deregister = None).
    desired: Dict[str, Optional[Dict[str, Any]]] = {}
    for event in summary.cq_events:
        if event["k"] == "cq_register":
            desired[event["name"]] = event
        elif event["k"] == "cq_deregister":
            desired[event["name"]] = None
    wal, manager.db.wal = manager.db.wal, None  # don't re-journal replays
    try:
        for name, event in desired.items():
            if event is None:
                manager.deregister(name)
            elif name not in manager:
                manager.register_query(
                    name,
                    event["sql"],
                    trigger=(
                        trigger_from_dict(event["trigger"])
                        if event.get("trigger")
                        else None
                    ),
                    stop=(
                        _stop_from_dict(event["stop"])
                        if event.get("stop")
                        else None
                    ),
                    mode=DeliveryMode(event["mode"]),
                    engine=Engine(event["engine"]),
                    keep_result=event["keep_result"],
                )
    finally:
        manager.db.wal = wal
    return manager


def recover_server(
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    network=None,
    metrics=None,
    fanout: bool = False,
    columnar: bool = False,
):
    """Rebuild a CQ server after a crash: checkpoint + WAL suffix.

    Subscriptions journaled after the last checkpoint are re-created
    with their retained result reconstructed at their registration
    timestamp when the recovered update logs still cover that window
    (so a reconnecting client resumes differentially), and at recovery
    time otherwise.
    """
    from repro.net.server import CQServer, Protocol, Subscription
    from repro.net.simnet import SimulatedNetwork
    from repro.delta.capture import deltas_since
    from repro.delta.propagate import old_resolver
    from repro.relational.evaluate import evaluate_spj
    from repro.relational.sql import parse_query
    from repro.storage.database import Database

    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        server = load_server(
            checkpoint_path, network, metrics, fanout=fanout, columnar=columnar
        )
    else:
        server = CQServer(
            Database(),
            network if network is not None else SimulatedNetwork(),
            metrics=metrics,
            fanout=fanout,
            columnar=columnar,
        )
    db = server.db
    summary = _replay_wal(db, wal_path, metrics=server.metrics)
    desired: Dict[tuple, Optional[Dict[str, Any]]] = {}
    for event in summary.cq_events:
        if event["k"] == "sub_register":
            desired[(event["client"], event["cq"])] = event
        elif event["k"] == "sub_deregister":
            desired[(event["client"], event["cq"])] = None
    for key, event in desired.items():
        if event is None:
            if key in server._subscriptions:
                server.deregister(*key)
            continue
        if key in server._subscriptions:
            continue
        query = parse_query(event["sql"])
        protocol = Protocol(event["protocol"])
        if protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY):
            server.plans.get(query.to_sql(), query)
        last_ts = event.get("ts", db.now())
        tables = [db.table(name) for name in set(query.table_names)]
        try:
            pending = deltas_since(tables, last_ts)
        except ValueError:
            # The logs no longer reach back to the registration point
            # (baseline-flattened history); resume from recovery time.
            last_ts = db.now()
            pending = {}
        if pending:
            previous = evaluate_spj(query, old_resolver(db.relation, pending))
        else:
            previous = evaluate_spj(query, db.relation)
        subscription = Subscription(
            key[0], key[1], query, protocol, last_ts, previous
        )
        server._subscriptions[key] = subscription
        server.zones.register(
            server._zone(*key), tuple(query.table_names), last_ts
        )
    server.rebuild_groups()
    return server
