"""The CQ manager: registration, trigger evaluation, refresh, GC.

The manager owns every registered continual query's lifecycle:

* *registration* performs the initial complete execution E_0 (DRA
  applies "after its initial execution", Section 4.2) and subscribes
  to the operand tables' commit streams;
* *trigger evaluation* follows Section 5.3's two strategies —
  IMMEDIATE (test T_cq after every update transaction) or PERIODIC
  (test on :meth:`poll`, the system-defined default interval) — and is
  differential: epsilon specs and update-condition triggers only ever
  see delta batches, never base relations;
* *refresh* runs DRA (or complete re-evaluation, for baseline CQs)
  over the consolidated deltas since the CQ's last execution and
  assembles the notification the delivery mode asks for;
* *garbage collection* advances active delta zones at each execution
  and can prune update logs automatically (Section 5.4).
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import RegistrationError
from repro.metrics import Metrics
from repro.obs.stats import CQStats
from repro.obs.trace import Tracer
from repro.relational.evaluate import evaluate_spj
from repro.relational.sql import parse_query
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.timestamps import Timestamp
from repro.storage.update_log import UpdateRecord
from repro.delta.capture import deltas_since
from repro.delta.differential import DeltaRelation
from repro.delta.diff import diff
from repro.dra.aggregates import DifferentialAggregate
from repro.dra.algorithm import dra_execute
from repro.dra.predindex import PredicateIndex
from repro.dra.prepared import PlanCache, PreparedCQ
from repro.core.continual_query import (
    ContinualQuery,
    CQStatus,
    DeliveryMode,
    Engine,
    Query,
)
from repro.core.epsilon import ResultDriftEpsilon
from repro.core.gc import ActiveDeltaZones
from repro.core.results import Notification, NotificationKind
from repro.core.scheduler import DeltaBatchCache, RefreshScheduler
from repro.core.termination import StopCondition
from repro.core.triggers import (
    AllOf,
    AnyOf,
    EpsilonTrigger,
    Trigger,
    TriggerContext,
)

NotifyCallback = Callable[[Notification], None]


class EvaluationStrategy(enum.Enum):
    """When trigger conditions are tested (paper Section 5.3)."""

    IMMEDIATE = "immediate"  # after each update transaction
    PERIODIC = "periodic"  # only on poll()


class CQManager:
    """Registers, refreshes, and garbage-collects continual queries."""

    def __init__(
        self,
        db: Database,
        strategy: EvaluationStrategy = EvaluationStrategy.IMMEDIATE,
        auto_gc: bool = False,
        metrics: Optional[Metrics] = None,
        history_limit: int = 0,
        parallelism: int = 0,
        share_deltas: bool = True,
        group_triggers: bool = True,
        prepare_plans: bool = True,
        durability=None,
        tracer: Optional[Tracer] = None,
        slow_refresh_us: Optional[float] = None,
        fanout: bool = False,
        columnar: bool = False,
    ):
        self.db = db
        #: Columnar term evaluation (DESIGN.md §11): every DRA refresh
        #: this manager runs executes through the struct-of-arrays
        #: kernel pipelines in :mod:`repro.dra.kernels` instead of the
        #: per-row interpreter. Results are identical; the per-kernel
        #: cost shows up as ``kernel_calls``/``kernel_rows`` counters.
        self.columnar = columnar
        #: ``durability=`` accepts a WriteAheadLog (or path) and attaches
        #: it to the database, so every commit *and* every CQ
        #: register/deregister below is journaled; recovery goes through
        #: :func:`repro.core.persistence.recover_manager`.
        if durability is not None and db.wal is None:
            if isinstance(durability, str):
                from repro.storage.wal import WriteAheadLog

                durability = WriteAheadLog(durability, metrics=metrics)
            db.attach_wal(durability)
        self.strategy = strategy
        self.auto_gc = auto_gc
        self.metrics = metrics
        #: Observability (DESIGN.md §9): ``tracer`` wraps every refresh
        #: stage in spans (a disabled tracer — the default — costs one
        #: shared no-op span per stage); ``stats`` accumulates per-CQ
        #: cost tables; refreshes slower than ``slow_refresh_us`` leave
        #: one structured event each in ``slow_refreshes``.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.stats = CQStats()
        self.slow_refresh_us = slow_refresh_us
        self.slow_refreshes: Deque[Dict[str, object]] = deque(maxlen=256)
        # Installed per refresh by the scheduler: a scoped TeeMetrics
        # that also charges self.metrics; _refresh_metrics() routes the
        # engines' charges through it for per-CQ attribution.
        self._local_metrics = threading.local()
        #: Per-CQ retained notification history length (0 = none).
        self.history_limit = history_limit
        #: Shared-delta refresh scheduling behind :meth:`poll`:
        #: ``parallelism=N`` (N > 1) refreshes independent CQs on N
        #: worker threads; ``share_deltas`` consolidates each table's
        #: delta batch once per poll window; ``group_triggers`` skips
        #: whole footprint groups whose tables saw no commits. The
        #: defaults preserve strict sequential refresh order; all three
        #: preserve the paper's result-sequence semantics exactly.
        self.scheduler = RefreshScheduler(
            self,
            parallelism=parallelism,
            share_deltas=share_deltas,
            group_triggers=group_triggers,
        )
        #: Registration-time compilation (:mod:`repro.dra.prepared`):
        #: one :class:`PreparedCQ` per CQ, keyed by name. Every refresh
        #: revalidates against the live catalog (schema identity +
        #: index-set versions) and silently re-prepares when a table
        #: changed underneath the plan; ``prepare_plans=False`` falls
        #: back to per-refresh planning for baseline comparisons.
        self.prepare_plans = prepare_plans
        self.plans = PlanCache(db, metrics)
        self.zones = ActiveDeltaZones(db)
        self._cqs: Dict[str, ContinualQuery] = {}
        #: Partition-aware registrations (repro.cluster): a CQ with a
        #: declared :class:`~repro.cluster.ring.Partition` consumes only
        #: the delta slice its shard owns; see :meth:`register`.
        self._partitions: Dict[str, "object"] = {}
        self._unsubscribes: Dict[str, List[Callable[[], None]]] = {}
        self._callbacks: Dict[str, List[NotifyCallback]] = {}
        self._outbox: List[Notification] = []
        # Applied-through timestamp of each aggregate CQ's state.
        self._agg_applied: Dict[str, Timestamp] = {}
        # Applied-through timestamp of each EAGER CQ's maintained result.
        self._eager_applied: Dict[str, Timestamp] = {}
        # The paper's result sequence Q(S_1)..Q(S_n), per CQ (bounded).
        self._history: Dict[str, Deque[Notification]] = {}
        # When each CQ last produced a result (vs merely executed).
        self._last_result_ts: Dict[str, Timestamp] = {}
        # Installed by the scheduler for the duration of one poll; all
        # delta consolidation goes through it when present.
        self._delta_cache: Optional[DeltaBatchCache] = None
        #: Predicate-index fan-out (DESIGN.md §10): every non-baseline
        #: CQ's alias-local predicates live in one shared
        #: :class:`PredicateIndex`, so a poll routes the consolidated
        #: batch to the affected CQ set in one pass instead of probing
        #: every CQ's plan; unrouted CQs return an empty delta without
        #: running an engine (the Section 5.2 relevance theorem makes
        #: that exact). CQs sharing a ``sql_key`` (identical SQL text)
        #: additionally share one DRA evaluation per refresh window.
        self.fanout_index: Optional[PredicateIndex] = (
            PredicateIndex(metrics) if fanout else None
        )
        self._cq_sql_key: Dict[str, str] = {}
        self._sql_groups: Dict[str, Set[str]] = {}
        # (tables, since, now) -> routed CQ names; (sql_key, since, now)
        # -> shared DRAResult. Both are window-scoped: cleared each poll
        # and bounded against IMMEDIATE-strategy growth.
        self._fanout_routes: Dict[Tuple, Set[str]] = {}
        self._shared_results: Dict[Tuple[str, Timestamp, Timestamp], object] = {}
        self._fanout_lock = threading.Lock()
        # Parallel refresh support: _emit appends under the lock, and
        # with _defer_callbacks the scheduler delivers callbacks after
        # re-sequencing the poll's notifications.
        self._emit_lock = threading.Lock()
        self._defer_callbacks = False

    # -- registration -----------------------------------------------------

    def register(
        self,
        cq: ContinualQuery,
        on_notify: Optional[NotifyCallback] = None,
        partition=None,
    ) -> ContinualQuery:
        """Register a CQ: run E_0 and start watching its tables.

        ``partition`` (a :class:`~repro.cluster.ring.Partition`)
        declares that this manager's database holds only one shard's
        slice of the partitioned table: every refresh drops delta
        entries for rows the slice does not own, so a mis-routed commit
        can never leak into the CQ's differential stream. Only
        delta-consuming engines support partitions — re-evaluation
        reads base state directly, so a partition would be silently
        ignored there and is rejected instead.
        """
        if cq.name in self._cqs:
            raise RegistrationError(f"a CQ named {cq.name!r} is already registered")
        for name in cq.table_names:
            self.db.table(name)  # raises early on unknown tables
        if cq.engine is Engine.REEVALUATE and not cq.keep_result:
            raise RegistrationError(
                "the re-evaluation engine needs keep_result=True to Diff "
                "consecutive results"
            )
        if partition is not None:
            if partition.table not in cq.table_names:
                raise RegistrationError(
                    f"partition on {partition.table!r} does not touch any "
                    f"table of CQ {cq.name!r}"
                )
            if cq.engine is Engine.REEVALUATE:
                raise RegistrationError(
                    "the re-evaluation engine does not consume deltas; a "
                    "partition declaration would have no effect"
                )
        drift_specs = list(_drift_specs(cq.trigger))
        if drift_specs and not (cq.is_aggregate and not cq.query.group_by):
            raise RegistrationError(
                "ResultDriftEpsilon triggers require a global aggregate CQ"
            )

        # Compile once, up front: derives the predicate plan, local and
        # residual predicates, and the projection, and auto-creates any
        # missing single-column join indexes — so even E_0 below runs
        # against the indexes the differential refreshes will probe.
        self._prepared_for(cq)

        now = self.db.now()
        if cq.is_aggregate:
            cq.aggregate_state = DifferentialAggregate(cq.query, self.db)
            result = cq.aggregate_state.initialize(self.metrics)
            self._agg_applied[cq.name] = now
            for spec in drift_specs:
                spec.note_current(_headline_value(result))
                spec.reset()
        else:
            result = evaluate_spj(cq.query, self.db.relation, self.metrics)
        cq.previous_result = result if (cq.keep_result or cq.is_aggregate) else None
        if cq.engine is Engine.EAGER and not cq.is_aggregate:
            cq.maintained_result = result.copy()
            self._eager_applied[cq.name] = now
        cq.last_execution_ts = now
        cq.executions = 1
        self._cqs[cq.name] = cq
        if partition is not None:
            self._partitions[cq.name] = partition
        self._fanout_register(cq)
        if on_notify is not None:
            self._callbacks.setdefault(cq.name, []).append(on_notify)
        self.zones.register(cq.name, cq.table_names, now)
        self._last_result_ts[cq.name] = now
        if self.history_limit:
            self._history[cq.name] = deque(maxlen=self.history_limit)

        unsubscribes = []
        for table_name in cq.table_names:
            unsubscribes.append(
                self.db.subscribe(table_name, self._make_observer(cq))
            )
        self._unsubscribes[cq.name] = unsubscribes
        if self.db.wal is not None:
            self._journal_cq_register(cq)

        self._emit(
            Notification(
                cq.name,
                NotificationKind.INITIAL,
                seq=1,
                ts=now,
                mode=cq.mode,
                result=result.copy(),
            )
        )
        return cq

    def register_query(
        self,
        name: str,
        query: Union[str, Query],
        trigger: Optional[Trigger] = None,
        stop: Optional[StopCondition] = None,
        mode: DeliveryMode = DeliveryMode.DIFFERENTIAL,
        engine: Engine = Engine.DRA,
        keep_result: bool = True,
        on_notify: Optional[NotifyCallback] = None,
        partition=None,
    ) -> ContinualQuery:
        """Build and register a CQ in one call; SQL text is accepted."""
        if isinstance(query, str):
            query = parse_query(query)
        cq = ContinualQuery(
            name,
            query,
            trigger=trigger,
            stop=stop,
            mode=mode,
            engine=engine,
            keep_result=keep_result,
        )
        return self.register(cq, on_notify=on_notify, partition=partition)

    # Friendly alias used throughout the examples.
    register_sql = register_query

    def deregister(self, name: str) -> None:
        """Stop ``name`` and release it: the CQ leaves the registry and
        its name (and plan-cache slot) become reusable. CQs finalized
        by their own stop condition stay visible as STOPPED instead."""
        cq = self._cqs.get(name)
        if cq is None:
            return
        self._finalize(cq, self.db.now())
        del self._cqs[name]
        self._callbacks.pop(name, None)
        if self.db.wal is not None:
            from repro.storage.wal import KIND_CQ_DEREGISTER

            self.db.wal.log_event(KIND_CQ_DEREGISTER, name=name)

    def _journal_cq_register(self, cq: ContinualQuery) -> None:
        """Journal a registration so a crash before the next checkpoint
        does not lose the CQ. Callable-based triggers and stop
        conditions cannot ride along in a journal any more than in a
        checkpoint; they are journaled as None and recovery substitutes
        the defaults (the data, windows, and results all survive)."""
        from repro.core.persistence import (
            UnserializableCQ,
            _stop_to_dict,
            trigger_to_dict,
        )
        from repro.storage.wal import KIND_CQ_REGISTER

        try:
            trigger = trigger_to_dict(cq.trigger)
        except UnserializableCQ:
            trigger = None
        try:
            stop = _stop_to_dict(cq.stop)
        except UnserializableCQ:
            stop = None
        self.db.wal.log_event(
            KIND_CQ_REGISTER,
            name=cq.name,
            sql=cq.query.to_sql(),
            mode=cq.mode.value,
            engine=cq.engine.value,
            keep_result=cq.keep_result,
            trigger=trigger,
            stop=stop,
            ts=self.db.now(),
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str) -> ContinualQuery:
        return self._cqs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cqs

    def active(self) -> List[ContinualQuery]:
        return [cq for cq in self._cqs.values() if cq.status is CQStatus.ACTIVE]

    def __len__(self) -> int:
        return len(self._cqs)

    # -- predicate-index fan-out -------------------------------------------------

    def _fanout_register(self, cq: ContinualQuery) -> None:
        """Index a CQ's local predicates and join its ``sql_key`` group.

        Baseline (REEVALUATE) CQs never read deltas, so they are not
        indexed and always refresh; aggregates index their SPJ core —
        the part DRA differentiates."""
        index = self.fanout_index
        if index is None or cq.engine is Engine.REEVALUATE:
            return
        query = cq.query.core if cq.is_aggregate else cq.query
        scopes = {
            ref.alias: self.db.table(ref.table).schema
            for ref in query.relations
        }
        index.add(cq.name, query, scopes)
        sql_key = cq.query.to_sql()
        self._cq_sql_key[cq.name] = sql_key
        group = self._sql_groups.setdefault(sql_key, set())
        if not group and self.metrics:
            self.metrics.count(Metrics.SHARED_GROUPS)
        group.add(cq.name)

    def _fanout_routed(
        self, table_names: Tuple[str, ...], since: Timestamp
    ) -> Set[str]:
        """The CQ names with at least one relevant pending entry in
        ``table_names`` over the window ``(since, now]`` — one
        :meth:`PredicateIndex.match_batch` pass shared by every CQ with
        the same footprint refreshing over the same window. Scoped to
        the asking CQ's own tables so the read stays inside the log
        suffix its delta zone protects from GC."""
        now = self.db.now()
        key = (table_names, since, now)
        with self._fanout_lock:
            routed = self._fanout_routes.get(key)
        if routed is not None:
            return routed
        deltas = self._deltas_for(table_names, since)
        routed = self.fanout_index.match_batch(deltas)
        with self._fanout_lock:
            if len(self._fanout_routes) > 128:
                self._fanout_routes.clear()
            self._fanout_routes[key] = routed
        return routed

    def _fanout_irrelevant(self, cq: ContinualQuery, since: Timestamp) -> bool:
        """True when the index proves every pending delta entry is
        irrelevant to ``cq`` (Section 5.2): the refresh may return an
        empty delta without running an engine. Unindexed CQs and
        quarantined (stale-signature) CQs never take the fast path —
        they refresh normally, which is always sound."""
        index = self.fanout_index
        if index is None or cq.name not in index:
            return False
        if cq.name in index.stale():
            return False
        return cq.name not in self._fanout_routed(cq.table_names, since)

    def _fanout_out_schema(self, cq: ContinualQuery):
        """The output schema for a skipped refresh's empty delta (None
        when it cannot be had cheaply — the caller then evaluates)."""
        prepared = self._prepared_for(cq)
        if prepared is not None:
            return prepared.out_schema
        if cq.previous_result is not None:
            return cq.previous_result.schema
        return None

    # -- update observation ------------------------------------------------------

    def _make_observer(self, cq: ContinualQuery):
        def observer(table: Table, records: List[UpdateRecord]) -> None:
            if cq.status is not CQStatus.ACTIVE:
                return
            batch = DeltaRelation.from_records(table.schema, records)
            if not batch.is_empty():
                cq.trigger.observe(table.name, batch)
            if cq.engine is Engine.EAGER:
                # Eager maintenance: fold the commit in right away,
                # whatever the evaluation strategy says about triggers.
                if cq.is_aggregate:
                    self._refresh_aggregate(cq, self.db.now())
                else:
                    self._eager_apply(cq, self.db.now())
            if self.strategy is EvaluationStrategy.IMMEDIATE:
                self._maybe_execute(cq, self.db.now())

        return observer

    # -- polling ----------------------------------------------------------------

    def poll(self, advance_to: Optional[Timestamp] = None) -> List[Notification]:
        """Test every active CQ's trigger and stop condition.

        ``advance_to`` moves virtual time forward first (the paper's
        "system-defined default interval, say every day at midnight").
        Returns all notifications produced since the previous drain.

        The actual refresh work is delegated to the manager's
        :class:`~repro.core.scheduler.RefreshScheduler`, which shares
        delta-batch consolidation across CQs, skips footprint groups
        with no pending commits, and (when ``parallelism > 1``) runs
        independent refreshes concurrently.
        """
        if advance_to is not None:
            self.db.clock.advance_to(advance_to)
        if self.fanout_index is not None:
            with self._fanout_lock:
                self._fanout_routes.clear()
                self._shared_results.clear()
        self.scheduler.run(self.db.now())
        return self.drain()

    run_once = poll

    def drain(self) -> List[Notification]:
        """Remove and return all queued notifications."""
        with self._emit_lock:
            out = self._outbox
            self._outbox = []
        return out

    def subscribe_notifications(
        self, cq_name: str, callback: NotifyCallback
    ) -> Callable[[], None]:
        """Attach an additional notification listener to one CQ."""
        if cq_name not in self._cqs:
            raise RegistrationError(f"no CQ named {cq_name!r}")
        listeners = self._callbacks.setdefault(cq_name, [])
        listeners.append(callback)

        def unsubscribe() -> None:
            try:
                listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def history(self, cq_name: str) -> List[Notification]:
        """The retained result sequence Q(S_1)..Q(S_n) for one CQ.

        Empty unless the manager was created with ``history_limit > 0``
        (the Section 3.3 trade-off: retaining the sequence costs
        memory proportional to limit x result size).
        """
        return list(self._history.get(cq_name, ()))

    # -- execution ----------------------------------------------------------------

    def _refresh_metrics(self) -> Optional[Metrics]:
        """The metrics bag engines charge during a refresh: the scoped
        per-CQ tee when the scheduler installed one on this thread,
        otherwise the shared bag."""
        scoped = getattr(self._local_metrics, "value", None)
        return scoped if scoped is not None else self.metrics

    def _note_slow_refresh(
        self, cq_name: str, latency_us: float, counters: Dict[str, int]
    ) -> None:
        """Record one structured event when a refresh crosses the
        slow-refresh threshold (no-op when no threshold is set)."""
        threshold = self.slow_refresh_us
        if threshold is None or latency_us < threshold:
            return
        event: Dict[str, object] = {
            "event": "slow_refresh",
            "cq": cq_name,
            "latency_us": round(latency_us, 3),
            "threshold_us": threshold,
            "ts": self.db.now(),
        }
        event.update(counters)
        self.slow_refreshes.append(event)
        if self.tracer.sink is not None:
            self.tracer.sink.write(event)

    def _maybe_execute(self, cq: ContinualQuery, now: Timestamp) -> None:
        if cq.status is not CQStatus.ACTIVE:
            return
        if cq.is_aggregate:
            # Differential T_cq evaluation for drift-based epsilons:
            # fold pending deltas into the maintained aggregate first.
            self._refresh_aggregate(cq, now)
        with self.tracer.span(
            "cq.trigger", cq=cq.name, tables=",".join(cq.table_names)
        ) as span:
            ctx = self._context(cq, now)
            stopped = cq.stop.should_stop(ctx)
            fired = (not stopped) and cq.trigger.should_fire(ctx)
            span.set(stopped=stopped, fired=fired)
        if stopped:
            self._finalize(cq, now)
            return
        if not fired:
            return
        self._execute(cq, now)
        ctx = self._context(cq, now)
        if cq.stop.should_stop(ctx):
            self._finalize(cq, now)

    def _context(self, cq: ContinualQuery, now: Timestamp) -> TriggerContext:
        pending = any(
            self.db.table(name).log.latest_ts() > cq.last_execution_ts
            for name in cq.table_names
        )
        return TriggerContext(
            now,
            cq.last_execution_ts,
            cq.executions,
            pending,
            last_result_ts=self._last_result_ts.get(cq.name),
        )

    def _deltas_for(
        self, table_names: Tuple[str, ...], since: Timestamp
    ) -> Dict[str, DeltaRelation]:
        """Consolidated per-table deltas after ``since``.

        Goes through the poll's shared :class:`DeltaBatchCache` when
        the scheduler installed one, so every CQ (whatever its engine)
        reading the same table over the same window shares one
        consolidation pass; otherwise falls back to a private read.
        """
        cache = self._delta_cache
        if cache is not None:
            return cache.deltas(table_names, since, self.db.now())
        return deltas_since(
            [self.db.table(name) for name in table_names], since
        )

    def _partition_deltas(
        self, cq: ContinualQuery, deltas: Dict[str, DeltaRelation]
    ) -> Dict[str, DeltaRelation]:
        """Drop delta entries outside a partitioned CQ's owned slice."""
        partition = self._partitions.get(cq.name)
        if partition is None or partition.table not in deltas:
            return deltas
        from repro.cluster.ring import partition_filter

        sliced = partition_filter(deltas[partition.table], partition)
        out = dict(deltas)
        if sliced.is_empty():
            del out[partition.table]
        else:
            out[partition.table] = sliced
        return out

    def _prepared_for(self, cq: ContinualQuery) -> Optional[PreparedCQ]:
        """The CQ's cached prepared plan (None when preparation is off
        or the engine never runs DRA). Aggregates are planned on their
        SPJ core — the part DRA differentiates."""
        if not self.prepare_plans:
            return None
        if cq.engine is Engine.REEVALUATE and not cq.is_aggregate:
            return None
        query = cq.query.core if cq.is_aggregate else cq.query
        return self.plans.get(cq.name, query)

    def _refresh_aggregate(self, cq: ContinualQuery, now: Timestamp) -> None:
        applied = self._agg_applied[cq.name]
        if self._fanout_irrelevant(cq, applied):
            # Every pending entry misses the SPJ core's local slices:
            # the aggregate state cannot change, only the window moves.
            deltas = {}
        else:
            deltas = self._partition_deltas(
                cq, self._deltas_for(cq.table_names, applied)
            )
        if deltas:
            cq.aggregate_state.update(
                deltas,
                now,
                self._refresh_metrics(),
                prepared=self._prepared_for(cq),
                columnar=self.columnar,
            )
        # Advance even when the window was empty (or consolidated to
        # nothing): the next differential read starts at `now` either
        # way, and a zone left behind `now` lets _execute's own advance
        # plus auto-GC prune past what we'd later ask to read.
        self._agg_applied[cq.name] = now
        self.zones.advance(cq.name, now)
        for spec in _drift_specs(cq.trigger):
            spec.note_current(_headline_value(cq.aggregate_state.result))

    def _eager_apply(self, cq: ContinualQuery, now: Timestamp) -> None:
        """Fold all committed changes into the maintained result."""
        applied = self._eager_applied[cq.name]
        if self._fanout_irrelevant(cq, applied):
            deltas = {}
        else:
            deltas = self._partition_deltas(
                cq, self._deltas_for(cq.table_names, applied)
            )
        if deltas:
            result = dra_execute(
                cq.query,
                self.db,
                deltas=deltas,
                ts=now,
                metrics=self._refresh_metrics(),
                prepared=self._prepared_for(cq),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            cq.maintained_result = result.delta.apply_to(cq.maintained_result)
        # The log window below `now` is consumed (an empty or net-zero
        # window counts): let GC advance past it.
        self._eager_applied[cq.name] = now
        self.zones.advance(cq.name, now)

    def _execute(self, cq: ContinualQuery, now: Timestamp) -> None:
        if cq.engine is Engine.REEVALUATE:
            delta = self._execute_reevaluate(cq, now)
        elif cq.is_aggregate:
            delta = self._execute_aggregate(cq, now)
        elif cq.engine is Engine.EAGER:
            delta = self._execute_eager(cq, now)
        else:
            delta = self._execute_dra(cq, now)

        cq.last_execution_ts = now
        self.zones.advance(cq.name, now)
        ctx = self._context(cq, now)
        cq.trigger.notify_fired(ctx)
        if self.auto_gc:
            self.zones.collect()
        metrics = self._refresh_metrics()
        if metrics:
            metrics.count(Metrics.CQ_REFRESHES)
        if delta.is_empty():
            # Nothing changed: no element is appended to the result
            # sequence and nothing is sent (Section 5.2).
            return
        cq.executions += 1
        self._last_result_ts[cq.name] = now
        self._emit(self._notification(cq, delta, now))

    def _execute_dra(self, cq: ContinualQuery, now: Timestamp) -> DeltaRelation:
        since = cq.last_execution_ts
        if self._fanout_irrelevant(cq, since):
            schema = self._fanout_out_schema(cq)
            if schema is not None:
                return DeltaRelation(schema)
        deltas = self._partition_deltas(
            cq, self._deltas_for(cq.table_names, since)
        )
        # Shared materialization: CQs with identical SQL text and the
        # same refresh window have content-identical previous results
        # (both are Q(state at `since`)), so the whole DRAResult is
        # computed once per (sql_key, window) and reused group-wide.
        shared_key = None
        result = None
        if (
            self.fanout_index is not None
            and cq.keep_result
            # Partitioned CQs see a private delta slice: their results
            # are never content-identical to other group members'.
            and cq.name not in self._partitions
        ):
            sql_key = self._cq_sql_key.get(cq.name)
            if sql_key is not None and len(self._sql_groups.get(sql_key, ())) > 1:
                shared_key = (sql_key, since, now)
                with self._fanout_lock:
                    result = self._shared_results.get(shared_key)
                if result is not None and self.metrics:
                    self.metrics.count(Metrics.SHARED_GROUP_HITS)
        if result is None:
            with self.tracer.span("dra.apply", cq=cq.name) as span:
                result = dra_execute(
                    cq.query,
                    self.db,
                    deltas=deltas,
                    previous=cq.previous_result,
                    ts=now,
                    metrics=self._refresh_metrics(),
                    prepared=self._prepared_for(cq),
                    tracer=self.tracer,
                    columnar=self.columnar,
                )
                span.set(
                    changed=",".join(sorted(result.changed_aliases)),
                    terms=result.terms_evaluated,
                    delta_rows=len(result.delta),
                )
            if shared_key is not None:
                with self._fanout_lock:
                    if len(self._shared_results) > 128:
                        self._shared_results.clear()
                    self._shared_results[shared_key] = result
        if cq.keep_result and result.has_changes():
            if shared_key is not None:
                # Never alias a shared result's materialization across
                # group members: each applies the delta to its own copy.
                cq.previous_result = result.delta.apply_to(cq.previous_result)
            else:
                cq.previous_result = result.complete_result()
        return result.delta

    def _execute_aggregate(self, cq: ContinualQuery, now: Timestamp) -> DeltaRelation:
        self._refresh_aggregate(cq, now)
        current = cq.aggregate_state.current()
        delta = diff(cq.previous_result, current, now)
        cq.previous_result = current
        for spec in _drift_specs(cq.trigger):
            spec.reset()
        return delta

    def _execute_eager(self, cq: ContinualQuery, now: Timestamp) -> DeltaRelation:
        self._eager_apply(cq, now)
        delta = diff(cq.previous_result, cq.maintained_result, now)
        cq.previous_result = cq.maintained_result.copy()
        return delta

    def _execute_reevaluate(self, cq: ContinualQuery, now: Timestamp) -> DeltaRelation:
        new_result = self.db.query(cq.query, self._refresh_metrics())
        delta = diff(cq.previous_result, new_result, now)
        cq.previous_result = new_result
        return delta

    def _notification(
        self, cq: ContinualQuery, delta: DeltaRelation, now: Timestamp
    ) -> Notification:
        kwargs = {}
        if cq.mode is DeliveryMode.DIFFERENTIAL:
            kwargs["delta"] = delta
        elif cq.mode is DeliveryMode.INSERTIONS_ONLY:
            kwargs["result"] = delta.insertions()
        elif cq.mode is DeliveryMode.DELETIONS_ONLY:
            kwargs["result"] = delta.deletions()
        else:  # COMPLETE
            kwargs["delta"] = delta
            kwargs["result"] = cq.previous_result.copy()
        return Notification(
            cq.name,
            NotificationKind.REFRESH,
            seq=cq.executions,
            ts=now,
            mode=cq.mode,
            **kwargs,
        )

    def _finalize(self, cq: ContinualQuery, now: Timestamp) -> None:
        if cq.status is CQStatus.STOPPED:
            return
        cq.status = CQStatus.STOPPED
        self.plans.invalidate(cq.name)
        if self.fanout_index is not None:
            # Drop the CQ's index entries and leave its sql_key group,
            # so no future batch is routed to a dead subscriber.
            self.fanout_index.remove(cq.name)
            sql_key = self._cq_sql_key.pop(cq.name, None)
            if sql_key is not None:
                group = self._sql_groups.get(sql_key)
                if group is not None:
                    group.discard(cq.name)
                    if not group:
                        del self._sql_groups[sql_key]
        for unsubscribe in self._unsubscribes.pop(cq.name, []):
            unsubscribe()
        self.zones.remove(cq.name)
        self._partitions.pop(cq.name, None)
        self._agg_applied.pop(cq.name, None)
        self._eager_applied.pop(cq.name, None)
        self._last_result_ts.pop(cq.name, None)
        self._emit(
            Notification(
                cq.name,
                NotificationKind.STOPPED,
                seq=cq.executions,
                ts=now,
                mode=cq.mode,
            )
        )

    def _emit(self, notification: Notification) -> None:
        with self.tracer.span(
            "cq.notify",
            cq=notification.cq_name,
            kind=notification.kind.value,
            seq=notification.seq,
        ) as span:
            with self._emit_lock:
                history = self._history.get(notification.cq_name)
                if history is not None:
                    history.append(notification)
                self._outbox.append(notification)
                if self._defer_callbacks:
                    # Parallel refresh: the scheduler re-sequences this
                    # poll's notifications into registration order and
                    # fires the callbacks itself afterwards.
                    span.set(deferred=True)
                    return
            delivered = 0
            for callback in self._callbacks.get(notification.cq_name, ()):
                callback(notification)
                delivered += 1
            span.set(callbacks=delivered)

    # -- garbage collection ------------------------------------------------------

    def collect_garbage(self, include_unwatched: bool = False) -> Dict[str, int]:
        """Prune update logs outside the system active delta zone."""
        return self.zones.collect(include_unwatched=include_unwatched)

    def pin_zone(self, name: str, tables: Tuple[str, ...], ts: Timestamp) -> None:
        """Hold the update-log suffix newer than ``ts`` for an external
        reader (e.g. a transport session replaying a reconnect window).

        The pin participates in the system active delta zone exactly
        like a CQ's own zone: :meth:`collect_garbage` will not prune
        past it until :meth:`release_zone` drops it. ``name`` must not
        collide with a registered CQ name.
        """
        if name in self._cqs:
            raise RegistrationError(
                f"zone name {name!r} collides with a registered CQ"
            )
        self.zones.register(name, tuple(tables), ts)

    def release_zone(self, name: str) -> None:
        """Drop an external pin installed by :meth:`pin_zone`."""
        if name in self._cqs:
            raise RegistrationError(
                f"{name!r} is a registered CQ; deregister it instead"
            )
        self.zones.remove(name)

    # -- introspection ---------------------------------------------------------

    def describe(self) -> List[Dict[str, object]]:
        """One status record per registered CQ (for ops tooling)."""
        out = []
        for cq in self._cqs.values():
            pending = (
                cq.status is CQStatus.ACTIVE
                and any(
                    self.db.table(name).log.latest_ts() > cq.last_execution_ts
                    for name in cq.table_names
                )
            )
            cost = self.stats.counters(cq.name)
            latency = self.stats.latency(cq.name)
            out.append(
                {
                    "name": cq.name,
                    "status": cq.status.value,
                    "engine": cq.engine.value,
                    "mode": cq.mode.value,
                    "tables": ",".join(cq.table_names),
                    "results": cq.executions,
                    "last_ts": cq.last_execution_ts,
                    "result_rows": (
                        len(cq.previous_result)
                        if cq.previous_result is not None
                        else None
                    ),
                    "pending_updates": pending,
                    "plan_cached": cq.name in self.plans,
                    "trigger": repr(cq.trigger),
                    # Cumulative per-CQ cost attribution (DESIGN.md §9);
                    # populated by scheduler-driven refreshes.
                    "rows_scanned": cost.get(Metrics.ROWS_SCANNED, 0),
                    "delta_rows_read": cost.get(Metrics.DELTA_ROWS_READ, 0),
                    "refreshes": cost.get(Metrics.CQ_REFRESHES, 0),
                    # Columnar kernel attribution (DESIGN.md §11):
                    # non-zero only for refreshes run with columnar=True.
                    "kernel_calls": cost.get(Metrics.KERNEL_CALLS, 0),
                    "rows_per_kernel_call": (
                        round(
                            cost.get(Metrics.KERNEL_ROWS, 0)
                            / cost[Metrics.KERNEL_CALLS],
                            3,
                        )
                        if cost.get(Metrics.KERNEL_CALLS)
                        else 0
                    ),
                    "refresh_p95_us": (
                        latency.percentile(95) if latency.count else None
                    ),
                    # Fan-out routing membership (DESIGN.md §10); the
                    # global routing counters live in the metrics bag.
                    "fanout_indexed": (
                        self.fanout_index is not None
                        and cq.name in self.fanout_index
                    ),
                    "sql_group_size": (
                        len(self._sql_groups.get(self._cq_sql_key.get(cq.name), ()))
                        if self.fanout_index is not None
                        else None
                    ),
                }
            )
        return out

    def status_report(self) -> str:
        """The :meth:`describe` records as an aligned text table."""
        from repro.bench.harness import format_table

        report = format_table(
            self.describe(),
            columns=[
                "name",
                "status",
                "engine",
                "mode",
                "tables",
                "results",
                "last_ts",
                "result_rows",
                "pending_updates",
                "plan_cached",
            ],
            title=f"CQManager: {len(self._cqs)} queries, now={self.db.now()}",
        )
        if self.metrics:
            m = self.metrics
            report += (
                f"\nplans: prepared={m.get(Metrics.PLANS_PREPARED)} "
                f"cache_hits={m.get(Metrics.PLAN_CACHE_HITS)} "
                f"invalidations={m.get(Metrics.PLAN_CACHE_INVALIDATIONS)} "
                f"base_scans={m.get(Metrics.BASE_SCANS)}"
            )
            calls = m.get(Metrics.KERNEL_CALLS)
            if calls:
                report += (
                    f"\nkernels: calls={calls} "
                    f"rows={m.get(Metrics.KERNEL_ROWS)} "
                    f"rows_per_call="
                    f"{m.get(Metrics.KERNEL_ROWS) / calls:.1f}"
                )
        if self.fanout_index is not None:
            info = self.fanout_index.describe()
            report += (
                f"\nfanout: indexed={info['subscriptions']} "
                f"eq={info['eq_entries']} interval={info['interval_entries']} "
                f"scan={info['scan_entries']} stale={info['stale']} "
                f"groups={len(self._sql_groups)}"
            )
            if self.metrics:
                m = self.metrics
                report += (
                    f" probes={m.get(Metrics.PREDINDEX_PROBES)} "
                    f"matches={m.get(Metrics.PREDINDEX_MATCHES)} "
                    f"group_hits={m.get(Metrics.SHARED_GROUP_HITS)}"
                )
        return report

    def __repr__(self) -> str:
        return (
            f"CQManager({len(self._cqs)} CQs, strategy={self.strategy.value}, "
            f"pending={len(self._outbox)})"
        )


def _drift_specs(trigger: Trigger) -> Iterator[ResultDriftEpsilon]:
    if isinstance(trigger, EpsilonTrigger):
        if isinstance(trigger.spec, ResultDriftEpsilon):
            yield trigger.spec
    elif isinstance(trigger, (AnyOf, AllOf)):
        for child in trigger.children:
            yield from _drift_specs(child)


def _headline_value(result) -> Optional[float]:
    """The first aggregate value of a global aggregate's single row."""
    for row in result:
        return row.values[0] if row.values else None
    return None
