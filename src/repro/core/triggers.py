"""Trigger conditions T_cq (paper Section 3.1).

The paper enumerates four forms, all represented here:

* a direct specification of time — :class:`At`;
* a time interval from the previous result — :class:`Every`;
* a condition on the database state — :class:`OnUpdate` (evaluated
  differentially against each delta entry);
* a relationship between the previous result and the current state —
  :class:`EpsilonTrigger` wrapping an
  :class:`~repro.core.epsilon.EpsilonSpec`.

Compound triggers (:class:`AnyOf`, :class:`AllOf`) compose them.
Triggers are consulted through a :class:`TriggerContext`, so they never
reach into the engine themselves.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import TriggerError
from repro.relational.binding import SingleRowBinder
from repro.relational.predicates import Predicate
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaRelation
from repro.core.epsilon import EpsilonSpec


class TriggerContext:
    """What a trigger may look at when deciding whether to fire."""

    __slots__ = (
        "now",
        "last_execution_ts",
        "executions",
        "pending_updates",
        "last_result_ts",
    )

    def __init__(
        self,
        now: Timestamp,
        last_execution_ts: Timestamp,
        executions: int,
        pending_updates: bool,
        last_result_ts: Optional[Timestamp] = None,
    ):
        self.now = now
        self.last_execution_ts = last_execution_ts
        self.executions = executions
        #: True if any relevant table changed since the last execution.
        self.pending_updates = pending_updates
        #: When the CQ last *produced a result* (empty refreshes do not
        #: count); defaults to the last execution time.
        self.last_result_ts = (
            last_result_ts if last_result_ts is not None else last_execution_ts
        )


class Trigger:
    """Base class for trigger conditions."""

    def should_fire(self, ctx: TriggerContext) -> bool:
        raise NotImplementedError

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        """Feed a relevant table's consolidated delta batch (no-op for
        purely temporal triggers)."""

    def notify_fired(self, ctx: TriggerContext) -> None:
        """Called after the CQ executed because this trigger fired."""

    def __or__(self, other: "Trigger") -> "AnyOf":
        return AnyOf(self, other)

    def __and__(self, other: "Trigger") -> "AllOf":
        return AllOf(self, other)


class OnEveryChange(Trigger):
    """Fire whenever any relevant update is pending — the eager policy."""

    def should_fire(self, ctx: TriggerContext) -> bool:
        return ctx.pending_updates

    def __repr__(self) -> str:
        return "OnEveryChange()"


class Every(Trigger):
    """Fire when at least ``interval`` time passed since the last
    execution — "a week since Q(S_{n-1}) was produced"."""

    def __init__(self, interval: Timestamp):
        if interval <= 0:
            raise TriggerError("Every interval must be positive")
        self.interval = interval

    def should_fire(self, ctx: TriggerContext) -> bool:
        return ctx.now - ctx.last_execution_ts >= self.interval

    def __repr__(self) -> str:
        return f"Every({self.interval})"


class EverySinceResult(Trigger):
    """Fire ``interval`` after the last *result* was produced.

    The paper's exact phrasing — "a week since Q(S_{n-1}) was
    produced" — anchors on result production, not on trigger checks:
    an execution that found no changes does not restart the clock.
    """

    def __init__(self, interval: Timestamp):
        if interval <= 0:
            raise TriggerError("EverySinceResult interval must be positive")
        self.interval = interval

    def should_fire(self, ctx: TriggerContext) -> bool:
        return ctx.now - ctx.last_result_ts >= self.interval

    def __repr__(self) -> str:
        return f"EverySinceResult({self.interval})"


class At(Trigger):
    """Fire at each listed absolute time (the Harvest-style schedule,
    e.g. "once every Monday" pre-expanded to concrete timestamps)."""

    def __init__(self, times: Sequence[Timestamp]):
        self.times = sorted(times)
        self._next = 0

    def should_fire(self, ctx: TriggerContext) -> bool:
        return self._next < len(self.times) and ctx.now >= self.times[self._next]

    def notify_fired(self, ctx: TriggerContext) -> None:
        while self._next < len(self.times) and self.times[self._next] <= ctx.now:
            self._next += 1

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.times)

    def __repr__(self) -> str:
        return f"At({self.times[self._next:]!r})"


class OnUpdate(Trigger):
    """Fire when an individual update satisfies a predicate — "whenever
    a deposit of one million dollars is made".

    The predicate is evaluated differentially: against the *new* side
    of insert/modify entries (and optionally the old side of deletes),
    never against the base relation.
    """

    def __init__(
        self,
        table: str,
        predicate: Predicate,
        include_deletes: bool = False,
    ):
        self.table = table
        self.predicate = predicate
        self.include_deletes = include_deletes
        self._armed = False
        self._compiled = None

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        if table_name != self.table or self._armed:
            return
        if self._compiled is None:
            self._compiled = self.predicate.compile(
                SingleRowBinder(delta.schema)
            )
        for entry in delta:
            if entry.new is not None and self._compiled(entry.new):
                self._armed = True
                return
            if (
                self.include_deletes
                and entry.old is not None
                and self._compiled(entry.old)
            ):
                self._armed = True
                return

    def should_fire(self, ctx: TriggerContext) -> bool:
        return self._armed

    def notify_fired(self, ctx: TriggerContext) -> None:
        self._armed = False

    def __repr__(self) -> str:
        return f"OnUpdate({self.table}, {self.predicate.to_sql()})"


class EpsilonTrigger(Trigger):
    """Fire when the wrapped ε-spec's divergence bound is exceeded."""

    def __init__(self, spec: EpsilonSpec):
        self.spec = spec

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        self.spec.observe(table_name, delta)

    def should_fire(self, ctx: TriggerContext) -> bool:
        return self.spec.exceeded()

    def notify_fired(self, ctx: TriggerContext) -> None:
        self.spec.reset()

    def __repr__(self) -> str:
        return f"EpsilonTrigger({self.spec!r})"


class AnyOf(Trigger):
    """Disjunction: fire when any child would fire."""

    def __init__(self, *children: Trigger):
        if not children:
            raise TriggerError("AnyOf needs at least one child")
        self.children = children

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        for child in self.children:
            child.observe(table_name, delta)

    def should_fire(self, ctx: TriggerContext) -> bool:
        return any(child.should_fire(ctx) for child in self.children)

    def notify_fired(self, ctx: TriggerContext) -> None:
        for child in self.children:
            child.notify_fired(ctx)

    def __repr__(self) -> str:
        return f"AnyOf{self.children!r}"


class AllOf(Trigger):
    """Conjunction: fire only when every child would fire."""

    def __init__(self, *children: Trigger):
        if not children:
            raise TriggerError("AllOf needs at least one child")
        self.children = children

    def observe(self, table_name: str, delta: DeltaRelation) -> None:
        for child in self.children:
            child.observe(table_name, delta)

    def should_fire(self, ctx: TriggerContext) -> bool:
        return all(child.should_fire(ctx) for child in self.children)

    def notify_fired(self, ctx: TriggerContext) -> None:
        for child in self.children:
            child.notify_fired(ctx)

    def __repr__(self) -> str:
        return f"AllOf{self.children!r}"


class Custom(Trigger):
    """Escape hatch: an arbitrary context->bool callable."""

    def __init__(self, fn: Callable[[TriggerContext], bool], name: str = "custom"):
        self.fn = fn
        self.name = name

    def should_fire(self, ctx: TriggerContext) -> bool:
        return self.fn(ctx)

    def __repr__(self) -> str:
        return f"Custom({self.name})"
