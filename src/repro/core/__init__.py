"""Continual-query semantics and management (the paper's Section 3 & 5).

See DESIGN.md S5.
"""

from repro.core.continual_query import (
    ContinualQuery,
    CQStatus,
    DeliveryMode,
    Engine,
)
from repro.core.epsilon import (
    CountEpsilon,
    EpsilonSpec,
    MagnitudeEpsilon,
    NetChangeEpsilon,
    ResultDriftEpsilon,
)
from repro.core.gc import ActiveDeltaZones
from repro.core.manager import CQManager, EvaluationStrategy
from repro.core.persistence import (
    UnserializableCQ,
    load_manager,
    manager_from_dict,
    manager_to_dict,
    save_manager,
)
from repro.core.results import Notification, NotificationKind
from repro.core.scheduler import (
    DeltaBatchCache,
    RefreshScheduler,
    is_data_only_trigger,
    is_skip_safe,
)
from repro.core.views import MaterializedView
from repro.core.termination import (
    AfterExecutions,
    AtTime,
    Never,
    StopCondition,
    WhenCondition,
)
from repro.core.triggers import (
    AllOf,
    AnyOf,
    At,
    Custom,
    EpsilonTrigger,
    Every,
    EverySinceResult,
    OnEveryChange,
    OnUpdate,
    Trigger,
    TriggerContext,
)

__all__ = [
    "ActiveDeltaZones",
    "AfterExecutions",
    "AllOf",
    "AnyOf",
    "At",
    "AtTime",
    "CQManager",
    "CQStatus",
    "ContinualQuery",
    "CountEpsilon",
    "Custom",
    "DeliveryMode",
    "DeltaBatchCache",
    "Engine",
    "EpsilonSpec",
    "EpsilonTrigger",
    "EvaluationStrategy",
    "Every",
    "EverySinceResult",
    "MagnitudeEpsilon",
    "MaterializedView",
    "Never",
    "NetChangeEpsilon",
    "Notification",
    "NotificationKind",
    "OnEveryChange",
    "OnUpdate",
    "RefreshScheduler",
    "ResultDriftEpsilon",
    "StopCondition",
    "Trigger",
    "TriggerContext",
    "UnserializableCQ",
    "WhenCondition",
    "is_data_only_trigger",
    "is_skip_safe",
    "load_manager",
    "manager_from_dict",
    "manager_to_dict",
    "save_manager",
]
