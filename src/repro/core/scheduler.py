"""Shared-delta refresh scheduling (paper Sections 5.2–5.4 at scale).

The naive poll loop asks every registered CQ to consolidate its own
delta batch and test its own trigger — with thousands of CQs over a
handful of hot tables, identical delta batches are recomputed once per
CQ and every refresh runs serially. This module is the sharing layer
between ``CQManager.poll()`` and the per-CQ refresh machinery:

* :class:`DeltaBatchCache` — a per-poll cache keyed by
  ``(table, since_ts, now_ts)`` so ``deltas_since`` consolidation runs
  once per table per poll window and is shared by every CQ (and, on
  the server, every subscription) reading that table;
* *grouped trigger evaluation* — CQs are partitioned by operand-table
  footprint; a whole group is skipped when none of its tables saw a
  commit since the members' last executions, provided the members'
  trigger/stop conditions are purely data-driven (a time trigger can
  fire without any update, so such CQs are always evaluated);
* an opt-in *parallel refresh path* — independent CQ refreshes run on
  a ``ThreadPoolExecutor``; notifications are re-sequenced into
  registration order afterwards so the observable result sequence is
  identical to the sequential schedule.

The default configuration (``parallelism=0``) preserves the
sequential manager's semantics bit-for-bit: the same CQs execute in
the same order and emit the same notifications; sharing only removes
provably redundant work and adds observability counters
(``delta_batches_reused``, ``groups_skipped``) plus a refresh-latency
histogram.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from threading import Event, Lock
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.metrics import Metrics
from repro.obs.stats import TeeMetrics
from repro.obs.trace import NULL_SPAN, Tracer
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.capture import delta_since
from repro.delta.differential import DeltaRelation
from repro.core.continual_query import ContinualQuery, CQStatus
from repro.core.termination import Never
from repro.core.triggers import (
    AllOf,
    AnyOf,
    EpsilonTrigger,
    OnEveryChange,
    OnUpdate,
    Trigger,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.manager import CQManager


class _PendingBatch:
    """Placeholder for one in-flight or finished consolidation."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = Event()
        self.value: Optional[DeltaRelation] = None
        self.error: Optional[BaseException] = None


class DeltaBatchCache:
    """A per-poll cache of consolidated per-table delta batches.

    Keyed by ``(table, since_ts, now_ts)``: two readers with the same
    refresh window share one consolidation pass over the update log.
    ``now_ts`` rides in the key because the logical clock only moves
    on commits — within one poll it is constant, so the cache can never
    serve a batch that is missing a mid-poll commit.

    Thread-safe, and the consolidation itself runs *outside* the cache
    lock: the first reader of a key inserts a placeholder under the
    lock (a double-checked insert), computes the batch unlocked, then
    publishes it; concurrent readers of the *same* key block only on
    that key's event, and readers of *different* keys never serialize
    on each other. The reuse counters stay exact because ownership of
    each key is decided exactly once, under the lock.
    """

    def __init__(
        self,
        db: Database,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.db = db
        self.metrics = metrics
        self.tracer = tracer
        self._lock = Lock()
        self._batches: Dict[Tuple[str, Timestamp, Timestamp], _PendingBatch] = {}
        self.hits = 0
        self.misses = 0

    def batch(
        self, table_name: str, since: Timestamp, now: Timestamp
    ) -> DeltaRelation:
        """The consolidated delta of one table over ``(since, now]``."""
        key = (table_name, since, now)
        with self._lock:
            entry = self._batches.get(key)
            if entry is None:
                entry = self._batches[key] = _PendingBatch()
                owner = True
                self.misses += 1
            else:
                owner = False
                self.hits += 1
        if not owner:
            if self.metrics:
                self.metrics.count(Metrics.DELTA_BATCHES_REUSED)
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            assert entry.value is not None
            return entry.value
        span = (
            self.tracer.span(
                "delta.consolidate", table=table_name, since=since, now=now
            )
            if self.tracer is not None
            else NULL_SPAN
        )
        try:
            with span:
                batch = delta_since(self.db.table(table_name), since)
                span.set(entries=len(batch))
        except BaseException as exc:
            # Un-publish the key so a later reader retries rather than
            # inheriting this failure forever; wake current waiters.
            entry.error = exc
            with self._lock:
                self._batches.pop(key, None)
            entry.event.set()
            raise
        entry.value = batch
        if self.metrics:
            self.metrics.count(Metrics.DELTA_BATCHES_COMPUTED)
        entry.event.set()
        return batch

    def deltas(
        self, table_names: Sequence[str], since: Timestamp, now: Timestamp
    ) -> Dict[str, DeltaRelation]:
        """Per-table consolidated deltas after ``since`` (skipping
        no-ops) — the drop-in shared equivalent of
        :func:`repro.delta.capture.deltas_since`."""
        out: Dict[str, DeltaRelation] = {}
        for name in table_names:
            batch = self.batch(name, since, now)
            if not batch.is_empty():
                out[name] = batch
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for entry in self._batches.values() if entry.value is not None
            )

    def __repr__(self) -> str:
        return (
            f"DeltaBatchCache({len(self)} batches, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DATA_ONLY_TRIGGERS = (OnEveryChange, OnUpdate, EpsilonTrigger)


def is_data_only_trigger(trigger: Trigger) -> bool:
    """True when ``trigger`` can only fire because of a committed
    update to a relevant table.

    ``OnEveryChange`` fires on pending updates; ``OnUpdate`` arms from
    observed delta entries; epsilon specs accumulate divergence from
    observed deltas and reset at each execution — none of them can
    become true while the relevant logs are quiet. Time triggers
    (``Every``, ``At``, ...) and ``Custom`` can, so they are not
    data-only.
    """
    if isinstance(trigger, (AnyOf, AllOf)):
        return all(is_data_only_trigger(child) for child in trigger.children)
    return isinstance(trigger, _DATA_ONLY_TRIGGERS)


def is_skip_safe(cq: ContinualQuery) -> bool:
    """True when skipping the CQ on a quiet poll is unobservable.

    Requires a data-only trigger *and* the default ``Never`` stop
    condition: ``AtTime``/``WhenCondition``/``AfterExecutions`` stops
    are tested on every poll and may finalize a CQ without any update.
    """
    return isinstance(cq.stop, Never) and is_data_only_trigger(cq.trigger)


class RefreshScheduler:
    """Batches, shares, and (optionally) parallelizes CQ refreshes.

    A drop-in behind :meth:`CQManager.poll`; see the module docstring
    for the three sharing layers. ``parallelism`` of 0 or 1 keeps the
    sequential path.
    """

    def __init__(
        self,
        manager: "CQManager",
        parallelism: int = 0,
        share_deltas: bool = True,
        group_triggers: bool = True,
    ):
        if parallelism < 0:
            raise ValueError(f"parallelism must be >= 0, got {parallelism}")
        self.manager = manager
        self.parallelism = parallelism
        self.share_deltas = share_deltas
        self.group_triggers = group_triggers

    # -- one poll ---------------------------------------------------------

    def run(self, now: Timestamp) -> None:
        """Evaluate one poll: select runnable CQs, refresh them."""
        manager = self.manager
        with manager.tracer.span(
            "scheduler.poll", now=now, registered=len(manager._cqs)
        ) as poll_span:
            runnable = self._select(list(manager._cqs.values()))
            poll_span.set(runnable=len(runnable))
            cache = (
                DeltaBatchCache(manager.db, manager.metrics, manager.tracer)
                if self.share_deltas
                else None
            )
            manager._delta_cache = cache
            try:
                if self.parallelism > 1 and len(runnable) > 1:
                    self._run_parallel(runnable, now)
                else:
                    for cq in runnable:
                        self._refresh_one(cq, now)
            finally:
                manager._delta_cache = None

    # -- grouped trigger evaluation ---------------------------------------

    def _select(self, cqs: Sequence[ContinualQuery]) -> List[ContinualQuery]:
        """Registration-ordered CQs whose trigger check cannot be
        skipped, with whole-group skip accounting."""
        manager = self.manager
        if not self.group_triggers:
            return [cq for cq in cqs if cq.status is CQStatus.ACTIVE]

        latest: Dict[str, Timestamp] = {}

        def latest_ts(table_name: str) -> Timestamp:
            ts = latest.get(table_name)
            if ts is None:
                ts = manager.db.table(table_name).log.latest_ts()
                latest[table_name] = ts
            return ts

        runnable: List[ContinualQuery] = []
        # footprint -> [active members, skipped members]
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for cq in cqs:
            if cq.status is not CQStatus.ACTIVE:
                continue
            tally = groups.setdefault(cq.table_names, [0, 0])
            tally[0] += 1
            if is_skip_safe(cq) and not any(
                latest_ts(name) > cq.last_execution_ts
                for name in cq.table_names
            ):
                tally[1] += 1
                continue
            runnable.append(cq)
        if manager.metrics:
            skipped_groups = sum(
                1 for active, skipped in groups.values() if active == skipped
            )
            if skipped_groups:
                manager.metrics.count(Metrics.GROUPS_SKIPPED, skipped_groups)
        return runnable

    # -- refresh paths ----------------------------------------------------

    def _refresh_one(self, cq: ContinualQuery, now: Timestamp) -> None:
        manager = self.manager
        # Scope counter charges to this refresh: the tee still charges
        # the shared bag, the scoped copy feeds per-CQ attribution.
        scoped = TeeMetrics(manager.metrics if manager.metrics else None)
        manager._local_metrics.value = scoped
        start = time.perf_counter()
        span = manager.tracer.span(
            "cq.refresh", cq=cq.name, tables=",".join(cq.table_names)
        )
        with span:
            try:
                manager._maybe_execute(cq, now)
            finally:
                manager._local_metrics.value = None
                latency_us = (time.perf_counter() - start) * 1e6
                counters = {
                    name: value
                    for name, value in scoped.snapshot().items()
                    if value
                }
                manager.stats.record(cq.name, counters, latency_us)
                span.set(latency_us=round(latency_us, 3), **counters)
                if manager.metrics:
                    manager.metrics.observe(
                        Metrics.REFRESH_LATENCY_US, latency_us
                    )
                manager._note_slow_refresh(cq.name, latency_us, counters)

    def _run_parallel(
        self, runnable: Sequence[ContinualQuery], now: Timestamp
    ) -> None:
        """Refresh independent CQs concurrently, then re-sequence.

        Workers share the manager's delta cache, metrics, and zones —
        all thread-safe — while each CQ's own state is touched by
        exactly one worker. Notifications are buffered (callbacks
        deferred) and sorted into registration order before delivery,
        so the observable sequence matches the sequential schedule.
        """
        manager = self.manager
        # Warm the plan cache on this thread first: a (re-)prepare may
        # create missing join indexes — a catalog mutation that must
        # not race with workers probing those same tables.
        for cq in runnable:
            manager._prepared_for(cq)
        with manager._emit_lock:
            start = len(manager._outbox)
            manager._defer_callbacks = True
        try:
            with ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="cq-refresh",
            ) as pool:
                futures = [
                    pool.submit(self._refresh_one, cq, now) for cq in runnable
                ]
                for future in futures:
                    future.result()
        finally:
            # Callbacks must fire even when a worker raised: the pool's
            # context manager has already joined every future, so the
            # surviving CQs' notifications are complete and buffered in
            # the outbox — deliver them before the exception propagates,
            # or their callbacks are silently lost.
            order = {name: i for i, name in enumerate(manager._cqs)}
            with manager._emit_lock:
                manager._defer_callbacks = False
                tail = manager._outbox[start:]
                tail.sort(key=lambda n: order.get(n.cq_name, len(order)))
                manager._outbox[start:] = tail
            for notification in tail:
                for callback in manager._callbacks.get(
                    notification.cq_name, ()
                ):
                    callback(notification)

    def __repr__(self) -> str:
        return (
            f"RefreshScheduler(parallelism={self.parallelism}, "
            f"share_deltas={self.share_deltas}, "
            f"group_triggers={self.group_triggers})"
        )
