"""Divergence control for epsilon queries (Epsilon Serializability).

The paper's epsilon specifications descend from ESR: "divergence
control algorithms allow limited non-serializable conflicts between
updates and the epsilon query to happen, to increase system execution
flexibility and concurrency" (§3.2). This module reproduces that
substrate in miniature.

An :class:`EpsilonScan` reads a large relation chunk by chunk *without
a snapshot* while update transactions — declared as
:class:`UpdateIntent`s — are offered to the divergence controller
between chunks. The controller dry-runs each intent against the
current state, computes the inconsistency it would import into the
scan's partial answer (only effects on the already-read prefix
matter), and either admits it or blocks it until the scan finishes.

The payoff is the ESR guarantee, checked by property tests:

    |reported aggregate − exact aggregate at scan end| ≤ imported ≤ ε

With ε = 0 the controller is serializable (every conflicting update
blocks); with ε = ∞ everything is admitted and the error is merely
bounded by what was imported. In between, ε trades answer precision
for update concurrency — experiment E12.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.metrics import Metrics
from repro.relational.relation import Tid, Values
from repro.storage.database import Database
from repro.storage.table import Table


class UpdateIntent:
    """A declared single-transaction update, schedulable by ESR.

    Operations reference tids for modify/delete and whole value tuples
    for inserts — exactly what a transaction script would contain. The
    controller dry-runs the intent to price its conflicts before
    deciding to execute it.
    """

    def __init__(self, ops: Sequence[Tuple] = ()):
        self.ops: List[Tuple] = list(ops)

    def insert(self, values: Sequence) -> "UpdateIntent":
        self.ops.append(("insert", tuple(values)))
        return self

    def modify(self, tid: Tid, updates: Dict[str, object]) -> "UpdateIntent":
        self.ops.append(("modify", tid, dict(updates)))
        return self

    def delete(self, tid: Tid) -> "UpdateIntent":
        self.ops.append(("delete", tid))
        return self

    def dry_run(self, table: Table) -> List[Tuple[Optional[Tid], Optional[Values], Optional[Values]]]:
        """(tid, old, new) effects against the table's current state.

        Inserts report tid None (a fresh tid can never collide with the
        scan's read prefix). Ops referencing dead tids report no
        effect — the real application will simply skip them too.
        """
        effects = []
        shadow: Dict[Tid, Optional[Values]] = {}
        for op in self.ops:
            if op[0] == "insert":
                effects.append((None, None, op[1]))
            elif op[0] == "modify":
                __, tid, updates = op
                old = shadow.get(tid, table.current.get_or_none(tid))
                if old is None:
                    continue
                merged = list(old)
                for name, value in updates.items():
                    merged[table.schema.position(name)] = value
                new = tuple(merged)
                effects.append((tid, old, new))
                shadow[tid] = new
            else:
                __, tid = op
                old = shadow.get(tid, table.current.get_or_none(tid))
                if old is None:
                    continue
                effects.append((tid, old, None))
                shadow[tid] = None
        return effects

    def apply(self, db: Database, table: Table) -> None:
        """Execute as one real transaction (skipping dead targets)."""
        with db.begin() as txn:
            for op in self.ops:
                if op[0] == "insert":
                    txn.insert_into(table, op[1])
                elif op[0] == "modify":
                    __, tid, updates = op
                    if txn.read(table, tid) is not None:
                        txn.modify_in(table, tid, updates=updates)
                else:
                    __, tid = op
                    if txn.read(table, tid) is not None:
                        txn.delete_from(table, tid)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"UpdateIntent({len(self.ops)} ops)"


class EpsilonScanReport:
    """Outcome of one divergence-controlled epsilon query."""

    __slots__ = (
        "reported",
        "exact",
        "imported",
        "epsilon",
        "admitted",
        "deferrals",
        "deferred_final",
        "chunks",
    )

    def __init__(
        self,
        reported: float,
        exact: float,
        imported: float,
        epsilon: float,
        admitted: int,
        deferrals: int,
        deferred_final: int,
        chunks: int,
    ):
        self.reported = reported
        self.exact = exact
        self.imported = imported
        self.epsilon = epsilon
        #: Intents executed concurrently with the scan.
        self.admitted = admitted
        #: Times an intent was offered and had to wait.
        self.deferrals = deferrals
        #: Intents that only ran after the scan completed.
        self.deferred_final = deferred_final
        self.chunks = chunks

    @property
    def error(self) -> float:
        return abs(self.reported - self.exact)

    def __repr__(self) -> str:
        return (
            f"EpsilonScanReport(reported={self.reported:.2f}, "
            f"exact={self.exact:.2f}, error={self.error:.2f}, "
            f"imported={self.imported:.2f}, ε={self.epsilon}, "
            f"admitted={self.admitted}, deferred={self.deferred_final})"
        )


class EpsilonScan:
    """A chunked SUM(column) epsilon query under divergence control."""

    def __init__(
        self,
        db: Database,
        table: Table,
        column: str,
        epsilon: float,
        chunk_size: int = 100,
        metrics: Optional[Metrics] = None,
    ):
        if epsilon < 0:
            raise ReproError("epsilon must be non-negative")
        if chunk_size <= 0:
            raise ReproError("chunk size must be positive")
        self.db = db
        self.table = table
        self.column = column
        self.position = table.schema.position(column)
        self.epsilon = epsilon
        self.chunk_size = chunk_size
        self.metrics = metrics

    def _import_cost(self, effects, read_tids) -> float:
        """Inconsistency the effects would import into the partial sum.

        Changes behind the scan cursor (tids already read) diverge the
        reported sum by their change to the summed column. Everything
        ahead of the cursor — including inserts — will be observed by
        the scan itself, which is serializable behaviour and free.
        """
        cost = 0.0
        for tid, old, new in effects:
            if tid is None or tid not in read_tids:
                continue
            old_value = old[self.position] if old is not None else 0
            new_value = new[self.position] if new is not None else 0
            cost += abs((new_value or 0) - (old_value or 0))
        return cost

    def run(self, intents: Sequence[UpdateIntent]) -> EpsilonScanReport:
        """Scan while offering ``intents`` (in order) between chunks."""
        pending: List[UpdateIntent] = list(intents)
        read_tids: set = set()
        partial_sum = 0.0
        imported = 0.0
        admitted = 0
        deferrals = 0
        chunks = 0

        while True:
            # One chunk of currently-live rows in tid order; no snapshot.
            chunk = [
                tid
                for tid in sorted(self.table.current.tids())
                if tid not in read_tids
            ][: self.chunk_size]
            if not chunk:
                break
            chunks += 1
            for tid in chunk:
                values = self.table.current.get_or_none(tid)
                if values is None:
                    continue
                partial_sum += values[self.position] or 0
                read_tids.add(tid)
                if self.metrics:
                    self.metrics.count(Metrics.ROWS_SCANNED)

            still_pending: List[UpdateIntent] = []
            for intent in pending:
                cost = self._import_cost(intent.dry_run(self.table), read_tids)
                if imported + cost <= self.epsilon:
                    intent.apply(self.db, self.table)
                    imported += cost
                    admitted += 1
                    if self.metrics:
                        self.metrics.count("esr_admitted")
                else:
                    deferrals += 1
                    still_pending.append(intent)
                    if self.metrics:
                        self.metrics.count("esr_deferrals")
            pending = still_pending

        # The ESR guarantee is stated against the database state at
        # scan end, before the deferred intents run.
        exact_at_scan_end = sum(
            (row.values[self.position] or 0) for row in self.table.rows()
        )
        # Blocked intents run now, strictly after the query: they were
        # delayed for serializability, never rejected.
        deferred_final = len(pending)
        for intent in pending:
            intent.apply(self.db, self.table)

        return EpsilonScanReport(
            partial_sum,
            exact_at_scan_end,
            imported,
            self.epsilon,
            admitted,
            deferrals,
            deferred_final,
            chunks,
        )
