"""Epsilon Serializability substrate (paper Section 3.2's foundation).

See DESIGN.md §6 and :mod:`repro.esr.divergence`.
"""

from repro.esr.divergence import EpsilonScan, EpsilonScanReport, UpdateIntent

__all__ = ["EpsilonScan", "EpsilonScanReport", "UpdateIntent"]
