"""Storage substrate: tables, transactions, update logs, logical time.

See DESIGN.md S2.
"""

from repro.storage.database import Database
from repro.storage.snapshots import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.storage.table import Table
from repro.storage.timestamps import EPOCH, LogicalClock, Timestamp
from repro.storage.transactions import Transaction
from repro.storage.update_log import UpdateKind, UpdateLog, UpdateRecord
from repro.storage.wal import WriteAheadLog, recover_database, scan_wal

__all__ = [
    "WriteAheadLog",
    "recover_database",
    "scan_wal",
    "Database",
    "EPOCH",
    "LogicalClock",
    "Table",
    "Timestamp",
    "Transaction",
    "UpdateKind",
    "UpdateLog",
    "UpdateRecord",
    "database_from_dict",
    "database_to_dict",
    "load_database",
    "save_database",
]
