"""Durable write-ahead log for update records and CQ lifecycle events.

The in-memory :class:`~repro.storage.update_log.UpdateLog` is the
engine's working set; this module is its crash-safe shadow. Every
committed :class:`UpdateRecord` (and every table/CQ lifecycle event) is
journaled *before* it is applied, so a process that dies between
checkpoints loses nothing: recovery replays the journal on top of the
last checkpoint and the restored site carries exactly the state the
crashed one had acknowledged.

Frame layout (append-only file)::

    +----------------+----------------+---------------------------+
    | 4 bytes, BE    | 4 bytes, BE    | UTF-8 JSON payload        |
    | payload length | CRC32(payload) | {"k": <kind>, ...fields}  |
    +----------------+----------------+---------------------------+

A crash mid-append leaves a *torn* tail: a short prefix, a length
promising bytes that never arrived, or a payload whose CRC32 does not
match. Recovery never crashes on a torn tail — it replays every intact
frame, truncates the file at the first bad byte (counted as a torn
truncation), and the log is immediately appendable again. Corruption
*before* the torn tail is indistinguishable from it: everything after
the first bad frame is discarded, which is the strongest sound answer
an unfenced log can give.

``fsync`` policy trades durability for throughput:

* ``always`` — fsync after every commit barrier (no acknowledged
  transaction is ever lost);
* ``batch``  — fsync every :attr:`WriteAheadLog.batch_window` appends
  and on truncate/close (bounded loss window, near-``off`` throughput);
* ``off``    — never fsync explicitly (the OS page cache decides).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import WALError
from repro.metrics import Metrics
from repro.storage.update_log import UpdateKind, UpdateRecord

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)

FSYNC_POLICIES = ("always", "batch", "off")

#: Entry kinds a journal may contain.
KIND_CREATE_TABLE = "create_table"
KIND_DROP_TABLE = "drop_table"
KIND_BASELINE = "baseline"
KIND_COMMIT = "commit"
KIND_CQ_REGISTER = "cq_register"
KIND_CQ_DEREGISTER = "cq_deregister"
KIND_SUB_REGISTER = "sub_register"
KIND_SUB_DEREGISTER = "sub_deregister"


def _encode_values(values) -> Optional[List[Any]]:
    return None if values is None else list(values)


def _decode_values(data):
    return None if data is None else tuple(data)


def record_to_entry(record: UpdateRecord) -> List[Any]:
    return [
        record.kind.value,
        record.tid,
        _encode_values(record.old),
        _encode_values(record.new),
    ]


def record_from_entry(data: Sequence[Any], ts: int, txn_id: int) -> UpdateRecord:
    kind, tid, old, new = data
    return UpdateRecord(
        UpdateKind(kind),
        tid,
        _decode_values(old),
        _decode_values(new),
        ts,
        txn_id,
    )


class WALRecovery:
    """What scanning a journal found: intact entries plus tail state."""

    __slots__ = ("entries", "torn", "valid_bytes", "path")

    def __init__(
        self, entries: List[Dict[str, Any]], torn: bool, valid_bytes: int, path: str
    ):
        self.entries = entries
        self.torn = torn
        self.valid_bytes = valid_bytes
        self.path = path

    def __repr__(self) -> str:
        return (
            f"WALRecovery({len(self.entries)} entries, torn={self.torn}, "
            f"valid_bytes={self.valid_bytes})"
        )


def scan_wal(path: str, repair: bool = True) -> WALRecovery:
    """Read every intact frame from a journal file.

    Stops at the first torn or corrupt frame. With ``repair`` (the
    default) the file is truncated at that point so the journal is
    appendable again; the recovery result records that a truncation
    happened. A missing file scans as empty.
    """
    if not os.path.exists(path):
        return WALRecovery([], False, 0, path)
    entries: List[Dict[str, Any]] = []
    valid = 0
    torn = False
    with open(path, "rb") as handle:
        data = handle.read()
    size = len(data)
    offset = 0
    while True:
        if offset + _HEADER.size > size:
            torn = offset < size
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            torn = True
            break
        try:
            entry = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            torn = True
            break
        if not isinstance(entry, dict) or "k" not in entry:
            torn = True
            break
        entries.append(entry)
        offset = end
        valid = end
    if torn and repair and valid < size:
        with open(path, "r+b") as handle:
            handle.truncate(valid)
    return WALRecovery(entries, torn, valid, path)


class WriteAheadLog:
    """An append-only, checksummed journal of database events.

    One journal serves a whole :class:`~repro.storage.database.Database`
    (every table, plus CQ registration events from managers/servers that
    share the database). Appends happen *before* the corresponding
    in-memory apply — see :meth:`Transaction.commit
    <repro.storage.transactions.Transaction.commit>` — so the journal is
    always at least as new as memory.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        batch_window: int = 64,
        metrics: Optional[Metrics] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WALError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self.batch_window = max(1, batch_window)
        self.metrics = metrics
        #: Local counters (also charged to ``metrics`` when present).
        self.appends = 0
        self.syncs = 0
        self._unsynced = 0
        self._handle = open(path, "ab")

    # -- low-level append --------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._handle is None or self._handle.closed

    def append(self, entry: Dict[str, Any]) -> None:
        """Journal one entry (a JSON-compatible dict with a ``k`` kind)."""
        if self.closed:
            raise WALError(f"WAL {self.path!r} is closed")
        payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._handle.write(_HEADER.pack(len(payload), crc) + payload)
        self.appends += 1
        if self.metrics:
            self.metrics.count(Metrics.WAL_APPENDS)
        self._unsynced += 1
        if self.fsync == "batch" and self._unsynced >= self.batch_window:
            self.sync()

    def commit_barrier(self) -> None:
        """Make everything journaled so far durable, per policy.

        Called once per transaction commit (after all of the commit's
        frames are appended), so ``always`` costs one fsync per
        transaction, not one per table touched.
        """
        if self.fsync == "always":
            self.sync()
        else:
            self._handle.flush()

    def sync(self) -> None:
        """Flush user- and OS-level buffers to stable storage."""
        if self.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._unsynced = 0

    def truncate(self) -> None:
        """Drop every journaled frame (a checkpoint now covers them)."""
        if self.closed:
            raise WALError(f"WAL {self.path!r} is closed")
        self._handle.flush()
        self._handle.truncate(0)
        self._handle.seek(0)
        if self.fsync != "off":
            self.sync()

    def close(self) -> None:
        if self.closed:
            return
        self._handle.flush()
        if self.fsync != "off":
            os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- typed appends -----------------------------------------------------

    def log_create_table(self, table) -> None:
        self.append(
            {
                "k": KIND_CREATE_TABLE,
                "name": table.name,
                "schema": [[a.name, a.type.value] for a in table.schema],
                "indexes": [
                    [table.schema.attributes[p].name for p in index.positions]
                    for index in table.indexes.all()
                ],
            }
        )
        self.commit_barrier()

    def log_drop_table(self, name: str) -> None:
        self.append({"k": KIND_DROP_TABLE, "name": name})
        self.commit_barrier()

    def log_baseline(self, table, now: int) -> None:
        """Journal a populated table's current contents.

        Emitted when a journal is attached to a database that already
        holds rows, so the journal stays standalone-replayable: history
        before the attach point is flattened into this one frame.
        """
        if not len(table):
            return
        self.append(
            {
                "k": KIND_BASELINE,
                "table": table.name,
                "now": now,
                "next_tid": table._next_tid,
                "pruned_through": table.log.pruned_through,
                "rows": [[row.tid, list(row.values)] for row in table.rows()],
            }
        )

    def log_commit(self, table_name: str, records: Sequence[UpdateRecord]) -> None:
        """Journal one table's slice of a commit (one frame per table)."""
        if not records:
            return
        self.append(
            {
                "k": KIND_COMMIT,
                "table": table_name,
                "ts": records[0].ts,
                "txn": records[0].txn_id,
                "records": [record_to_entry(r) for r in records],
            }
        )

    def log_event(self, kind: str, **fields: Any) -> None:
        """Journal a CQ lifecycle event (register/deregister).

        Control-plane frames are rare and are never followed by a
        transaction commit barrier, so each one flushes immediately —
        otherwise a registration could sit in the user-space batch
        buffer indefinitely and vanish in a crash.
        """
        entry = {"k": kind}
        entry.update(fields)
        self.append(entry)
        self.commit_barrier()

    def __repr__(self) -> str:
        state = "closed" if self.closed else self.fsync
        return f"WriteAheadLog({self.path!r}, {state}, {self.appends} appends)"


# -- replay -------------------------------------------------------------------


class ReplaySummary:
    """What replaying a journal into a database applied and skipped."""

    __slots__ = ("commits_applied", "records_applied", "commits_skipped", "cq_events")

    def __init__(self) -> None:
        self.commits_applied = 0
        self.records_applied = 0
        #: Frames at or below the checkpoint horizon (already covered).
        self.commits_skipped = 0
        #: CQ lifecycle entries, in journal order, for the caller (a
        #: manager or server recovery path) to re-apply at its level.
        self.cq_events: List[Dict[str, Any]] = []

    def __repr__(self) -> str:
        return (
            f"ReplaySummary({self.commits_applied} commits, "
            f"{self.records_applied} records, "
            f"{self.commits_skipped} skipped, {len(self.cq_events)} cq events)"
        )


def replay_entries(db, entries: List[Dict[str, Any]], base_ts: int = 0) -> ReplaySummary:
    """Apply journal entries newer than ``base_ts`` to a database.

    ``base_ts`` is the checkpoint horizon: commit frames at or below it
    are already covered by the loaded snapshot and are skipped (a crash
    between writing a checkpoint and truncating the journal leaves such
    frames behind). Table events are idempotent — creating an existing
    table or dropping a missing one is a no-op. Applies go through
    :meth:`Table.apply_committed` directly (never through a
    Transaction), so replay neither re-journals nor re-notifies.
    """
    from repro.relational.schema import Schema
    from repro.relational.types import AttributeType

    summary = ReplaySummary()
    max_ts = base_ts
    for entry in entries:
        kind = entry["k"]
        if kind == KIND_CREATE_TABLE:
            if entry["name"] not in db:
                db.create_table(
                    entry["name"],
                    Schema.of(
                        *[(c, AttributeType(t)) for c, t in entry["schema"]]
                    ),
                    indexes=entry.get("indexes", ()),
                )
        elif kind == KIND_DROP_TABLE:
            if entry["name"] in db:
                db.drop_table(entry["name"])
        elif kind == KIND_BASELINE:
            table = db.table(entry["table"])
            if not len(table):
                for tid, values in entry["rows"]:
                    tid = tuple(tid) if isinstance(tid, list) else tid
                    table.current.add(tid, tuple(values))
                    table.indexes.on_insert(tid, tuple(values))
                table._next_tid = max(table._next_tid, entry["next_tid"])
                # History through the attach point is flattened into
                # this frame: mark it retired so a differential read
                # into it raises instead of silently missing records.
                table.log.pruned_through = max(
                    entry.get("pruned_through", 0), entry.get("now", 0)
                )
                max_ts = max(max_ts, entry.get("now", 0))
        elif kind == KIND_COMMIT:
            ts = entry["ts"]
            if ts <= base_ts:
                summary.commits_skipped += 1
                continue
            table = db.table(entry["table"])
            records = [
                record_from_entry(data, ts, entry.get("txn", -1))
                for data in entry["records"]
            ]
            table.apply_committed(records)
            for record in records:
                if isinstance(record.tid, int):
                    table._next_tid = max(table._next_tid, record.tid + 1)
            summary.commits_applied += 1
            summary.records_applied += len(records)
            max_ts = max(max_ts, ts)
        else:
            summary.cq_events.append(entry)
    db.clock.advance_to(max_ts)
    return summary


def recover_database(
    path: str,
    fsync: str = "batch",
    metrics: Optional[Metrics] = None,
    base=None,
):
    """Rebuild a database from a journal and re-open it for appending.

    ``base`` is an optional already-restored database (from the last
    checkpoint); journal frames at or below its clock are skipped. With
    no base, the journal must carry the full history (it does, until the
    first checkpoint truncates it).

    Returns ``(db, recovery, summary)``: the live database (journal
    attached, ready for new commits), the scan result (including whether
    a torn tail was truncated), and the replay summary (including CQ
    lifecycle events for manager/server-level recovery).
    """
    from repro.storage.database import Database

    recovery = scan_wal(path, repair=True)
    db = base if base is not None else Database()
    summary = replay_entries(
        db, recovery.entries, base_ts=db.now() if base is not None else 0
    )
    if metrics:
        metrics.count(Metrics.WAL_RECOVERED, len(recovery.entries))
        if recovery.torn:
            metrics.count(Metrics.WAL_TORN_TRUNCATIONS)
    wal = WriteAheadLog(path, fsync=fsync, metrics=metrics)
    db.attach_wal(wal, journal_existing=False)
    return db, recovery, summary


def shard_wal_path(root: str, shard_id: int) -> str:
    """The journal path of one cluster shard: ``<root>/shard-<id>/wal.log``.

    Each shard owns a private durability directory so concurrent shard
    journals never interleave frames, and a shard's recovery needs only
    its own directory. The directory is created on first use.
    """
    directory = os.path.join(root, f"shard-{shard_id}")
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, "wal.log")


def shard_checkpoint_path(root: str, shard_id: int) -> str:
    """The checkpoint path alongside :func:`shard_wal_path`."""
    directory = os.path.join(root, f"shard-{shard_id}")
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, "checkpoint.json")


def rebase_wal(wal: WriteAheadLog, db) -> None:
    """Truncate a journal a checkpoint just superseded and re-seed it.

    After a checkpoint, the journaled history is redundant — but an
    empty journal would no longer replay standalone (its create-table
    frames are gone). Re-seeding with one creation + baseline frame per
    table keeps both recovery paths sound: checkpoint + (empty) journal
    suffix, or journal alone if the checkpoint file is ever lost.
    """
    wal.truncate()
    now = db.now()
    for table in db.tables():
        wal.log_create_table(table)
        wal.log_baseline(table, now)
    # The checkpoint claims to supersede the journal from this moment;
    # the re-seeded frames must be durable before that claim holds.
    wal.commit_barrier()
