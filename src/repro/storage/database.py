"""The database catalog: named tables sharing one logical clock."""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import DuplicateTableError, NoSuchTableError
from repro.metrics import Metrics
from repro.relational.aggregates import AggregateQuery, evaluate_aggregate
from repro.relational.algebra import SPJQuery
from repro.relational.evaluate import evaluate_spj
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.sql import parse_query
from repro.relational.types import AttributeType
from repro.storage.table import Observer, Table
from repro.storage.timestamps import LogicalClock, Timestamp
from repro.storage.transactions import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.wal import WriteAheadLog

Query = Union[SPJQuery, AggregateQuery]


class Database:
    """A collection of tables, a shared clock, and query entry points.

    ``durability`` turns on write-ahead logging: pass a
    :class:`~repro.storage.wal.WriteAheadLog` (or a path string, which
    opens one with the ``fsync`` policy — default ``batch``) and every
    commit is journaled before it is applied. Recover a crashed
    database with :func:`repro.storage.wal.recover_database`.
    """

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        durability: Union["WriteAheadLog", str, None] = None,
        fsync: str = "batch",
    ):
        self.clock = clock or LogicalClock()
        self._tables: Dict[str, Table] = {}
        self.wal: Optional["WriteAheadLog"] = None
        if durability is not None:
            if isinstance(durability, str):
                from repro.storage.wal import WriteAheadLog

                durability = WriteAheadLog(durability, fsync=fsync)
            self.attach_wal(durability)

    # -- durability --------------------------------------------------------

    def attach_wal(self, wal: "WriteAheadLog", journal_existing: bool = True) -> None:
        """Journal all future commits (and table DDL) through ``wal``.

        With ``journal_existing`` (the default) a creation frame is
        journaled for every table already in the catalog, so a journal
        attached to a populated database still replays standalone.
        Recovery passes ``journal_existing=False``: the restored tables
        came *from* the journal (or from a checkpoint that supersedes
        it) and must not be re-journaled.
        """
        self.wal = wal
        for table in self._tables.values():
            table.wal = wal
            if journal_existing:
                wal.log_create_table(table)
                wal.log_baseline(table, self.now())

    # -- catalog ----------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema_or_pairs: Union[Schema, Sequence[Tuple[str, AttributeType]]],
        indexes: Iterable[Sequence[str]] = (),
    ) -> Table:
        """Create a table; optionally build hash indexes on column lists."""
        if name in self._tables:
            raise DuplicateTableError(f"table {name!r} already exists")
        if isinstance(schema_or_pairs, Schema):
            schema = schema_or_pairs
        else:
            schema = Schema.of(*schema_or_pairs)
        table = Table(name, schema, self.clock)
        for columns in indexes:
            table.create_index(columns)
        self._tables[name] = table
        table.wal = self.wal
        if self.wal is not None:
            self.wal.log_create_table(table)
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise NoSuchTableError(f"no table {name!r}")
        if self.wal is not None:
            self.wal.log_drop_table(name)
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTableError(f"no table {name!r}") from None

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def relation(self, name: str) -> Relation:
        """The live relation of a table (the evaluator's resolver)."""
        return self.table(name).current

    # -- transactions -------------------------------------------------------

    def begin(self) -> Transaction:
        return Transaction(self.clock)

    def now(self) -> Timestamp:
        return self.clock.now()

    # -- queries --------------------------------------------------------------

    def parse(self, sql: str) -> Query:
        return parse_query(sql)

    def query(
        self,
        query: Union[str, Query],
        metrics: Optional[Metrics] = None,
    ) -> Relation:
        """Complete (from-scratch) evaluation of a query or SQL text."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, AggregateQuery):
            return evaluate_aggregate(query, self.relation, metrics)
        return evaluate_spj(query, self.relation, metrics)

    # -- observers ----------------------------------------------------------

    def subscribe(self, table_name: str, observer: Observer) -> Callable[[], None]:
        """Observe commits touching one table; returns unsubscribe fn."""
        return self.table(table_name).subscribe(observer)

    def __repr__(self) -> str:
        return f"Database({sorted(self._tables)}, now={self.clock.now()})"
