"""Per-table update logs.

Every committed change to a table appends an :class:`UpdateRecord`.
The log is the raw material differential relations are consolidated
from (paper Section 4.1: a differential relation "maintains changes
made by several transactions"), and the unit the active-delta-zone
garbage collector prunes (Section 5.4).
"""

from __future__ import annotations

import bisect
import enum
import threading
from typing import Iterator, List, Optional, Sequence

from repro.relational.relation import Tid, Values
from repro.storage.timestamps import Timestamp


class UpdateKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


class UpdateRecord:
    """One committed change to one tuple.

    ``old`` is None for inserts; ``new`` is None for deletes — the same
    null convention the paper's differential relations use.
    """

    __slots__ = ("kind", "tid", "old", "new", "ts", "txn_id")

    def __init__(
        self,
        kind: UpdateKind,
        tid: Tid,
        old: Optional[Values],
        new: Optional[Values],
        ts: Timestamp,
        txn_id: int,
    ):
        self.kind = kind
        self.tid = tid
        self.old = old
        self.new = new
        self.ts = ts
        self.txn_id = txn_id

    def __repr__(self) -> str:
        return (
            f"UpdateRecord({self.kind.value}, tid={self.tid}, "
            f"old={self.old}, new={self.new}, ts={self.ts}, txn={self.txn_id})"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UpdateRecord) and (
            self.kind,
            self.tid,
            self.old,
            self.new,
            self.ts,
            self.txn_id,
        ) == (other.kind, other.tid, other.old, other.new, other.ts, other.txn_id)

    def __hash__(self) -> int:
        return hash((self.kind, self.tid, self.old, self.new, self.ts, self.txn_id))


class UpdateLog:
    """An append-only, timestamp-ordered sequence of update records.

    Records arrive in non-decreasing ``ts`` order (commit order).
    ``since(ts)`` binary-searches the boundary, so reading "everything
    after the last CQ execution" costs O(log n + answer).

    ``since`` and ``prune_before`` hold an internal lock, so a reader
    never observes a half-pruned log: the parallel refresh scheduler
    lets one CQ's post-refresh garbage collection race another CQ's
    delta consolidation, and each operation must be atomic for the
    active-delta-zone invariant (GC only ever prunes below every
    reader's window) to carry over to the physical lists.
    """

    __slots__ = ("_records", "_timestamps", "pruned_through", "_lock")

    def __init__(self) -> None:
        self._records: List[UpdateRecord] = []
        self._timestamps: List[Timestamp] = []
        #: Highest timestamp removed by garbage collection (0 if none).
        self.pruned_through: Timestamp = 0
        self._lock = threading.Lock()

    def _append(self, record: UpdateRecord) -> None:
        if self._timestamps and record.ts < self._timestamps[-1]:
            raise ValueError(
                f"log timestamps must be non-decreasing; got {record.ts} "
                f"after {self._timestamps[-1]}"
            )
        self._records.append(record)
        self._timestamps.append(record.ts)

    def append(self, record: UpdateRecord) -> None:
        with self._lock:
            self._append(record)

    def extend(self, records: Sequence[UpdateRecord]) -> None:
        with self._lock:
            for record in records:
                self._append(record)

    def since(self, ts: Timestamp) -> List[UpdateRecord]:
        """All records with ``record.ts > ts``, in commit order.

        Raises if the request reaches into a pruned region, which would
        silently drop changes — a CQ asking for history older than the
        GC horizon is a bug in zone accounting.
        """
        with self._lock:
            if ts < self.pruned_through:
                raise ValueError(
                    f"log pruned through ts={self.pruned_through}; "
                    f"cannot read since ts={ts}"
                )
            start = bisect.bisect_right(self._timestamps, ts)
            return self._records[start:]

    def prune_before(self, ts: Timestamp) -> int:
        """Drop records with ``record.ts <= ts``; returns count dropped.

        This implements retiring data outside the system active delta
        zone (Section 5.4).
        """
        with self._lock:
            cut = bisect.bisect_right(self._timestamps, ts)
            if cut == 0:
                return 0
            dropped = self._records[:cut]
            self._records = self._records[cut:]
            self._timestamps = self._timestamps[cut:]
            self.pruned_through = max(self.pruned_through, ts)
            return len(dropped)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)

    def latest_ts(self) -> Timestamp:
        return self._timestamps[-1] if self._timestamps else 0

    def oldest_ts(self) -> Timestamp:
        return self._timestamps[0] if self._timestamps else 0

    def __repr__(self) -> str:
        return (
            f"UpdateLog({len(self)} records, "
            f"ts∈[{self.oldest_ts()},{self.latest_ts()}], "
            f"pruned_through={self.pruned_through})"
        )
