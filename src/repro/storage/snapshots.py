"""Database snapshots: JSON-serializable state for save/load.

Continual-query deployments are long-running; being able to checkpoint
a site's state (contents, update logs, clock) and restore it is basic
operability. The format is plain JSON: schemas, rows with their tids,
optional update logs with their GC watermarks, and the logical clock,
so a restored database resumes exactly where the original stopped —
including the delta windows in-flight CQs depend on.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict

from repro.errors import CheckpointError, StorageError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database
from repro.storage.timestamps import LogicalClock
from repro.storage.update_log import UpdateKind, UpdateRecord

FORMAT_VERSION = 1

#: Version of the on-disk checkpoint *envelope* (header line + payload).
CHECKPOINT_FORMAT = 2


def write_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write a checksummed checkpoint file.

    Layout: one header line ``{"repro_checkpoint": 2, "crc32": ...}``
    followed by the JSON payload. The bytes land in a sibling temp file
    first and only an ``os.replace`` (atomic on POSIX) publishes them,
    so a crash mid-write leaves the previous checkpoint intact — there
    is never a moment where ``path`` holds a partial file.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = json.dumps(
        {
            "repro_checkpoint": CHECKPOINT_FORMAT,
            "crc32": zlib.crc32(body) & 0xFFFFFFFF,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(header + b"\n" + body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` when the file is not
    an envelope, carries an unsupported version, or fails its CRC32 —
    a half-written or bit-flipped checkpoint is rejected loudly instead
    of silently restoring garbage.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    head, sep, body = raw.partition(b"\n")
    if not sep:
        raise CheckpointError(f"{path}: missing checkpoint header line")
    try:
        header = json.loads(head.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or "repro_checkpoint" not in header:
        raise CheckpointError(f"{path}: not a checkpoint envelope")
    if header["repro_checkpoint"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format "
            f"{header['repro_checkpoint']!r} (expected {CHECKPOINT_FORMAT})"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != header.get("crc32"):
        raise CheckpointError(f"{path}: checksum mismatch (corrupt payload)")
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: undecodable payload: {exc}") from exc


def database_to_dict(db: Database, include_logs: bool = True) -> Dict[str, Any]:
    """Serialize a database to JSON-compatible primitives."""
    tables = {}
    for table in db.tables():
        entry: Dict[str, Any] = {
            "schema": [
                [attr.name, attr.type.value] for attr in table.schema
            ],
            "next_tid": table._next_tid,
            "rows": [
                [row.tid, list(row.values)] for row in table.rows()
            ],
            "indexes": [
                [table.schema.attributes[p].name for p in index.positions]
                for index in table.indexes.all()
            ],
        }
        if include_logs:
            entry["log"] = [
                [
                    record.kind.value,
                    record.tid,
                    list(record.old) if record.old is not None else None,
                    list(record.new) if record.new is not None else None,
                    record.ts,
                    record.txn_id,
                ]
                for record in table.log
            ]
            entry["pruned_through"] = table.log.pruned_through
        tables[table.name] = entry
    return {
        "format": FORMAT_VERSION,
        "now": db.now(),
        "tables": tables,
    }


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Reconstruct a database from :func:`database_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    db = Database(LogicalClock(start=data["now"]))
    for name, entry in data["tables"].items():
        schema = Schema.of(
            *[(col, AttributeType(type_)) for col, type_ in entry["schema"]]
        )
        table = db.create_table(name, schema)
        for tid, values in entry["rows"]:
            table.current.add(tid, tuple(values))
        table._next_tid = entry["next_tid"]
        for columns in entry["indexes"]:
            table.create_index(columns)
        for kind, tid, old, new, ts, txn_id in entry.get("log", []):
            table.log.append(
                UpdateRecord(
                    UpdateKind(kind),
                    tid,
                    tuple(old) if old is not None else None,
                    tuple(new) if new is not None else None,
                    ts,
                    txn_id,
                )
            )
        table.log.pruned_through = entry.get("pruned_through", 0)
    return db


def save_database(db: Database, path: str, include_logs: bool = True) -> None:
    """Atomically write a checksummed snapshot to ``path``.

    When the database journals through a WAL, the snapshot supersedes
    the journaled history: the WAL is truncated and re-seeded with the
    current table set so it stays standalone-replayable.
    """
    write_checkpoint(path, database_to_dict(db, include_logs=include_logs))
    if db.wal is not None and not db.wal.closed:
        from repro.storage.wal import rebase_wal

        rebase_wal(db.wal, db)


def load_database(path: str) -> Database:
    """Load a snapshot written by :func:`save_database`."""
    return database_from_dict(read_checkpoint(path))
