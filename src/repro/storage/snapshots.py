"""Database snapshots: JSON-serializable state for save/load.

Continual-query deployments are long-running; being able to checkpoint
a site's state (contents, update logs, clock) and restore it is basic
operability. The format is plain JSON: schemas, rows with their tids,
optional update logs with their GC watermarks, and the logical clock,
so a restored database resumes exactly where the original stopped —
including the delta windows in-flight CQs depend on.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import StorageError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database
from repro.storage.timestamps import LogicalClock
from repro.storage.update_log import UpdateKind, UpdateRecord

FORMAT_VERSION = 1


def database_to_dict(db: Database, include_logs: bool = True) -> Dict[str, Any]:
    """Serialize a database to JSON-compatible primitives."""
    tables = {}
    for table in db.tables():
        entry: Dict[str, Any] = {
            "schema": [
                [attr.name, attr.type.value] for attr in table.schema
            ],
            "next_tid": table._next_tid,
            "rows": [
                [row.tid, list(row.values)] for row in table.rows()
            ],
            "indexes": [
                [table.schema.attributes[p].name for p in index.positions]
                for index in table.indexes.all()
            ],
        }
        if include_logs:
            entry["log"] = [
                [
                    record.kind.value,
                    record.tid,
                    list(record.old) if record.old is not None else None,
                    list(record.new) if record.new is not None else None,
                    record.ts,
                    record.txn_id,
                ]
                for record in table.log
            ]
            entry["pruned_through"] = table.log.pruned_through
        tables[table.name] = entry
    return {
        "format": FORMAT_VERSION,
        "now": db.now(),
        "tables": tables,
    }


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Reconstruct a database from :func:`database_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {data.get('format')!r}"
        )
    db = Database(LogicalClock(start=data["now"]))
    for name, entry in data["tables"].items():
        schema = Schema.of(
            *[(col, AttributeType(type_)) for col, type_ in entry["schema"]]
        )
        table = db.create_table(name, schema)
        for tid, values in entry["rows"]:
            table.current.add(tid, tuple(values))
        table._next_tid = entry["next_tid"]
        for columns in entry["indexes"]:
            table.create_index(columns)
        for kind, tid, old, new, ts, txn_id in entry.get("log", []):
            table.log.append(
                UpdateRecord(
                    UpdateKind(kind),
                    tid,
                    tuple(old) if old is not None else None,
                    tuple(new) if new is not None else None,
                    ts,
                    txn_id,
                )
            )
        table.log.pruned_through = entry.get("pruned_through", 0)
    return db


def save_database(db: Database, path: str, include_logs: bool = True) -> None:
    """Write a snapshot as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(database_to_dict(db, include_logs=include_logs), handle)


def load_database(path: str) -> Database:
    """Load a snapshot written by :func:`save_database`."""
    with open(path, "r", encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))
