"""Stored tables: live relations plus indexes, log, and observers.

All mutation flows through :class:`repro.storage.transactions.Transaction`
(including the single-op convenience helpers), so the update log sees
every change with a commit timestamp and observers are notified exactly
once per commit.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import NoSuchTupleError
from repro.relational.indexes import HashIndex, IndexSet
from repro.relational.relation import Relation, Tid, Values
from repro.relational.schema import Schema
from repro.storage.timestamps import LogicalClock
from repro.storage.update_log import UpdateKind, UpdateLog, UpdateRecord

# Observers receive (table, committed records for that table).
Observer = Callable[["Table", List[UpdateRecord]], None]


class Table:
    """A named, schema'd, indexed, logged collection of rows."""

    def __init__(self, name: str, schema: Schema, clock: LogicalClock):
        self.name = name
        self.schema = schema
        self.clock = clock
        self.current = Relation(schema)
        self.indexes = IndexSet()
        self.log = UpdateLog()
        #: Set by the owning Database when durability is on; commits
        #: journal through it before they apply.
        self.wal = None
        self._observers: List[Observer] = []
        self._next_tid = 1

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.current)

    def __contains__(self, tid: Tid) -> bool:
        return tid in self.current

    def get(self, tid: Tid) -> Values:
        try:
            return self.current.get(tid)
        except KeyError:
            raise NoSuchTupleError(f"{self.name}: no tuple with tid {tid}") from None

    def snapshot(self) -> Relation:
        """An independent copy of the current contents."""
        return self.current.copy()

    def rows(self):
        return iter(self.current)

    # -- index management -------------------------------------------------

    def create_index(self, columns: Sequence[str]) -> HashIndex:
        """Create (or return an existing) hash index on ``columns``."""
        positions = tuple(self.schema.position(c) for c in columns)
        existing = self.indexes.get(positions)
        if existing is not None:
            return existing
        index = HashIndex.build(self.current, positions)
        self.indexes.add(index)
        return index

    def index_for(self, positions: Sequence[int]) -> Optional[HashIndex]:
        return self.indexes.best_for(positions)

    # -- observers ---------------------------------------------------------

    def subscribe(self, observer: Observer) -> Callable[[], None]:
        """Register a commit observer; returns an unsubscribe callable."""
        self._observers.append(observer)

        def unsubscribe() -> None:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

        return unsubscribe

    # -- mutation (called by Transaction only) ------------------------------

    def reserve_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def apply_committed(self, records: List[UpdateRecord]) -> None:
        """Apply already-validated records and sync indexes + log."""
        for record in records:
            if record.kind is UpdateKind.INSERT:
                self.current.add(record.tid, record.new)
                self.indexes.on_insert(record.tid, record.new)
            elif record.kind is UpdateKind.DELETE:
                self.current.remove(record.tid)
                self.indexes.on_delete(record.tid, record.old)
            else:
                self.current.add(record.tid, record.new)
                self.indexes.on_modify(record.tid, record.old, record.new)
            self.log.append(record)

    def notify(self, records: List[UpdateRecord]) -> None:
        for observer in list(self._observers):
            observer(self, records)

    # -- convenience single-op transactions --------------------------------

    def insert(self, values: Sequence) -> Tid:
        """Insert one row in its own transaction; returns the tid."""
        from repro.storage.transactions import Transaction

        txn = Transaction(self.clock, txn_id=-1)
        tid = txn.insert_into(self, tuple(values))
        txn.commit()
        return tid

    def delete(self, tid: Tid) -> None:
        from repro.storage.transactions import Transaction

        txn = Transaction(self.clock, txn_id=-1)
        txn.delete_from(self, tid)
        txn.commit()

    def modify(
        self,
        tid: Tid,
        values: Optional[Sequence] = None,
        updates: Optional[Dict[str, object]] = None,
    ) -> None:
        from repro.storage.transactions import Transaction

        txn = Transaction(self.clock, txn_id=-1)
        txn.modify_in(self, tid, values=values, updates=updates)
        txn.commit()

    def insert_many(self, rows: Iterable[Sequence]) -> List[Tid]:
        """Bulk-load rows in one transaction; returns assigned tids."""
        from repro.storage.transactions import Transaction

        txn = Transaction(self.clock, txn_id=-1)
        tids = [txn.insert_into(self, tuple(row)) for row in rows]
        txn.commit()
        return tids

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {len(self.log)} log records)"
