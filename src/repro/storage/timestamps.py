"""Monotone timestamps.

The paper requires only "a system clock, or any other monotonically
increasing source of timestamps" (Section 4.1). A logical counter keeps
every test and benchmark deterministic, and doubles as the virtual time
base for the CQ scheduler.
"""

from __future__ import annotations

Timestamp = int

#: Timestamp strictly before any ticked value; "the beginning of time".
EPOCH: Timestamp = 0


class LogicalClock:
    """A strictly monotone logical clock.

    ``tick()`` advances and returns the new time; ``now()`` observes
    without advancing. ``advance_to`` lets schedulers jump virtual time
    forward (never backward).
    """

    __slots__ = ("_now",)

    def __init__(self, start: Timestamp = EPOCH):
        self._now = start

    def now(self) -> Timestamp:
        return self._now

    def tick(self) -> Timestamp:
        self._now += 1
        return self._now

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        """Move time forward to ``timestamp`` (no-op if in the past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"LogicalClock(now={self._now})"
