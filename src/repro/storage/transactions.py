"""Transactions: atomic, logged multi-table update batches.

A transaction buffers operations, validates them against the tables'
current contents plus its own pending effects, and applies everything
at commit under a single commit timestamp — exactly the shape of the
paper's Example 1 transaction T (insert + modify + delete in one unit).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NoSuchTupleError, TransactionError
from repro.relational.relation import Tid, Values
from repro.storage.table import Table
from repro.storage.timestamps import LogicalClock, Timestamp
from repro.storage.update_log import UpdateKind, UpdateRecord

_txn_counter = itertools.count(1)


class _PendingTable:
    """A transaction's view of one table: base + buffered effects."""

    __slots__ = ("table", "ops", "pending_new", "pending_deleted")

    def __init__(self, table: Table):
        self.table = table
        # (kind, tid, old, new) in program order.
        self.ops: List[Tuple[UpdateKind, Tid, Optional[Values], Optional[Values]]] = []
        self.pending_new: Dict[Tid, Values] = {}
        self.pending_deleted: set = set()

    def live_values(self, tid: Tid) -> Optional[Values]:
        """Current value of ``tid`` as seen by this transaction."""
        if tid in self.pending_deleted:
            return None
        if tid in self.pending_new:
            return self.pending_new[tid]
        return self.table.current.get_or_none(tid)


class Transaction:
    """Buffered multi-table write transaction.

    Usable directly or as a context manager::

        with db.begin() as txn:
            txn.insert_into(stocks, (101088, "MAC", 117))
            txn.delete_from(stocks, tid)
        # commits on normal exit, aborts on exception
    """

    def __init__(self, clock: LogicalClock, txn_id: Optional[int] = None):
        self.clock = clock
        self.txn_id = next(_txn_counter) if txn_id is None or txn_id < 0 else txn_id
        self._tables: Dict[int, _PendingTable] = {}
        self._state = "active"
        self.commit_ts: Optional[Timestamp] = None

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if self._state == "active":
                self.commit()
        else:
            if self._state == "active":
                self.abort()

    # -- operations --------------------------------------------------------

    def _pending(self, table: Table) -> _PendingTable:
        pending = self._tables.get(id(table))
        if pending is None:
            pending = _PendingTable(table)
            self._tables[id(table)] = pending
        return pending

    def _require_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction is {self._state}, not active")

    def insert_into(self, table: Table, values: Sequence) -> Tid:
        """Buffer an insert; returns the (reserved) tid."""
        self._require_active()
        validated = table.schema.validate_row(tuple(values))
        pending = self._pending(table)
        tid = table.reserve_tid()
        pending.ops.append((UpdateKind.INSERT, tid, None, validated))
        pending.pending_new[tid] = validated
        pending.pending_deleted.discard(tid)
        return tid

    def delete_from(self, table: Table, tid: Tid) -> None:
        """Buffer a delete of a tuple visible to this transaction."""
        self._require_active()
        pending = self._pending(table)
        old = pending.live_values(tid)
        if old is None:
            raise NoSuchTupleError(f"{table.name}: no tuple with tid {tid}")
        pending.ops.append((UpdateKind.DELETE, tid, old, None))
        pending.pending_deleted.add(tid)
        pending.pending_new.pop(tid, None)

    def modify_in(
        self,
        table: Table,
        tid: Tid,
        values: Optional[Sequence] = None,
        updates: Optional[Dict[str, object]] = None,
    ) -> None:
        """Buffer an in-place modification.

        Either ``values`` (a full replacement tuple) or ``updates``
        (a column->value dict) must be given.
        """
        self._require_active()
        if (values is None) == (updates is None):
            raise TransactionError("modify_in needs exactly one of values/updates")
        pending = self._pending(table)
        old = pending.live_values(tid)
        if old is None:
            raise NoSuchTupleError(f"{table.name}: no tuple with tid {tid}")
        if values is not None:
            new = table.schema.validate_row(tuple(values))
        else:
            merged = list(old)
            for name, value in updates.items():
                merged[table.schema.position(name)] = value
            new = table.schema.validate_row(tuple(merged))
        pending.ops.append((UpdateKind.MODIFY, tid, old, new))
        pending.pending_new[tid] = new

    def read(self, table: Table, tid: Tid) -> Optional[Values]:
        """The tuple as this transaction currently sees it (or None)."""
        self._require_active()
        return self._pending(table).live_values(tid)

    # -- completion ---------------------------------------------------------

    def commit(self) -> Timestamp:
        """Apply all buffered operations under one commit timestamp."""
        self._require_active()
        ts = self.clock.tick()
        per_table: List[Tuple[Table, List[UpdateRecord]]] = []
        for pending in self._tables.values():
            records = [
                UpdateRecord(kind, tid, old, new, ts, self.txn_id)
                for kind, tid, old, new in pending.ops
            ]
            per_table.append((pending.table, records))
        # Write-ahead: journal every record before any of them applies,
        # then hit one durability barrier for the whole transaction. A
        # crash after the barrier replays the commit; a crash before it
        # loses an unacknowledged commit — never half of one.
        barrier_wal = None
        for table, records in per_table:
            if table.wal is not None and records:
                table.wal.log_commit(table.name, records)
                barrier_wal = table.wal
        if barrier_wal is not None:
            barrier_wal.commit_barrier()
        for table, records in per_table:
            table.apply_committed(records)
        # Observers run after *all* tables are consistent, so a CQ
        # manager reacting to the commit sees the full post-state.
        for table, records in per_table:
            if records:
                table.notify(records)
        self._state = "committed"
        self.commit_ts = ts
        return ts

    def abort(self) -> None:
        self._require_active()
        self._tables.clear()
        self._state = "aborted"

    @property
    def state(self) -> str:
        return self._state

    def __repr__(self) -> str:
        ops = sum(len(p.ops) for p in self._tables.values())
        return f"Transaction(id={self.txn_id}, {self._state}, {ops} buffered ops)"
