"""Shard health tracking: the alive → suspect → dead state machine.

The router cannot distinguish a dead shard from a wedged or merely
slow one — a missed scatter deadline is the only signal either way.
:class:`HealthMonitor` turns consecutive missed acks into states: the
first ``suspect_after`` failures make a host *suspect* (still possibly
alive, no longer trusted to serve a cycle), ``dead_after`` make it
*dead*. Any successful request resets the host to *alive*. The router
fails over at suspect already — zero-downtime failover cannot wait for
certainty — so the distinction is observability (how sure were we) and
policy (a suspect host's journal is still the preferred rejoin source).

Retry pacing uses capped exponential backoff with deterministic seeded
jitter, so two routers never synchronize their retry storms yet every
test run sleeps the same schedule.

:class:`FaultInjector` is the matching test hook for
``LocalBackend``: scripted per-host faults (hangs and crashes) raised
at the send or reply phase, letting chaos tests exercise the exact
"applied but the reply was lost" windows a real network produces.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, List, Optional

from repro.errors import ClusterError, ShardTimeout

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class HealthMonitor:
    """Per-host failure accounting with exponential-backoff pacing."""

    def __init__(
        self,
        suspect_after: int = 1,
        dead_after: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if suspect_after < 1 or dead_after < suspect_after:
            raise ValueError(
                "need 1 <= suspect_after <= dead_after for a monotone "
                "state machine"
            )
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._failures: Dict[int, int] = {}
        self._states: Dict[int, str] = {}

    def state(self, host: int) -> str:
        return self._states.get(host, ALIVE)

    def failures(self, host: int) -> int:
        return self._failures.get(host, 0)

    def success(self, host: int) -> None:
        """A completed request: the host is alive, counters reset.

        Alive is the default state, so the entry is dropped — the
        snapshot reports only hosts with something to report.
        """
        self._failures.pop(host, None)
        self._states.pop(host, None)

    def failure(self, host: int) -> str:
        """One missed ack/deadline; returns the host's new state."""
        count = self._failures.get(host, 0) + 1
        self._failures[host] = count
        if count >= self.dead_after:
            state = DEAD
        elif count >= self.suspect_after:
            state = SUSPECT
        else:
            state = ALIVE
        if state == ALIVE:
            self._states.pop(host, None)
        else:
            self._states[host] = state
        return state

    def mark_dead(self, host: int) -> None:
        """An authoritative death (explicit kill), no inference needed."""
        self._failures[host] = max(
            self._failures.get(host, 0), self.dead_after
        )
        self._states[host] = DEAD

    def forget(self, host: int) -> None:
        self._failures.pop(host, None)
        self._states.pop(host, None)

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based): capped exponential
        plus seeded jitter."""
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
        )
        return base * (1.0 + self.jitter * self._rng.random())

    def snapshot(self) -> Dict[int, str]:
        return dict(self._states)

    def __repr__(self) -> str:
        states = ", ".join(
            f"{host}={state}" for host, state in sorted(self._states.items())
        )
        return f"HealthMonitor({states})"


class _Fault:
    __slots__ = ("host", "phase", "times", "exc", "matcher")

    def __init__(
        self,
        host: int,
        phase: str,
        times: int,
        exc: Callable[[], Exception],
        matcher: Optional[Callable] = None,
    ):
        self.host = host
        self.phase = phase
        self.times = times
        self.exc = exc
        self.matcher = matcher


class FaultInjector:
    """Scripted faults for ``LocalBackend.fault_hook``.

    ``hang`` raises :class:`~repro.errors.ShardTimeout` (deadline
    exceeded); ``crash`` raises :class:`~repro.errors.ClusterError`
    (connection torn down). ``phase="send"`` faults before the shard
    sees the frame (nothing applied); ``phase="reply"`` faults after
    the shard handled it (applied, reply lost) — the at-least-once
    window the seq-dedup reply cache exists for. An optional ``match``
    predicate narrows the fault to specific frames.

    Matching and budget decrement hold a lock: the overlapped
    ``LocalBackend`` calls the hook from pool threads, and an unlocked
    ``times -= 1`` race could fire a one-shot fault twice.
    """

    def __init__(self) -> None:
        self._faults: List[_Fault] = []
        self._lock = threading.Lock()
        #: Faults actually raised, as ``(host, phase)`` tuples.
        self.fired: List[tuple] = []

    def hang(
        self,
        host: int,
        phase: str = "send",
        times: int = 1,
        match: Optional[Callable] = None,
    ) -> "FaultInjector":
        self._faults.append(
            _Fault(
                host,
                phase,
                times,
                lambda: ShardTimeout(f"shard {host} timed out (injected)"),
                match,
            )
        )
        return self

    def crash(
        self,
        host: int,
        phase: str = "send",
        times: int = 1,
        match: Optional[Callable] = None,
    ) -> "FaultInjector":
        self._faults.append(
            _Fault(
                host,
                phase,
                times,
                lambda: ClusterError(f"shard {host} connection lost (injected)"),
                match,
            )
        )
        return self

    def __call__(self, shard_id: int, message, phase: str) -> None:
        with self._lock:
            for fault in self._faults:
                if fault.times <= 0:
                    continue
                if fault.host != shard_id or fault.phase != phase:
                    continue
                if fault.matcher is not None and not fault.matcher(message):
                    continue
                fault.times -= 1
                self.fired.append((shard_id, phase))
                raise fault.exc()
