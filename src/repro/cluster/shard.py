"""One cluster shard: a CQ server driven by router scatter messages.

A shard is an ordinary :class:`~repro.net.server.CQServer` (fan-out
mode, so it owns a predicate index and shared-materialization groups
for the ``sql_key`` subscriptions routed to it) whose *only* writer is
the cluster router. Each :class:`~repro.net.messages.ScatterMessage`
carries one refresh cycle's relevant delta slices; the shard folds them
into its tables (journaling WAL-first, exactly like a local commit),
refreshes, and returns the affected groups' result deltas in a
:class:`~repro.net.messages.GatherReplyMessage` for the router's
cross-shard merge.

Delta application is an *upsert*: a modify of an unknown tid becomes an
insert, a delete of an unknown tid is a no-op, an insert of a known tid
becomes a modify. That makes application idempotent, so a recovery
replay window may overlap what the shard already holds (the router's
horizon tracking is conservative) without corrupting anything — and it
makes relevance-filtered scatter sound: a row the router never sent
(because it failed every footprint's alias-local predicates, Section
5.2) can arrive later inside a wider baseline or replay window and
simply lands as an insert then.
"""

from __future__ import annotations

import glob
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import NetworkError
from repro.metrics import Metrics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.update_log import UpdateKind, UpdateRecord
from repro.storage.wal import shard_checkpoint_path, shard_wal_path
from repro.delta.differential import DeltaRelation
from repro.net.messages import (
    DeltaMessage,
    GatherReplyMessage,
    Message,
    RegisterMessage,
    ScatterMessage,
    ShardDrainMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
    ShardPromoteMessage,
)
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork

#: txn_id stamped on records a shard applied from a scatter (as -1 marks
#: single-op convenience transactions).
SCATTER_TXN = -2

#: The client id every shard-side subscription registers under.
ROUTER_CLIENT = "router"


#: Plain-python spellings accepted for attribute types in declarations.
_PY_TYPES = {
    int: AttributeType.INT,
    float: AttributeType.FLOAT,
    str: AttributeType.STR,
    bool: AttributeType.BOOL,
}


def _attribute_type(type_: Union[AttributeType, type]) -> AttributeType:
    if isinstance(type_, AttributeType):
        return type_
    try:
        return _PY_TYPES[type_]
    except (KeyError, TypeError):
        raise ValueError(f"unsupported attribute type {type_!r}") from None


class TableDecl:
    """One table's cluster-wide declaration.

    The same declaration drives the router's authoritative catalog and
    every shard's local catalog, so schemas (and maintained indexes)
    agree by construction. ``partition_key`` names the column whose
    hash places each row on exactly one shard; None replicates the
    table's deltas to every shard that needs them.
    """

    __slots__ = ("name", "schema", "partition_key", "indexes")

    def __init__(
        self,
        name: str,
        schema: Union[Schema, Sequence[Tuple[str, AttributeType]]],
        partition_key: Optional[str] = None,
        indexes: Sequence[Sequence[str]] = (),
    ):
        self.name = name
        if not isinstance(schema, Schema):
            schema = Schema.of(
                *(
                    (column, _attribute_type(type_))
                    for column, type_ in schema
                )
            )
        self.schema = schema
        if partition_key is not None and partition_key not in self.schema:
            raise ValueError(
                f"partition key {partition_key!r} is not a column of "
                f"table {name!r}"
            )
        self.partition_key = partition_key
        self.indexes = tuple(tuple(columns) for columns in indexes)

    @property
    def key_position(self) -> Optional[int]:
        if self.partition_key is None:
            return None
        return self.schema.position(self.partition_key)

    def __repr__(self) -> str:
        part = (
            f", partition_key={self.partition_key!r}"
            if self.partition_key
            else ""
        )
        return f"TableDecl({self.name!r}{part})"


class _Collector:
    """The in-process 'router' endpoint a shard's server delivers to.

    Plain list capture: refresh deltas accumulate here and are drained
    into the cycle's GatherReply. ``defer_zone_advance`` stays False —
    a captured delivery *is* the acknowledgment (the reply either
    reaches the router or the shard is declared dead and replays), so
    shard GC zones advance with every refresh.
    """

    name = ROUTER_CLIENT
    defer_zone_advance = False

    def __init__(self) -> None:
        self.messages: List[Message] = []
        self.server = None  # set by CQServer.attach

    def receive(self, message: Message) -> None:
        self.messages.append(message)

    def drain(self) -> List[Message]:
        out, self.messages = self.messages, []
        return out


class ClusterShard:
    """Hosts one shard's slice of the cluster: tables + subscriptions."""

    def __init__(
        self,
        shard_id: int,
        decls: Sequence[TableDecl],
        metrics: Optional[Metrics] = None,
        wal_root: Optional[str] = None,
        columnar: bool = False,
        server: Optional[CQServer] = None,
        group: Optional[int] = None,
        wal_path: Optional[str] = None,
    ):
        self.shard_id = shard_id
        self.decls = list(decls)
        self.wal_root = wal_root
        #: The placement group this store serves. A host's own group is
        #: its shard id; replica stores carry another group's slice.
        self.group = shard_id if group is None else group
        self.role = "primary" if self.group == shard_id else "replica"
        # At-least-once retry support: a duplicate of a recent frame
        # (same seq — the reply was lost after the shard applied it)
        # returns the cached reply instead of re-handling, so a
        # router-side timeout + retry can never double-consume a
        # refresh window or lose the result delta it produced. A small
        # LRU rather than a single slot: under overlapped dispatch a
        # late retry of frame N can land *after* frame N+1 already
        # replaced a one-entry cache, which would re-handle N.
        self._reply_cache: "OrderedDict[int, GatherReplyMessage]" = (
            OrderedDict()
        )
        self._reply_cache_cap = 8
        if server is None:
            self.metrics = metrics if metrics is not None else Metrics()
            if wal_path is None and wal_root is not None:
                wal_path = shard_wal_path(wal_root, shard_id)
            db = Database(durability=wal_path)
            server = CQServer(
                db,
                SimulatedNetwork(latency_seconds=0.0),
                name=self._server_name(shard_id, self.group),
                metrics=self.metrics,
                fanout=True,
                columnar=columnar,
            )
        else:
            self.metrics = server.metrics
        self.server = server
        self.db = server.db
        for decl in self.decls:
            if decl.name not in self.db:
                self.db.create_table(
                    decl.name, decl.schema, indexes=decl.indexes
                )
        self._collector = _Collector()
        server.attach(self._collector)

    @staticmethod
    def _server_name(shard_id: int, group: int) -> str:
        if group == shard_id:
            return f"shard-{shard_id}"
        return f"shard-{shard_id}:group-{group}"

    @classmethod
    def recover(
        cls,
        shard_id: int,
        decls: Sequence[TableDecl],
        wal_root: str,
        metrics: Optional[Metrics] = None,
        columnar: bool = False,
        group: Optional[int] = None,
        wal_path: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
    ) -> "ClusterShard":
        """Rebuild a killed shard store from its own WAL (+ checkpoint).

        The recovered server re-creates journaled subscriptions and
        re-seeds their shared groups; :meth:`hello` then reports the
        applied horizon so the router can choose delta replay or
        baseline fallback. Explicit ``wal_path``/``checkpoint_path``
        address a replica store's journal (which lives under the host's
        directory, not at the default shard path).
        """
        from repro.core.persistence import recover_server

        metrics = metrics if metrics is not None else Metrics()
        if wal_path is None:
            wal_path = shard_wal_path(wal_root, shard_id)
        if checkpoint_path is None:
            checkpoint_path = shard_checkpoint_path(wal_root, shard_id)
        server = recover_server(
            wal_path,
            checkpoint_path=checkpoint_path,
            network=SimulatedNetwork(latency_seconds=0.0),
            metrics=metrics,
            fanout=True,
            columnar=columnar,
        )
        server.name = cls._server_name(
            shard_id, shard_id if group is None else group
        )
        return cls(
            shard_id, decls, wal_root=wal_root, server=server, group=group
        )

    # -- protocol ----------------------------------------------------------

    def hello(self) -> ShardHelloMessage:
        """The shard's identity frame: applied horizon + held state."""
        return ShardHelloMessage(
            self.shard_id,
            self.db.now(),
            tables=sorted(table.name for table in self.db.tables()),
            subscriptions=sorted(
                s.cq_name for s in self.server.subscriptions()
            ),
            groups={
                self.group: {
                    "horizon": self.db.now(),
                    "subs": self.sql_keys(),
                }
            },
        )

    def handle(self, message: Message) -> GatherReplyMessage:
        """Process one router frame; returns the cycle's gather reply.

        Duplicate-seq frames (a retry after the reply was lost) return
        the cached reply without re-handling — at-least-once delivery
        stays exactly-once application.
        """
        seq = getattr(message, "seq", None)
        if seq is not None and seq in self._reply_cache:
            self._reply_cache.move_to_end(seq)
            return self._reply_cache[seq]
        if isinstance(message, ScatterMessage):
            reply = self._handle_scatter(message)
        elif isinstance(message, ShardHeartbeatMessage):
            reply = self._handle_heartbeat(message)
        elif isinstance(message, ShardPromoteMessage):
            reply = self._handle_promote(message)
        else:
            raise NetworkError(
                f"shard {self.shard_id} cannot handle "
                f"{type(message).__name__}"
            )
        if seq is not None:
            self._reply_cache[seq] = reply
            while len(self._reply_cache) > self._reply_cache_cap:
                self._reply_cache.popitem(last=False)
        return reply

    def _handle_promote(
        self, message: ShardPromoteMessage
    ) -> GatherReplyMessage:
        """Become the group primary: register the owned ``sql_key`` CQs
        over the tables this store already holds (kept in lockstep by
        every cycle's scattered slices).

        ``message.ts`` is the group's last *served* timestamp: the
        registration-era state then equals the router's retained
        results, and the next scatter's window ``(ts, now]`` produces
        the failed primary's delta bit-identically. The reply's
        ``horizon`` reports the store's caught-up-through timestamp
        *before* any clock advance, so the router can detect a lagging
        replica and fall back to an exact reconcile.
        """
        horizon = self.db.now()
        self.db.clock.advance_to(message.ts)
        held = {s.cq_name for s in self.server.subscriptions()}
        for spec in message.subscribe:
            if spec["cq"] in held:
                continue
            self.server.handle_register(
                ROUTER_CLIENT,
                RegisterMessage(
                    spec["cq"], spec["sql"], Protocol.DRA_DELTA.value
                ),
            )
        # Registration initials are local evaluations the router already
        # retains authoritatively; drop them.
        self._collector.drain()
        self.role = "primary"
        return GatherReplyMessage(
            self.shard_id,
            message.seq,
            message.ts,
            horizon,
            counters=self.metrics.snapshot(),
            group=self.group,
        )

    def _handle_heartbeat(self, message: ShardHeartbeatMessage) -> GatherReplyMessage:
        """An empty-scatter cycle: advance every window, evaluate nothing.

        The refresh still runs — with no new log entries the predicate
        index routes no group, so each group's window (and its members'
        GC zones) moves to ``ts`` without a single term evaluation.
        """
        self.db.clock.advance_to(message.ts)
        self.server.refresh_all()
        self._collector.drain()
        if message.collect:
            # ``include_unwatched`` keeps replica stores prunable: they
            # carry no subscriptions, so without it their logs would
            # grow forever. Safe on primaries too — a shard-side log
            # only ever feeds local CQ windows, never recovery (that
            # replays from the router's logs).
            self.server.collect_garbage(include_unwatched=True)
        return self._reply(message.seq, message.ts, [])

    def _handle_scatter(self, message: ScatterMessage) -> GatherReplyMessage:
        self.db.clock.advance_to(message.ts)
        for sql_key in message.unsubscribe:
            self.server.deregister(ROUTER_CLIENT, sql_key)
        # Deltas before baselines: delta entries carry their original
        # commit timestamps (≤ ts), baseline records are stamped at the
        # log tail — applying in this order keeps each log monotone.
        for table_name in sorted(message.deltas):
            self._apply_delta(table_name, message.deltas[table_name])
        for table_name in sorted(message.baselines):
            self._apply_baseline(table_name, message.baselines[table_name])
        for spec in message.subscribe:
            self.server.handle_register(
                ROUTER_CLIENT,
                RegisterMessage(
                    spec["cq"], spec["sql"], Protocol.DRA_DELTA.value
                ),
            )
        # Initial results are delivered at registration; the router
        # computes its own authoritative initials, so drop them here.
        self._collector.drain()
        self.server.refresh_all()
        entries = [
            (m.cq_name, m.delta, m.ts)
            for m in self._collector.drain()
            if isinstance(m, DeltaMessage)
        ]
        if message.collect:
            self.server.collect_garbage(include_unwatched=True)
        return self._reply(message.seq, message.ts, entries)

    def _reply(
        self,
        seq: int,
        ts: int,
        entries: List[Tuple[str, DeltaRelation, int]],
    ) -> GatherReplyMessage:
        return GatherReplyMessage(
            self.shard_id,
            seq,
            ts,
            self.db.now(),
            entries=entries,
            counters=self.metrics.snapshot(),
            group=self.group,
        )

    # -- state application --------------------------------------------------

    def _commit(self, table: Table, records: List[UpdateRecord]) -> None:
        """Apply scatter-derived records with commit durability: the
        journal frame (and its barrier) land before the in-memory
        apply, the same ordering :class:`Transaction.commit` uses, so a
        crash between the two replays the records instead of losing
        them. No observer notification — a shard's CQ refresh reads
        the update log directly."""
        if not records:
            return
        if table.wal is not None:
            table.wal.log_commit(table.name, records)
            table.wal.commit_barrier()
        table.apply_committed(records)

    def _apply_delta(self, table_name: str, delta: DeltaRelation) -> None:
        """Upsert one table's scattered delta slice (see module doc)."""
        table = self.db.table(table_name)
        floor = table.log.latest_ts()
        records: List[UpdateRecord] = []
        for entry in sorted(delta, key=lambda e: e.ts):
            # A replayed (over-wide) window may reach below the log
            # tail; clamping keeps the log monotone, and the relevance
            # theorem keeps the late-clamped entry harmless (it was
            # irrelevant to every group when it was skipped).
            ts = max(entry.ts, floor)
            floor = ts
            known = entry.tid in table.current
            if entry.new is None:
                if not known:
                    continue
                records.append(
                    UpdateRecord(
                        UpdateKind.DELETE,
                        entry.tid,
                        table.current.get(entry.tid),
                        None,
                        ts,
                        SCATTER_TXN,
                    )
                )
            elif known:
                old = table.current.get(entry.tid)
                if old == entry.new:
                    continue
                records.append(
                    UpdateRecord(
                        UpdateKind.MODIFY,
                        entry.tid,
                        old,
                        entry.new,
                        ts,
                        SCATTER_TXN,
                    )
                )
            else:
                records.append(
                    UpdateRecord(
                        UpdateKind.INSERT,
                        entry.tid,
                        None,
                        entry.new,
                        ts,
                        SCATTER_TXN,
                    )
                )
        self._commit(table, records)

    def _apply_baseline(self, table_name: str, target: Relation) -> None:
        """Converge one table onto an authoritative relation.

        Used when the router cannot (or chooses not to) express the gap
        differentially: seeding a table on a newly subscribed shard,
        re-slicing on ring changes, and the replay-fallback recovery
        path. The diff is computed locally so re-seeding an already
        current table journals nothing.
        """
        table = self.db.table(table_name)
        ts = max(self.db.now(), table.log.latest_ts())
        records: List[UpdateRecord] = []
        for row in target:
            if row.tid in table.current:
                old = table.current.get(row.tid)
                if old != row.values:
                    records.append(
                        UpdateRecord(
                            UpdateKind.MODIFY,
                            row.tid,
                            old,
                            row.values,
                            ts,
                            SCATTER_TXN,
                        )
                    )
            else:
                records.append(
                    UpdateRecord(
                        UpdateKind.INSERT,
                        row.tid,
                        None,
                        row.values,
                        ts,
                        SCATTER_TXN,
                    )
                )
        for row in list(table.current):
            if row.tid not in target:
                records.append(
                    UpdateRecord(
                        UpdateKind.DELETE,
                        row.tid,
                        row.values,
                        None,
                        ts,
                        SCATTER_TXN,
                    )
                )
        self._commit(table, records)

    # -- introspection -----------------------------------------------------

    def sql_keys(self) -> List[str]:
        """The ``sql_key`` subscriptions this shard currently owns."""
        return sorted(s.cq_name for s in self.server.subscriptions())

    def close(self) -> None:
        if self.db.wal is not None and not self.db.wal.closed:
            self.db.wal.close()

    def __repr__(self) -> str:
        return (
            f"ClusterShard({self.shard_id}, "
            f"{len(self.server.subscriptions())} subscriptions, "
            f"now={self.db.now()})"
        )


class ShardHost:
    """One cluster host: its own primary store plus replica stores.

    Replication places every group on a primary and (with
    ``replicas>0``) one or more replicas on *distinct* hosts, so a host
    carries several :class:`ClusterShard` stores keyed by placement
    group: its own group (``group == shard_id``, the pre-replication
    store — journal path unchanged for back-compat) and a lazily
    created store per replica group it hosts. Frames address stores by
    their ``group`` field; a frame without one targets the host's own
    group, so the pre-replication wire format keeps working.

    Replica stores hold tables only — every cycle's scattered slices
    are applied WAL-first exactly as on the primary, but no
    subscriptions are registered until a
    :class:`~repro.net.messages.ShardPromoteMessage` arrives. That
    keeps steady-state replica cost at delta application (no term
    evaluation) and keeps the store's update logs fully prunable, while
    promotion needs no data movement: the slice is already hot.

    Each replica store journals WAL-first under
    ``<wal_root>/shard-<host>/replicas/shard-<group>/``; recovery
    globs that layout to rebuild every store the host held.
    """

    def __init__(
        self,
        shard_id: int,
        decls: Sequence[TableDecl],
        wal_root: Optional[str] = None,
        columnar: bool = False,
    ):
        self.shard_id = shard_id
        self.decls = list(decls)
        self.wal_root = wal_root
        self.columnar = columnar
        self.stores: Dict[int, ClusterShard] = {}
        self.ensure_store(shard_id)

    def _replica_root(self) -> Optional[str]:
        if self.wal_root is None:
            return None
        return os.path.join(
            self.wal_root, f"shard-{self.shard_id}", "replicas"
        )

    def _paths(self, group: int) -> Tuple[Optional[str], Optional[str]]:
        if self.wal_root is None:
            return None, None
        if group == self.shard_id:
            return (
                shard_wal_path(self.wal_root, group),
                shard_checkpoint_path(self.wal_root, group),
            )
        root = self._replica_root()
        return (shard_wal_path(root, group), shard_checkpoint_path(root, group))

    def ensure_store(self, group: int) -> ClusterShard:
        """The store serving ``group``, created on first use — a new
        replica assignment starts with the seeding frame itself."""
        store = self.stores.get(group)
        if store is None:
            wal_path, __ = self._paths(group)
            store = ClusterShard(
                self.shard_id,
                self.decls,
                wal_root=self.wal_root,
                columnar=self.columnar,
                group=group,
                wal_path=wal_path,
            )
            self.stores[group] = store
        return store

    @classmethod
    def recover(
        cls,
        shard_id: int,
        decls: Sequence[TableDecl],
        wal_root: str,
        columnar: bool = False,
    ) -> "ShardHost":
        """Rebuild every store the host journaled (own + replicas)."""
        host = cls.__new__(cls)
        host.shard_id = shard_id
        host.decls = list(decls)
        host.wal_root = wal_root
        host.columnar = columnar
        host.stores = {}
        host.stores[shard_id] = ClusterShard.recover(
            shard_id, decls, wal_root, columnar=columnar
        )
        replica_root = host._replica_root()
        pattern = os.path.join(replica_root, "shard-*", "wal.log")
        for wal_path in sorted(glob.glob(pattern)):
            directory = os.path.basename(os.path.dirname(wal_path))
            try:
                group = int(directory.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            host.stores[group] = ClusterShard.recover(
                shard_id,
                decls,
                wal_root,
                columnar=columnar,
                group=group,
                wal_path=wal_path,
                checkpoint_path=os.path.join(
                    os.path.dirname(wal_path), "checkpoint.json"
                ),
            )
        return host

    # -- protocol ----------------------------------------------------------

    def hello(self) -> ShardHelloMessage:
        """Identity frame covering every store the host holds. The
        top-level horizon is the *minimum* store horizon (conservative:
        router logs must reach the furthest-behind store for a full
        delta-replay rejoin); per-group detail rides in ``groups``."""
        own = self.stores.get(self.shard_id)
        groups = {
            group: {"horizon": store.db.now(), "subs": store.sql_keys()}
            for group, store in sorted(self.stores.items())
        }
        horizon = min(
            (info["horizon"] for info in groups.values()), default=0
        )
        tables: Set[str] = set()
        for store in self.stores.values():
            tables.update(t.name for t in store.db.tables())
        return ShardHelloMessage(
            self.shard_id,
            horizon,
            tables=sorted(tables),
            subscriptions=own.sql_keys() if own is not None else [],
            groups=groups,
        )

    def handle(self, message: Message) -> GatherReplyMessage:
        """Route one frame to the store its ``group`` addresses."""
        if isinstance(message, ShardDrainMessage):
            return self._handle_drain(message)
        group = getattr(message, "group", None)
        if group is None:
            group = self.shard_id
        return self.ensure_store(group).handle(message)

    def _handle_drain(
        self, message: ShardDrainMessage
    ) -> GatherReplyMessage:
        groups = (
            list(self.stores)
            if message.group is None
            else [message.group]
        )
        for group in groups:
            store = self.stores.pop(group, None)
            if store is not None:
                store.close()
        return GatherReplyMessage(
            self.shard_id, message.seq, message.ts, 0, group=message.group
        )

    def close(self) -> None:
        for store in self.stores.values():
            store.close()

    def __repr__(self) -> str:
        return (
            f"ShardHost({self.shard_id}, "
            f"groups={sorted(self.stores)})"
        )
