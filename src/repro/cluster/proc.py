"""Shards as separate OS processes (crash-realistic backend).

Functionally identical to :class:`~repro.cluster.router.LocalBackend`,
but each shard host lives in its own ``multiprocessing`` process and
talks to the router over a pipe carrying codec-encoded frames — the
same wire representation the simulated network uses, so every scatter
and gather reply round-trips through serialization for real.

``send`` bounds the reply wait with ``conn.poll(timeout)``: a wedged
(not dead) worker raises :class:`~repro.errors.ShardTimeout` instead of
hanging the router forever, and replies are paired to requests by
``seq`` — stale replies a previous timed-out request left in (or late
into) the pipe are discarded — so combined with the shard-side
seq-dedup reply cache, timeout + retry is safe at-least-once
delivery. ``kill`` terminates the worker without any
shutdown handshake — the honest version of the crash
:meth:`ClusterRouter.kill_shard` simulates — escalating to
``Process.kill`` when the process ignores SIGTERM; ``stop`` is the
planned counterpart (drain sentinel, clean join) used by
``remove_shard``. Recovery replays the host's journals exactly as the
in-process backend does. On a single-core container this backend buys
crash realism, not parallel speed; the benchmark's scaling argument
rests on the deterministic cost model, not on this backend.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ClusterError, ShardTimeout
from repro.net.codec import decode_payload, encode_payload
from repro.net.messages import GatherReplyMessage, Message, ShardHelloMessage
from repro.cluster.shard import ShardHost, TableDecl

#: Pipe sentinel asking the worker to exit cleanly (planned removal and
#: tests' teardown; a *crash* is ``Process.terminate`` and never sends
#: this).
_SHUTDOWN = b"\0shutdown"


def _shard_worker(
    conn,
    shard_id: int,
    decls: Sequence[TableDecl],
    wal_root: Optional[str],
    columnar: bool,
    recovered: bool,
    delay: float = 0.0,
) -> None:
    """Worker main loop: host one shard host, answer codec frames.

    ``delay`` sleeps before handling each frame — the injected slow
    shard the wall-clock benchmarks and the bounded-by-slowest tests
    use to make evaluation time visible without real query load.
    """
    if recovered:
        host = ShardHost.recover(
            shard_id, decls, wal_root, columnar=columnar
        )
    else:
        host = ShardHost(
            shard_id, decls, wal_root=wal_root, columnar=columnar
        )
    conn.send_bytes(encode_payload(host.hello()))
    try:
        while True:
            payload = conn.recv_bytes()
            if payload == _SHUTDOWN:
                break
            if delay > 0.0:
                time.sleep(delay)
            reply = host.handle(decode_payload(payload))
            conn.send_bytes(encode_payload(reply))
    except (EOFError, OSError):
        pass  # router side went away; nothing to clean up beyond the WAL
    finally:
        host.close()


class ProcessBackend:
    """One ``multiprocessing`` process per shard host, framed over pipes."""

    def __init__(
        self,
        wal_root: Optional[str] = None,
        columnar: bool = False,
        timeout: Optional[float] = 30.0,
        slow: Optional[Dict[int, float]] = None,
    ):
        self.wal_root = wal_root
        self.columnar = columnar
        #: Default reply deadline in seconds (None waits forever — the
        #: pre-deadline behavior, kept reachable but not default).
        self.timeout = timeout
        #: Per-shard injected handling delay in seconds (wall-clock
        #: benchmarks and bounded-by-slowest tests).
        self.slow = dict(slow or {})
        #: Replies discarded because they could not be paired with the
        #: in-flight request's seq (late answers of timed-out attempts).
        self.stale_replies = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._conns: Dict[int, object] = {}

    def _launch(
        self, shard_id: int, decls: Sequence[TableDecl], recovered: bool
    ) -> ShardHelloMessage:
        if shard_id in self._procs:
            raise ClusterError(f"shard {shard_id} already running")
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child,
                shard_id,
                list(decls),
                self.wal_root,
                self.columnar,
                recovered,
                self.slow.get(shard_id, 0.0),
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        hello = decode_payload(parent.recv_bytes())
        if not isinstance(hello, ShardHelloMessage):
            raise ClusterError(
                f"shard {shard_id} sent {type(hello).__name__} instead of hello"
            )
        self._procs[shard_id] = proc
        self._conns[shard_id] = parent
        return hello

    def spawn(self, shard_id: int, decls: Sequence[TableDecl]) -> ShardHelloMessage:
        return self._launch(shard_id, decls, recovered=False)

    def send(
        self,
        shard_id: int,
        message: Message,
        timeout: Optional[float] = None,
    ) -> GatherReplyMessage:
        conn = self._conns.get(shard_id)
        if conn is None:
            raise ClusterError(f"shard {shard_id} is not running")
        seq = getattr(message, "seq", None)
        if not isinstance(seq, int):
            # Pairing is by seq, and ``None == None`` would "match" a
            # stale seqless reply to a new seqless request — so a
            # request without an explicit integer seq is refused
            # outright rather than paired by luck.
            raise ClusterError(
                f"message to shard {shard_id} needs an integer seq for "
                f"reply pairing; got {seq!r} on {type(message).__name__}"
            )
        deadline = self.timeout if timeout is None else timeout
        try:
            # A previous request may have timed out after the worker
            # applied the frame: its late reply is still in the pipe and
            # would desynchronize request/reply pairing. Drain what's
            # already buffered, then match the reply by seq — a wedged
            # worker can surface its stale reply *after* this drain, so
            # pairing can't rely on the drain alone. The shard-side seq
            # cache keeps the retry exactly-once either way.
            while conn.poll(0):
                conn.recv_bytes()
                self.stale_replies += 1
            conn.send_bytes(encode_payload(message))
            expires = (
                None if deadline is None else time.monotonic() + deadline
            )
            while True:
                if expires is not None:
                    remaining = expires - time.monotonic()
                    if remaining <= 0 or not conn.poll(remaining):
                        raise ShardTimeout(
                            f"shard {shard_id} timed out after {deadline}s"
                        )
                reply = decode_payload(conn.recv_bytes())
                if getattr(reply, "seq", None) == seq:
                    return reply
                self.stale_replies += 1
        except (EOFError, OSError, BrokenPipeError):
            raise ClusterError(
                f"shard {shard_id} died mid-request"
            ) from None

    # -- overlapped dispatch (CycleEngine transport trio) -------------------

    def post(self, shard_id: int, message: Message) -> None:
        """Non-blocking dispatch: frame goes out, reply is collected
        later by the engine's multiplex loop."""
        conn = self._conns.get(shard_id)
        if conn is None:
            raise ClusterError(f"shard {shard_id} is not running")
        try:
            conn.send_bytes(encode_payload(message))
        except (OSError, BrokenPipeError):
            raise ClusterError(
                f"shard {shard_id} died mid-request"
            ) from None

    def collect(self, timeout: float) -> List[tuple]:
        """Replies ready across *all* shard pipes within ``timeout``.

        ``multiprocessing.connection.wait`` — a ``selectors`` multiplex
        over the pipes' file descriptors — blocks until any pipe is
        readable (or torn), then every buffered frame is drained
        without further blocking. Returns ``(shard_id, seq, payload)``
        tuples where payload is a decoded message or a
        :class:`~repro.errors.ClusterError` for a torn pipe.
        """
        conns = {conn: sid for sid, conn in self._conns.items()}
        if not conns:
            if timeout > 0:
                time.sleep(timeout)
            return []
        ready = multiprocessing.connection.wait(
            list(conns), timeout=max(0.0, timeout)
        )
        out: List[tuple] = []
        for conn in ready:
            sid = conns[conn]
            try:
                while conn.poll(0):
                    reply = decode_payload(conn.recv_bytes())
                    out.append((sid, getattr(reply, "seq", None), reply))
            except (EOFError, OSError, BrokenPipeError):
                # A torn pipe stays permanently "ready": reap it here
                # or every later wait returns immediately and the
                # gather loop busy-spins until the cycle ends.
                self._reap(sid)
                out.append(
                    (
                        sid,
                        None,
                        ClusterError(f"shard {sid} died mid-request"),
                    )
                )
        return out

    def _reap(self, shard_id: int) -> None:
        """Forget a connection whose worker died underneath us."""
        conn = self._conns.pop(shard_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        proc = self._procs.pop(shard_id, None)
        if proc is not None:
            proc.join(timeout=1)

    def host_alive(self, shard_id: int) -> bool:
        """Process-level liveness (the fail-fast signal): a torn pipe
        whose worker is gone cannot heal within any backoff schedule."""
        proc = self._procs.get(shard_id)
        return proc is not None and proc.is_alive()

    def kill(self, shard_id: int) -> None:
        proc = self._procs.pop(shard_id, None)
        if proc is None:
            raise ClusterError(f"shard {shard_id} is not running")
        conn = self._conns.pop(shard_id)
        proc.terminate()
        proc.join(timeout=10)
        if proc.is_alive():
            # SIGTERM was ignored (wedged worker, masked signal):
            # escalate to SIGKILL rather than leak the process.
            proc.kill()
            proc.join(timeout=10)
        conn.close()

    def stop(self, shard_id: int) -> None:
        """Planned departure: drain sentinel, clean join, escalate only
        if the worker ignores it."""
        proc = self._procs.pop(shard_id, None)
        if proc is None:
            raise ClusterError(f"shard {shard_id} is not running")
        conn = self._conns.pop(shard_id)
        try:
            conn.send_bytes(_SHUTDOWN)
        except (OSError, BrokenPipeError):
            pass
        proc.join(timeout=10)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=10)
        conn.close()

    def recover(
        self, shard_id: int, decls: Sequence[TableDecl]
    ) -> ShardHelloMessage:
        if self.wal_root is None:
            raise ClusterError(
                "recovery needs a wal_root; this backend lost everything"
            )
        return self._launch(shard_id, decls, recovered=True)

    def alive(self) -> List[int]:
        return sorted(self._procs)

    def close(self) -> None:
        for shard_id in list(self._procs):
            self.stop(shard_id)
