"""Shards as separate OS processes (crash-realistic backend).

Functionally identical to :class:`~repro.cluster.router.LocalBackend`,
but each shard lives in its own ``multiprocessing`` process and talks
to the router over a pipe carrying codec-encoded frames — the same
wire representation the simulated network uses, so every scatter and
gather reply round-trips through serialization for real.

``kill`` terminates the worker process without any shutdown handshake —
the honest version of the crash :meth:`ClusterRouter.kill_shard`
simulates — and recovery replays the shard's journal exactly as the
in-process backend does. On a single-core container this backend buys
crash realism, not parallel speed; the benchmark's scaling argument
rests on the deterministic cost model, not on this backend.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence

from repro.errors import ClusterError
from repro.net.codec import decode_payload, encode_payload
from repro.net.messages import GatherReplyMessage, Message, ShardHelloMessage
from repro.cluster.shard import ClusterShard, TableDecl

#: Pipe sentinel asking the worker to exit cleanly (tests' teardown; a
#: *crash* is ``Process.terminate`` and never sends this).
_SHUTDOWN = b"\0shutdown"


def _shard_worker(
    conn,
    shard_id: int,
    decls: Sequence[TableDecl],
    wal_root: Optional[str],
    columnar: bool,
    recovered: bool,
) -> None:
    """Worker main loop: host one shard, answer codec frames."""
    if recovered:
        shard = ClusterShard.recover(
            shard_id, decls, wal_root, columnar=columnar
        )
    else:
        shard = ClusterShard(
            shard_id, decls, wal_root=wal_root, columnar=columnar
        )
    conn.send_bytes(encode_payload(shard.hello()))
    try:
        while True:
            payload = conn.recv_bytes()
            if payload == _SHUTDOWN:
                break
            reply = shard.handle(decode_payload(payload))
            conn.send_bytes(encode_payload(reply))
    except (EOFError, OSError):
        pass  # router side went away; nothing to clean up beyond the WAL
    finally:
        shard.close()


class ProcessBackend:
    """One ``multiprocessing`` process per shard, framed over pipes."""

    def __init__(self, wal_root: Optional[str] = None, columnar: bool = False):
        self.wal_root = wal_root
        self.columnar = columnar
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._conns: Dict[int, object] = {}

    def _launch(
        self, shard_id: int, decls: Sequence[TableDecl], recovered: bool
    ) -> ShardHelloMessage:
        if shard_id in self._procs:
            raise ClusterError(f"shard {shard_id} already running")
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child,
                shard_id,
                list(decls),
                self.wal_root,
                self.columnar,
                recovered,
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        hello = decode_payload(parent.recv_bytes())
        if not isinstance(hello, ShardHelloMessage):
            raise ClusterError(
                f"shard {shard_id} sent {type(hello).__name__} instead of hello"
            )
        self._procs[shard_id] = proc
        self._conns[shard_id] = parent
        return hello

    def spawn(self, shard_id: int, decls: Sequence[TableDecl]) -> ShardHelloMessage:
        return self._launch(shard_id, decls, recovered=False)

    def send(self, shard_id: int, message: Message) -> GatherReplyMessage:
        conn = self._conns.get(shard_id)
        if conn is None:
            raise ClusterError(f"shard {shard_id} is not running")
        conn.send_bytes(encode_payload(message))
        try:
            return decode_payload(conn.recv_bytes())
        except EOFError:
            raise ClusterError(
                f"shard {shard_id} died mid-request"
            ) from None

    def kill(self, shard_id: int) -> None:
        proc = self._procs.pop(shard_id, None)
        if proc is None:
            raise ClusterError(f"shard {shard_id} is not running")
        conn = self._conns.pop(shard_id)
        proc.terminate()
        proc.join(timeout=10)
        conn.close()

    def recover(
        self, shard_id: int, decls: Sequence[TableDecl]
    ) -> ShardHelloMessage:
        if self.wal_root is None:
            raise ClusterError(
                "recovery needs a wal_root; this backend lost everything"
            )
        return self._launch(shard_id, decls, recovered=True)

    def alive(self) -> List[int]:
        return sorted(self._procs)

    def close(self) -> None:
        for shard_id in list(self._procs):
            conn = self._conns.pop(shard_id)
            proc = self._procs.pop(shard_id)
            try:
                conn.send_bytes(_SHUTDOWN)
            except (OSError, BrokenPipeError):
                pass
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
            conn.close()
