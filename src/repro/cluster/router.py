"""The cluster router: scatter/gather refresh over replicated shards.

The router owns the authoritative database (every client commit lands
here first) and drives N shard hosts through refresh cycles:

* **Placement.** Rows of a table with a declared partition key hash to
  exactly one placement *group* through the seeded consistent-hash
  ring; other tables are *replicated on demand* (a store receives their
  deltas only while it hosts a CQ touching them). Subscriptions over
  replicated tables hash to one group by canonical SQL text
  (``sql_key``); a CQ touching a partitioned table runs
  *partition-parallel* on every group, each evaluating over its slice
  (fragment-and-replicate: such a CQ may touch at most one partitioned
  table, so its partial result deltas are tid-disjoint across groups
  and merge by concatenation).

* **Replication.** With ``replicas > 0`` every group is placed on a
  primary host plus replicas on *distinct* hosts (ring-successor
  order, least-loaded first). Replicas are kept in lockstep by
  receiving the same WAL-first scattered slices every cycle but hold
  **no subscriptions** — their steady-state cost is the upsert apply,
  not a second evaluation, and their update logs stay prunable. Only
  the primary's gather feeds the merge.

* **Failure detection.** Every request runs under a deadline with
  bounded retries and jittered exponential backoff; missed acks drive
  the per-host alive → suspect → dead state machine
  (:class:`~repro.cluster.health.HealthMonitor`). A host that exhausts
  its retries is taken out of service mid-cycle.

* **Failover.** When a primary goes down, the router promotes a
  replica *in the same refresh cycle*: a
  :class:`~repro.net.messages.ShardPromoteMessage` registers the
  group's CQs locally over the replica's (hot, lockstep) tables at the
  group's last-served timestamp, so the very next scatter window
  yields the failed cycle's delta bit-identically — no baseline
  transfer, no ``ClusterError``, no missed notification. Lost replica
  capacity is restored in the background by the next refresh cycles
  (``cluster_rereplications``), after which the dead host's pinned
  zone is auto-released instead of holding the logs forever.

* **Relevance scatter.** Each cycle consolidates the per-store missed
  window once and runs it through a router-side
  :class:`~repro.dra.predindex.PredicateIndex` holding every registered
  footprint. Stores none of whose CQ footprints the batch touches get a
  heartbeat instead of data (the Section 5.2 relevance theorem makes
  skipping sound); new subscriptions are seeded with a baseline sync,
  so earlier skipped windows never leave a gap.

* **Gather + merge.** Partial result deltas come back per ``sql_key``
  from each group's primary; the router merges the tid-disjoint slices
  (a cross-slice row move arrives as delete-on-one-group +
  insert-on-another and is recombined into a modify), re-runs residual
  confirmation on the merged Z-set delta, applies it to the retained
  result, and notifies subscribers.

* **Recovery and resize.** Each store journals scattered state
  WAL-first. :meth:`recover_shard` is a *rejoin*: groups nobody else
  serves come back primary (delta replay while the logs still cover
  the horizon, baseline fallback after), groups that failed over in
  the meantime come back as catch-up replicas (demoted, stale
  registrations dropped). :meth:`add_shard` grows the fleet;
  :meth:`remove_shard` is its planned inverse — drain, hand off,
  stop — with a leading refresh so the handoff is gapless.

See DESIGN.md §12 for the protocol walk-through and recovery matrix.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ClusterError, RegistrationError, ShardTimeout
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import _COMPARE_OPS, _SWAPPED, Comparison
from repro.relational.relation import Relation
from repro.relational.sql import parse_query
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.core.gc import ActiveDeltaZones
from repro.delta.capture import deltas_since
from repro.delta.diff import diff
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.predindex import PredicateIndex
from repro.obs.export import prometheus_text
from repro.cluster.dispatch import CycleEngine, PROMOTE, supports_overlap
from repro.cluster.health import ALIVE, HealthMonitor
from repro.cluster.ring import HashRing, Partition, partition_filter
from repro.cluster.shard import ClusterShard, ShardHost, TableDecl
from repro.net.messages import (
    GatherReplyMessage,
    Message,
    ScatterMessage,
    ShardDrainMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
    ShardPromoteMessage,
)

#: ``(cq_name, delta, ts)`` notification callback.
DeltaCallback = Callable[[str, DeltaRelation, Timestamp], None]


class LocalBackend:
    """Shard hosts as in-process objects (tests, benchmarks, examples).

    ``kill`` abandons the host object without closing its journals —
    the crash the recovery path is built for (recovery therefore needs
    a ``wal_root``; a purely in-memory backend raises instead).
    ``stop`` is the planned shutdown :meth:`ClusterRouter.remove_shard`
    uses. ``fault_hook`` (usually a
    :class:`~repro.cluster.health.FaultInjector`) is consulted before
    and after each ``handle`` so chaos tests can script timeouts and
    connection drops at exact protocol points — including the
    "frame applied, reply lost" window the seq-dedup cache covers.

    The overlapped-dispatch trio (``post``/``collect``/``host_alive``)
    runs each posted frame on a thread pool and drains finished
    replies through a queue — hosts overlap, frames to one host stay
    serial (the engine keeps one outstanding request per host, like a
    real pipe to a single-threaded worker). ``shuffle_seed`` reorders
    each ``collect`` batch deterministically, the out-of-order
    equivalence tests' way of proving the merge is
    arrival-independent.
    """

    def __init__(
        self,
        wal_root: Optional[str] = None,
        columnar: bool = False,
        fault_hook: Optional[Callable[[int, Message, str], None]] = None,
        shuffle_seed: Optional[int] = None,
    ):
        self.wal_root = wal_root
        self.columnar = columnar
        self.fault_hook = fault_hook
        self.shards: Dict[int, ShardHost] = {}
        self._rng = (
            random.Random(shuffle_seed) if shuffle_seed is not None else None
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        self._results: "queue.Queue[tuple]" = queue.Queue()
        #: Per-shard serialization for the overlapped path: the engine
        #: bounds *outstanding* requests to one per host, but a retry
        #: fired while a slow handle() still occupies a pool thread
        #: would otherwise run a second concurrent handle() on the
        #: same (non-thread-safe) ShardHost. A real pipe queues the
        #: retried frame behind the stalled attempt; so do we.
        self._serial: Dict[int, threading.Lock] = {}

    def spawn(self, shard_id: int, decls: Sequence[TableDecl]) -> ShardHelloMessage:
        if shard_id in self.shards:
            raise ClusterError(f"shard {shard_id} already running")
        host = ShardHost(
            shard_id, decls, wal_root=self.wal_root, columnar=self.columnar
        )
        self.shards[shard_id] = host
        return host.hello()

    def send(
        self,
        shard_id: int,
        message: Message,
        timeout: Optional[float] = None,
    ) -> GatherReplyMessage:
        host = self.shards.get(shard_id)
        if host is None:
            raise ClusterError(f"shard {shard_id} is not running")
        if self.fault_hook is not None:
            self.fault_hook(shard_id, message, "send")
        reply = host.handle(message)
        if self.fault_hook is not None:
            self.fault_hook(shard_id, message, "reply")
        return reply

    def kill(self, shard_id: int) -> None:
        if self.shards.pop(shard_id, None) is None:
            raise ClusterError(f"shard {shard_id} is not running")

    def stop(self, shard_id: int) -> None:
        host = self.shards.pop(shard_id, None)
        if host is None:
            raise ClusterError(f"shard {shard_id} is not running")
        host.close()

    def recover(
        self, shard_id: int, decls: Sequence[TableDecl]
    ) -> ShardHelloMessage:
        host = self.shards.get(shard_id)
        if host is not None:
            # The host never actually died — a wedged/slow false
            # positive the health machine cannot distinguish from a
            # crash. Reattach to the live object instead of replaying
            # journals under it.
            return host.hello()
        if self.wal_root is None:
            raise ClusterError(
                "recovery needs a wal_root; this backend is in-memory only"
            )
        host = ShardHost.recover(
            shard_id, decls, self.wal_root, columnar=self.columnar
        )
        self.shards[shard_id] = host
        return host.hello()

    def alive(self) -> List[int]:
        return sorted(self.shards)

    # -- overlapped dispatch (CycleEngine transport trio) -------------------

    def post(self, shard_id: int, message: Message) -> None:
        """Non-blocking dispatch: ``handle`` runs on a pool thread and
        the outcome (reply or raised fault) lands in the result queue."""
        if shard_id not in self.shards:
            raise ClusterError(f"shard {shard_id} is not running")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=16, thread_name_prefix="local-shard"
            )
        seq = getattr(message, "seq", None)
        serial = self._serial.setdefault(shard_id, threading.Lock())

        def run() -> None:
            try:
                with serial:
                    host = self.shards.get(shard_id)
                    if host is None:
                        raise ClusterError(f"shard {shard_id} is not running")
                    if self.fault_hook is not None:
                        self.fault_hook(shard_id, message, "send")
                    reply = host.handle(message)
                    if self.fault_hook is not None:
                        self.fault_hook(shard_id, message, "reply")
            except Exception as exc:  # delivered as a typed event
                self._results.put((shard_id, seq, exc))
            else:
                self._results.put((shard_id, seq, reply))

        self._pool.submit(run)

    def collect(self, timeout: float) -> List[tuple]:
        """All finished outcomes, blocking up to ``timeout`` for the
        first; shuffled deterministically when ``shuffle_seed`` is set."""
        out: List[tuple] = []
        try:
            out.append(self._results.get(timeout=max(0.0, timeout)))
        except queue.Empty:
            return out
        while True:
            try:
                out.append(self._results.get_nowait())
            except queue.Empty:
                break
        if self._rng is not None and len(out) > 1:
            self._rng.shuffle(out)
        return out

    def host_alive(self, shard_id: int) -> bool:
        return shard_id in self.shards

    def host(self, shard_id: int) -> ShardHost:
        return self.shards[shard_id]

    def shard(self, shard_id: int) -> ClusterShard:
        """The host's own-group store (the pre-replication accessor)."""
        return self.shards[shard_id].stores[shard_id]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for host in self.shards.values():
            host.close()


class _RouterSub:
    """One client subscription at the router."""

    __slots__ = ("client_id", "cq_name", "sql_key", "result", "last_ts", "on_delta")

    def __init__(
        self,
        client_id: str,
        cq_name: str,
        sql_key: str,
        result: Relation,
        last_ts: Timestamp,
        on_delta: Optional[DeltaCallback],
    ):
        self.client_id = client_id
        self.cq_name = cq_name
        self.sql_key = sql_key
        self.result = result
        self.last_ts = last_ts
        self.on_delta = on_delta


#: One residual conjunct over the output schema:
#: ``(output position, op, constant)``.
Residual = Tuple[int, Callable, object]


class GCReport(dict):
    """:meth:`ClusterRouter.collect_garbage`'s result.

    A plain dict of per-table pruned entry counts (the pre-replication
    return value, unchanged for callers that treat it as one), plus
    ``pinned``: what dead hosts' zones still hold back — boundary,
    retained log rows, and the groups awaiting failover or
    re-replication — so a leaking pin is visible instead of silently
    growing the logs.
    """

    def __init__(
        self,
        pruned: Dict[str, int],
        pinned: Dict[str, Dict[str, object]],
    ):
        super().__init__(pruned)
        self.pinned = pinned


class ClusterRouter:
    """Routes commits, subscriptions, and refreshes across N shards."""

    def __init__(
        self,
        shards: int = 3,
        seed: int = 0,
        metrics: Optional[Metrics] = None,
        backend: Optional[LocalBackend] = None,
        vnodes: int = 64,
        auto_gc: bool = False,
        replicas: int = 0,
        request_timeout: Optional[float] = 30.0,
        retries: int = 1,
        suspect_after: int = 1,
        dead_after: int = 2,
        backoff_base: float = 0.05,
        sleep: Optional[Callable[[float], None]] = None,
        overlap: bool = True,
        weights: Optional[Dict[int, float]] = None,
    ):
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        if replicas < 0:
            raise ClusterError("replicas must be >= 0")
        self.metrics = metrics if metrics is not None else Metrics()
        self.backend = backend if backend is not None else LocalBackend()
        #: The authoritative database: clients commit here; shards hold
        #: router-scattered copies (slices) of it.
        self.db = Database()
        self.seed = seed
        self.ring = HashRing(seed=seed, vnodes=vnodes)
        self.index = PredicateIndex(self.metrics)
        self.zones = ActiveDeltaZones(self.db)
        self.auto_gc = auto_gc
        #: Replica stores per group (best effort: capped by host count).
        self.replicas = replicas
        self.health = HealthMonitor(
            suspect_after=suspect_after,
            dead_after=dead_after,
            backoff_base=backoff_base,
            seed=seed,
        )
        self._request_timeout = request_timeout
        self._retries = retries
        self._sleep = time.sleep if sleep is None else sleep
        #: Overlapped dispatch: plan every frame up front, gather
        #: replies as they arrive (requires a backend exposing the
        #: post/collect/host_alive trio; falls back to the sequential
        #: loop otherwise). ``overlap=False`` keeps the sequential
        #: loop — the wall-clock benchmarks' baseline.
        self.overlap = overlap
        #: Initial per-shard placement weights (heterogeneous fleets);
        #: :meth:`add_shard` takes a ``weight=`` for later joiners.
        self._initial_weights = dict(weights or {})
        self._engine: Optional[CycleEngine] = None
        self._n_initial = shards
        self._decls: Dict[str, TableDecl] = {}
        self._started = False
        self._seq = 0
        self._horizons: Dict[int, Timestamp] = {}
        self._dead: Set[int] = set()
        self._queries: Dict[str, SPJQuery] = {}
        self._owners: Dict[str, Set[int]] = {}
        self._parallel: Set[str] = set()  # partition-parallel sql_keys
        self._members: Dict[str, List[Tuple[str, str]]] = {}
        self._subs: Dict[Tuple[str, str], _RouterSub] = {}
        self._residuals: Dict[str, Tuple[Residual, ...]] = {}
        #: ``{group: [primary host, replica hosts...]}``.
        self._placement: Dict[int, List[int]] = {}
        #: Stores carried per host, maintained incrementally alongside
        #: every ``_placement`` mutation (the load half of the
        #: load-aware replica targeting; rebuilding it per call was the
        #: O(groups·hosts) half of the re-replication hot spot).
        self._load: Dict[int, int] = {}
        #: Applied-through timestamp per ``(host, group)`` store.
        self._store_horizons: Dict[Tuple[int, int], Timestamp] = {}
        self._store_counters: Dict[Tuple[int, int], Dict[str, int]] = {}
        #: Observed refresh cost per store and its per-host sum, both
        #: maintained incrementally from gathered counter snapshots
        #: (the same per-CQ attributed counters ``CQStats`` folds on
        #: the shard side). The cost half of load-aware targeting.
        self._store_cost: Dict[Tuple[int, int], float] = {}
        self._host_cost: Dict[int, float] = {}
        #: Last timestamp whose gather was merged into member results,
        #: per group — the promotion registration point.
        self._group_served: Dict[int, Timestamp] = {}
        #: Dead host -> groups whose failover/re-replication has not
        #: completed; the host's zone stays pinned until this empties.
        self._pinned: Dict[int, Set[int]] = {}
        #: Groups nobody currently serves (sole holder died).
        self._lost: Set[int] = set()
        #: Groups queued for background re-replication/top-up.
        self._rerepl: List[int] = []
        #: sql_keys to snap to the authoritative result after this
        #: cycle's merge (promotion-lag and rebuild healing).
        self._reconcile_keys: Set[str] = set()

    # -- setup -------------------------------------------------------------

    def declare_table(
        self,
        name: str,
        schema,
        partition_key: Optional[str] = None,
        indexes: Sequence[Sequence[str]] = (),
    ) -> TableDecl:
        """Declare one cluster table (before :meth:`start`)."""
        if self._started:
            raise ClusterError("declare tables before start()")
        decl = TableDecl(
            name, schema, partition_key=partition_key, indexes=indexes
        )
        self._decls[name] = decl
        self.db.create_table(name, decl.schema, indexes=decl.indexes)
        return decl

    def start(self) -> None:
        """Spawn the shard fleet and place it on the ring."""
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        decls = list(self._decls.values())
        now = self.db.now()
        for shard_id in range(self._n_initial):
            self.backend.spawn(shard_id, decls)
            self.ring.add_node(
                shard_id, weight=self._initial_weights.get(shard_id, 1.0)
            )
            self._horizons[shard_id] = now
            self.zones.register(
                self._zone(shard_id), self._all_tables(), now
            )
            self._place(shard_id, shard_id)
            self._store_horizons[(shard_id, shard_id)] = now
        target = min(self.replicas, self._n_initial - 1)
        if target > 0:
            for group in sorted(self._placement):
                for host in self._replica_targets(group, target):
                    self._place(group, host)
                    self._store_horizons[(host, group)] = now

    @staticmethod
    def _zone(shard_id: int) -> str:
        return f"shard:{shard_id}"

    def _all_tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._decls))

    def _alive(self) -> List[int]:
        return [s for s in self.ring.nodes() if s not in self._dead]

    def _partition(self, table: str, group: int) -> Partition:
        decl = self._decls[table]
        return Partition(
            table, decl.partition_key, decl.key_position, self.ring, group
        )

    def _owned_keys(self, group: int) -> List[str]:
        return sorted(
            sql_key
            for sql_key, owners in self._owners.items()
            if group in owners
        )

    def _group_tables(self, sql_keys: Sequence[str]) -> List[str]:
        needed: Set[str] = set()
        for sql_key in sql_keys:
            needed.update(self._queries[sql_key].table_names)
        return sorted(needed)

    # -- placement bookkeeping ----------------------------------------------

    #: Gather-reply counters that proxy a store's refresh cost (the
    #: same work counters the shard's per-CQ ``CQStats`` attribution
    #: charges); their per-host sum steers load-aware targeting.
    _WORK_COUNTERS = (
        "terms_evaluated",
        "rows_scanned",
        "delta_rows_read",
        "predindex_probes",
    )

    def _place(self, group: int, host: int) -> None:
        """Append ``host`` to ``group``'s placement, load accounted."""
        self._placement.setdefault(group, []).append(host)
        self._load[host] = self._load.get(host, 0) + 1

    def _unplace(self, group: int, host: int) -> None:
        hosts = self._placement.get(group)
        if hosts is None or host not in hosts:
            return
        hosts.remove(host)
        remaining = self._load.get(host, 0) - 1
        if remaining > 0:
            self._load[host] = remaining
        else:
            self._load.pop(host, None)

    def _clear_group(self, group: int, forget: bool = False) -> None:
        """Empty ``group``'s placement (``forget`` drops the key too)."""
        for host in list(self._placement.get(group, ())):
            self._unplace(group, host)
        if forget:
            self._placement.pop(group, None)

    def _record_store(self, host: int, group: int, counters) -> None:
        """One store's gathered counter snapshot, cost kept current."""
        snapshot = dict(counters)
        self._store_counters[(host, group)] = snapshot
        score = float(
            sum(snapshot.get(name, 0) for name in self._WORK_COUNTERS)
        )
        previous = self._store_cost.get((host, group), 0.0)
        if score != previous:
            self._store_cost[(host, group)] = score
            self._host_cost[host] = (
                self._host_cost.get(host, 0.0) + score - previous
            )

    def _drop_store_counters(self, key: Tuple[int, int]) -> None:
        self._store_counters.pop(key, None)
        score = self._store_cost.pop(key, None)
        if score:
            host = key[0]
            remaining = self._host_cost.get(host, 0.0) - score
            if remaining > 0.0:
                self._host_cost[host] = remaining
            else:
                self._host_cost.pop(host, None)

    def _replica_targets(
        self, group: int, k: int, exclude: Optional[Set[int]] = None
    ) -> List[int]:
        """``k`` replica hosts for ``group``: ring-successor preference
        order (deterministic from seed + node set), filtered to live
        hosts not already placed, least-loaded first so replica stores
        spread instead of piling onto one ring neighbor.

        Load-aware and weight-aware: hosts are ordered by carried
        stores per unit of placement weight, observed refresh cost per
        unit of weight (both maintained incrementally — no per-call
        rebuild), then ring preference rank (precomputed as a dict;
        ``pref.index`` inside the sort key was the
        O(groups·hosts·vnodes) re-replication hot spot).
        """
        if k <= 0:
            return []
        taken = set(self._placement.get(group, ()))
        taken.update(self._dead)
        taken.update(exclude or ())
        pref = self.ring.lookup_n(f"replica:{group}", len(self.ring))
        rank = {host: position for position, host in enumerate(pref)}
        load = self._load
        cost = self._host_cost
        weight = self.ring.weight
        ranked = sorted(
            (host for host in pref if host not in taken),
            key=lambda host: (
                load.get(host, 0) / weight(host),
                cost.get(host, 0.0) / weight(host),
                rank[host],
            ),
        )
        return ranked[:k]

    # -- transport ----------------------------------------------------------

    def _send(self, host: int, message: Message) -> Optional[GatherReplyMessage]:
        """One request under the deadline/retry/backoff policy.

        Returns the reply, or None once the host has exhausted its
        retries (the caller decides the failover). Never raises: a
        timeout and a torn connection both feed the health state
        machine as a missed ack. A torn connection whose process is
        actually gone fails fast — no backoff schedule can heal it, so
        burning ``retries × backoff`` of wall-clock before the
        failover would only delay the promotion (the health machine
        still ends at *dead* through ``_on_host_down``). Retries are
        safe because shard stores dedup by ``seq`` and return the
        cached reply, so at-least-once delivery stays exactly-once
        application.
        """
        if host in self._dead:
            return None
        attempts = max(1, self._retries + 1)
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.metrics.count(Metrics.SCATTER_RETRIES)
                self._sleep(self.health.backoff(attempt - 1))
            try:
                reply = self.backend.send(
                    host, message, timeout=self._request_timeout
                )
            except ShardTimeout:
                self.metrics.count(Metrics.SCATTER_TIMEOUTS)
                self._record_failure(host)
                continue
            except ClusterError:
                self._record_failure(host)
                if not self._backend_alive(host):
                    self.metrics.count(Metrics.SCATTER_FAILFASTS)
                    break
                continue
            self.health.success(host)
            return reply
        return None

    def _backend_alive(self, host: int) -> bool:
        """Process-level liveness, tolerant of backends without the
        overlapped-dispatch trio."""
        probe = getattr(self.backend, "host_alive", None)
        if callable(probe):
            return bool(probe(host))
        return host in self.backend.alive()

    def _record_failure(self, host: int) -> None:
        before = self.health.state(host)
        after = self.health.failure(host)
        if before == ALIVE and after != ALIVE:
            self.metrics.count(Metrics.SUSPECTS)

    def _ensure_zone(self, host: int, ts: Timestamp) -> None:
        """(Re-)pin the router logs for a host gaining its first store
        since it was forgotten (a rejoined or freshly re-targeted
        replica host whose zone was released)."""
        if self.zones.boundary(self._zone(host)) is None:
            self.zones.register(self._zone(host), self._all_tables(), ts)

    def _refresh_host_horizon(self, host: int) -> None:
        horizons = [
            ts for (h, _g), ts in self._store_horizons.items() if h == host
        ]
        if horizons:
            self._horizons[host] = min(horizons)
            self.zones.try_advance(self._zone(host), self._horizons[host])

    # -- subscriptions ------------------------------------------------------

    def subscribe(
        self,
        client_id: str,
        cq_name: str,
        sql: str,
        on_delta: Optional[DeltaCallback] = None,
    ) -> Relation:
        """Register a CQ cluster-wide; returns the initial result.

        The first subscription of a ``sql_key`` installs the footprint
        in the router's predicate index and seeds the owning group(s):
        partition-parallel queries (touching a partitioned table) on
        every group, replicated-only queries on the single group the
        key hashes to. The group's primary registers the CQ; its
        replicas receive the baseline tables only. Later identical
        subscriptions just join the existing group — shard work is
        independent of the subscriber count.
        """
        if not self._started:
            raise ClusterError("start() the cluster before subscribing")
        key = (client_id, cq_name)
        if key in self._subs:
            raise RegistrationError(
                f"client {client_id!r} already registered {cq_name!r}"
            )
        query = parse_query(sql)
        if not isinstance(query, SPJQuery):
            raise RegistrationError(
                "the cluster serves SPJ continual queries"
            )
        for name in set(query.table_names):
            if name not in self._decls:
                raise ClusterError(f"table {name!r} was never declared")
        partitioned = sorted(
            name
            for name in set(query.table_names)
            if self._decls[name].partition_key is not None
        )
        if len(partitioned) > 1:
            raise RegistrationError(
                "a cluster CQ may touch at most one partitioned table "
                f"(got {partitioned}); fragment-and-replicate needs the "
                "partial results to be tid-disjoint"
            )
        sql_key = query.to_sql()
        if sql_key not in self._owners:
            if partitioned:
                owners = set(self.ring.nodes())
                self._parallel.add(sql_key)
            else:
                owners = {self.ring.lookup(sql_key)}
            self._queries[sql_key] = query
            self._owners[sql_key] = owners
            self._members[sql_key] = []
            self._residuals[sql_key] = self._compile_residuals(query)
            scopes = {
                ref.alias: self.db.table(ref.table).schema
                for ref in query.relations
            }
            self.index.add(sql_key, query, scopes)
            for group in sorted(owners):
                self._seed_group(group, sql_key, query)
        members = self._members[sql_key]
        if members:
            # Joining an existing group: share its retained result
            # instead of re-evaluating — subscriber count stays out of
            # registration cost, mirroring shard-side shared groups.
            peer = self._subs[members[0]]
            result, last_ts = peer.result.copy(), peer.last_ts
        else:
            result, last_ts = (
                self.db.query(query, self.metrics),
                self.db.now(),
            )
        sub = _RouterSub(
            client_id, cq_name, sql_key, result, last_ts, on_delta
        )
        self._subs[key] = sub
        self._members[sql_key].append(key)
        return result.copy()

    def unsubscribe(self, client_id: str, cq_name: str) -> None:
        """Drop a subscription; the last member of a ``sql_key`` also
        retires the footprint and the shard-side registrations."""
        sub = self._subs.pop((client_id, cq_name), None)
        if sub is None:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            )
        members = self._members[sub.sql_key]
        members.remove((client_id, cq_name))
        if members:
            return
        sql_key = sub.sql_key
        for group in sorted(self._owners[sql_key]):
            hosts = [
                h
                for h in self._placement.get(group, ())
                if h not in self._dead
            ]
            if not hosts:
                continue
            # Only the primary holds the registration; replicas carry
            # tables, not subscriptions.
            self._seq += 1
            if self._send(
                hosts[0],
                ScatterMessage(
                    hosts[0],
                    self._seq,
                    self.db.now(),
                    unsubscribe=[sql_key],
                    group=group,
                ),
            ) is None:
                self._on_host_down(hosts[0])
        self.index.remove(sql_key)
        for registry in (
            self._queries,
            self._owners,
            self._members,
            self._residuals,
        ):
            registry.pop(sql_key, None)
        self._parallel.discard(sql_key)

    def _seed_group(
        self,
        group: int,
        sql_key: str,
        query: SPJQuery,
        now: Optional[Timestamp] = None,
    ) -> None:
        """Install one ``sql_key`` on every live store of ``group``:
        baseline-sync every touched table (sliced for partitioned
        tables), registering the CQ on the primary only — replicas get
        lockstep tables without subscriptions. The local baseline diff
        makes re-seeding an already current table free, so this is
        always sound — it closes any gap left by earlier
        relevance-skipped scatters."""
        hosts = [
            h for h in self._placement.get(group, ()) if h not in self._dead
        ]
        ts = self.db.now() if now is None else now
        tables = sorted(set(query.table_names))
        for index, host in enumerate(hosts):
            baselines = {
                name: self._shard_view(name, group) for name in tables
            }
            subscribe = (
                [{"cq": sql_key, "sql": query.to_sql()}]
                if index == 0
                else None
            )
            self._seq += 1
            if self._send(
                host,
                ScatterMessage(
                    host,
                    self._seq,
                    ts,
                    baselines=baselines,
                    subscribe=subscribe,
                    group=group,
                ),
            ) is None:
                self._on_host_down(host)

    def _shard_view(self, table: str, group: int) -> Relation:
        """The slice of a table's authoritative state one group holds."""
        current = self.db.table(table).current
        decl = self._decls[table]
        if decl.partition_key is None:
            return current.copy()
        partition = self._partition(table, group)
        out = Relation(current.schema)
        for row in current:
            if partition.accepts(row.values):
                out.add(row.tid, row.values)
        return out

    # -- residual confirmation ---------------------------------------------

    def _compile_residuals(self, query: SPJQuery) -> Tuple[Residual, ...]:
        """The predicate conjuncts re-checkable on gathered entries.

        A conjunct survives compilation when it is a column-vs-literal
        comparison whose column is visible in the output schema (the
        projection keeps it, or the query is single-relation SELECT *).
        Everything else — join conditions, dropped columns — was
        already enforced shard-side and cannot be re-checked here.
        """
        positions: Dict[Tuple[Optional[str], str], int] = {}
        if query.projection is not None:
            for i, col in enumerate(query.projection):
                positions[(col.ref.qualifier, col.ref.name)] = i
                if col.ref.qualifier is not None:
                    positions.setdefault((None, col.ref.name), i)
        elif query.is_single_relation():
            ref = query.relations[0]
            schema = self.db.table(ref.table).schema
            for i, attribute in enumerate(schema):
                positions[(ref.alias, attribute.name)] = i
                positions[(None, attribute.name)] = i
        else:
            return ()
        out: List[Residual] = []
        for conj in query.predicate.conjuncts():
            if not isinstance(conj, Comparison):
                continue
            left, right = conj.left, conj.right
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                ref, const, op = left, right.value, _COMPARE_OPS[conj.op]
            elif isinstance(left, Literal) and isinstance(right, ColumnRef):
                ref, const = right, left.value
                op = _COMPARE_OPS[_SWAPPED[conj.op]]
            else:
                continue
            if const is None:
                continue
            position = positions.get((ref.qualifier, ref.name))
            if position is None:
                continue
            out.append((position, op, const))
        return tuple(out)

    def _confirm(
        self, sql_key: str, entries: List[DeltaEntry]
    ) -> List[DeltaEntry]:
        """Residual confirmation on a merged Z-set delta: a new side
        failing any re-checkable conjunct is dropped (the entry decays
        to its delete half, or vanishes), counted per occurrence."""
        residuals = self._residuals.get(sql_key, ())
        if not residuals:
            return entries
        out: List[DeltaEntry] = []
        for entry in entries:
            new = entry.new
            if new is not None:
                ok = all(
                    new[position] is not None and op(new[position], const)
                    for position, op, const in residuals
                )
                if not ok:
                    self.metrics.count(Metrics.RESIDUAL_DROPS)
                    if entry.old is None:
                        continue
                    entry = DeltaEntry(entry.tid, entry.old, None, entry.ts)
            out.append(entry)
        return out

    # -- refresh ------------------------------------------------------------

    def refresh(self, collect: bool = True) -> int:
        """One cluster refresh cycle: scatter, gather, merge, notify.

        Returns the number of subscriptions that received a delta.
        ``collect`` asks each store to run its own garbage collection
        after refreshing (router-side collection is separate; see
        :meth:`collect_garbage`). A host that misses its deadlines
        mid-cycle is failed over *within* the cycle — its group's
        promoted replica serves the same window, so subscribers never
        see a gap or an error.
        """
        if not self._started:
            raise ClusterError("start() the cluster before refreshing")
        now = self.db.now()
        pending: Dict[str, List[DeltaRelation]] = {}
        ts_by_key: Dict[str, Timestamp] = {}
        windows: Dict[Timestamp, Tuple[Dict, Set[str]]] = {}
        frames: Dict[Tuple[int, Timestamp], Dict[str, DeltaRelation]] = {}
        if self.overlap and supports_overlap(self.backend):
            self._refresh_overlapped(
                now, collect, windows, frames, pending, ts_by_key
            )
        else:
            for group in sorted(self._placement):
                self._refresh_group(
                    group, now, collect, windows, frames, pending, ts_by_key
                )
        notified = self._merge_and_notify(pending, ts_by_key, now)
        self._drain_rereplication(now)
        if self._reconcile_keys:
            keys = sorted(self._reconcile_keys)
            self._reconcile_keys.clear()
            self._reconcile(keys, now)
        if self.auto_gc:
            self.collect_garbage()
        return notified

    def _refresh_overlapped(
        self,
        now: Timestamp,
        collect: bool,
        windows: Dict,
        frames: Dict,
        pending: Dict[str, List[DeltaRelation]],
        ts_by_key: Dict[str, Timestamp],
    ) -> None:
        """Dispatch every store's frame up front, gather as they land.

        Planning order (sorted groups, placement order within a group)
        fixes the per-host FIFO queues, so a group's primary frame
        still precedes its replicas' on a shared host. The engine only
        *records* replies; they are absorbed here afterwards in the
        same sorted group/placement order the sequential loop used —
        merge inputs and notification order are therefore independent
        of arrival order. Hosts that died mid-cycle (failover already
        ran) are skipped: their bookkeeping was surgically removed by
        ``_on_host_down`` and must not be resurrected by a reply that
        arrived before the verdict.
        """
        engine = CycleEngine(self)
        self._engine = engine
        try:
            for group in sorted(self._placement):
                for host in list(self._placement.get(group, ())):
                    if host in self._dead:
                        continue
                    message = self._plan(
                        host, group, now, collect, windows, frames
                    )
                    engine.submit(host, group, message)
            engine.run()
        finally:
            self._engine = None
        for group in sorted(self._placement):
            hosts = list(self._placement.get(group, ()))
            primary = hosts[0] if hosts else None
            for host in hosts:
                if host in self._dead:
                    continue
                reply = engine.replies.get((host, group))
                if reply is None:
                    continue
                self._absorb(
                    host,
                    group,
                    reply,
                    pending if host == primary else None,
                    ts_by_key,
                )

    def _refresh_group(
        self,
        group: int,
        now: Timestamp,
        collect: bool,
        windows: Dict,
        frames: Dict,
        pending: Dict[str, List[DeltaRelation]],
        ts_by_key: Dict[str, Timestamp],
    ) -> None:
        """Drive every store of one group through the cycle.

        The snapshot of the placement is taken up front: when the
        primary fails mid-loop, :meth:`_on_host_down` promotes the
        replica in place, and the loop then reaches that replica with a
        regular scatter frame — by then it *is* the primary, so its
        gather feeds the merge and the cycle completes without a gap.
        """
        for host in list(self._placement.get(group, ())):
            if host in self._dead:
                continue
            message = self._plan(host, group, now, collect, windows, frames)
            reply = self._send(host, message)
            if reply is None:
                self._on_host_down(host)
                continue
            placement = self._placement.get(group, ())
            primary = placement[0] if placement else None
            self._absorb(
                host,
                group,
                reply,
                pending if host == primary else None,
                ts_by_key,
            )

    def _plan(
        self,
        host: int,
        group: int,
        now: Timestamp,
        collect: bool,
        windows: Dict[Timestamp, Tuple[Dict, Set[str]]],
        frames: Dict[Tuple[int, Timestamp], Dict[str, DeltaRelation]],
    ) -> Message:
        """The store's frame for this cycle: a scatter when the missed
        window touches any of its group's footprints, a heartbeat
        otherwise.

        ``windows`` memoizes (window, routed-keys) by horizon for the
        cycle: in steady state every store shares one horizon, so the
        consolidated window is captured and footprint-matched once per
        cycle, not once per store. ``frames`` memoizes the sliced
        per-table deltas by (group, horizon): a group's primary and
        replicas receive identical slices — that is what keeps replicas
        in lockstep — so the slicing work is done once per group.
        """
        horizon = self._store_horizons[(host, group)]
        cached = windows.get(horizon)
        if cached is None:
            window = deltas_since(
                [self.db.table(name) for name in self._all_tables()],
                horizon,
            )
            routed = self.index.match_batch(window) if window else set()
            cached = windows[horizon] = (window, routed)
        window, routed = cached
        self._seq += 1
        if not window:
            return ShardHeartbeatMessage(
                host, self._seq, now, collect, group=group
            )
        deltas = frames.get((group, horizon))
        if deltas is None:
            local = {
                sql_key
                for sql_key in routed
                if group in self._owners.get(sql_key, ())
            }
            deltas = {}
            if local:
                needed: Set[str] = set()
                for sql_key in local:
                    needed.update(self._queries[sql_key].table_names)
                for name in sorted(needed):
                    delta = window.get(name)
                    if delta is None:
                        continue
                    if self._decls[name].partition_key is not None:
                        delta = partition_filter(
                            delta, self._partition(name, group)
                        )
                    if not delta.is_empty():
                        deltas[name] = delta
            frames[(group, horizon)] = deltas
        if not deltas:
            self.metrics.count(Metrics.SCATTER_SKIPPED)
            return ShardHeartbeatMessage(
                host, self._seq, now, collect, group=group
            )
        self.metrics.count(Metrics.SCATTERS)
        return ScatterMessage(
            host, self._seq, now, deltas=deltas, collect=collect, group=group
        )

    def _absorb(
        self,
        host: int,
        group: int,
        reply: GatherReplyMessage,
        pending: Optional[Dict[str, List[DeltaRelation]]],
        ts_by_key: Dict[str, Timestamp],
    ) -> None:
        """Record one store's reply; only the group primary's entries
        (``pending`` not None) feed the merge."""
        self._record_store(host, group, reply.counters)
        self._store_horizons[(host, group)] = reply.ts
        self._refresh_host_horizon(host)
        if pending is None:
            return
        self._group_served[group] = max(
            self._group_served.get(group, 0), reply.ts
        )
        for sql_key, delta, ts in reply.entries:
            if sql_key not in self._owners:
                continue  # raced an unsubscribe
            pending.setdefault(sql_key, []).append(delta)
            ts_by_key[sql_key] = max(ts_by_key.get(sql_key, 0), ts)

    def _merge_and_notify(
        self,
        pending: Dict[str, List[DeltaRelation]],
        ts_by_key: Dict[str, Timestamp],
        now: Timestamp,
    ) -> int:
        notified = 0
        for sql_key in sorted(pending):
            parts = pending[sql_key]
            merged = self._merge(sql_key, parts)
            if merged is None or merged.is_empty():
                continue
            ts = ts_by_key.get(sql_key, now)
            for member in list(self._members.get(sql_key, ())):
                sub = self._subs.get(member)
                if sub is None:
                    continue
                sub.result = self._apply(merged, sub.result)
                sub.last_ts = ts
                if sub.on_delta is not None:
                    sub.on_delta(sub.cq_name, merged, ts)
                notified += 1
        return notified

    def _merge(
        self, sql_key: str, parts: List[DeltaRelation]
    ) -> Optional[DeltaRelation]:
        """Concatenate tid-disjoint partial deltas into one Z-set delta.

        The only legitimate tid collision is a cross-slice row move (a
        partition-key update): the old owner contributes the delete
        half, the new owner the insert half — recombined into a modify
        and counted as a merge conflict.
        """
        self.metrics.count(Metrics.CLUSTER_MERGES)
        if len(parts) == 1:
            entries = list(parts[0])
            schema = parts[0].schema
        else:
            schema = parts[0].schema
            by_tid: Dict[object, DeltaEntry] = {}
            for part in parts:
                for entry in part:
                    existing = by_tid.get(entry.tid)
                    if existing is None:
                        by_tid[entry.tid] = entry
                        continue
                    self.metrics.count(Metrics.MERGE_CONFLICTS)
                    combined = self._combine(existing, entry)
                    if combined is None:
                        del by_tid[entry.tid]
                    else:
                        by_tid[entry.tid] = combined
            entries = list(by_tid.values())
        entries = self._confirm(sql_key, entries)
        if not entries:
            return None
        return DeltaRelation(schema, entries)

    @staticmethod
    def _combine(a: DeltaEntry, b: DeltaEntry) -> Optional[DeltaEntry]:
        ts = max(a.ts, b.ts)
        if a.new is None and b.old is None:
            old, new = a.old, b.new
        elif b.new is None and a.old is None:
            old, new = b.old, a.new
        else:
            # Not a clean move; keep the later sighting whole.
            later = a if a.ts >= b.ts else b
            old, new = later.old, later.new
        if old == new:
            return None
        return DeltaEntry(a.tid, old, new, ts)

    @staticmethod
    def _apply(delta: DeltaRelation, result: Relation) -> Relation:
        """``delta.apply_to`` tolerant of recovery-replay skew.

        A recovered shard's catch-up entries interleave with partial
        merges the alive shards already delivered, so two delete shapes
        need care: a re-delivered delete (row already gone — a no-op)
        and a *stale* delete, the old-owner half of a cross-slice row
        move whose new-owner insert landed cycles ago. The old side
        identifies what a delete removes; when it no longer matches the
        retained value, a later entry superseded it and the delete is
        dropped. Inserts and modifies carry the current value outright,
        so applying them late is always safe.
        """
        out = result.copy()
        for entry in delta:
            if entry.new is None:
                if out.get_or_none(entry.tid) == entry.old:
                    out.discard(entry.tid)
            else:
                out.add(entry.tid, entry.new)
        return out

    # -- failure handling ---------------------------------------------------

    def _on_host_down(self, host: int) -> None:
        """Take a host out of service and fail its groups over.

        Groups it served as primary promote a replica on the spot;
        groups left with no live store are *lost* (rebuilt from the
        authoritative database in the background when ``replicas > 0``,
        or held for :meth:`recover_shard` otherwise). Every affected
        group pins the host's zone until its capacity is restored.
        """
        if host in self._dead:
            return
        self._dead.add(host)
        self.health.mark_dead(host)
        # The dead host's store bookkeeping is now meaningless (rejoin
        # reads the journal's own account, not router memory) and must
        # not leak into horizon aggregation if the host comes back.
        for key in [k for k in self._store_horizons if k[0] == host]:
            self._store_horizons.pop(key, None)
            self._drop_store_counters(key)
        affected = sorted(
            group
            for group, hosts in self._placement.items()
            if host in hosts
        )
        for group in affected:
            hosts = self._placement[group]
            was_primary = hosts[0] == host
            self._unplace(group, host)
            self._pinned.setdefault(host, set()).add(group)
            if not hosts:
                self._lost.add(group)
            elif was_primary:
                self._promote(group)
            if self.replicas:
                self._rerepl.append(group)

    def _promote(self, group: int) -> None:
        """Zero-downtime failover: the group's first surviving replica
        becomes primary by registering the group's CQs locally over its
        lockstep tables at the last-served timestamp — the very next
        scatter window reproduces the failed primary's delta
        bit-identically, with no baseline transfer. The promote reply
        carries the store's pre-registration horizon; a mismatch with
        the served timestamp means the replica's lockstep had diverged
        from what members saw, and the affected keys are queued for an
        exact reconcile instead of trusting the window.

        During an overlapped cycle the promote frame is submitted to
        the engine at the *front* of the target's queue instead of
        sent inline: if the new primary's lockstep scatter has not
        been dispatched yet, the promote still precedes it (the
        bit-identical ordering); if the scatter already ran, the
        promote's horizon mismatch queues the reconcile — exactly the
        correctness ladder the sequential loop's ordering implied."""
        hosts = [
            h
            for h in self._placement.get(group, ())
            if h not in self._dead
        ]
        if not hosts:
            self._lost.add(group)
            return
        target = hosts[0]
        owned = self._owned_keys(group)
        subscribe = [
            {"cq": key, "sql": self._queries[key].to_sql()} for key in owned
        ]
        served = self._group_served.get(
            group, self._store_horizons.get((target, group), 0)
        )
        self._seq += 1
        message = ShardPromoteMessage(
            target, group, self._seq, served, subscribe=subscribe
        )
        if self._engine is not None:
            self._engine.submit(
                target,
                group,
                message,
                kind=PROMOTE,
                front=True,
                context=(served, owned),
            )
            return
        reply = self._send(target, message)
        self._finish_promote(group, target, served, owned, reply)

    def _finish_promote(
        self,
        group: int,
        target: int,
        served: Timestamp,
        owned: List[str],
        reply: Optional[GatherReplyMessage],
    ) -> None:
        if reply is None:
            self._on_host_down(target)
            return
        self.metrics.count(Metrics.FAILOVERS)
        self._record_store(target, group, reply.counters)
        if reply.horizon != served:
            self._reconcile_keys.update(owned)

    def _drain_rereplication(self, now: Timestamp) -> None:
        """Background capacity repair, one batch per refresh cycle:
        rebuild lost groups from the authoritative database, then top
        replica counts back up; release dead hosts' pinned zones once
        every group they carried is healthy again."""
        if not self._rerepl:
            return
        queue = sorted(set(self._rerepl))
        self._rerepl = []
        for group in queue:
            if group not in self._placement:
                continue  # dissolved while queued
            if group in self._lost:
                if not self._rebuild_group(group, now):
                    self._rerepl.append(group)
                    continue
            self._top_up(group, now)
            self._maybe_release(group)

    def _rebuild_group(self, group: int, now: Timestamp) -> bool:
        """Re-create a lost group's primary from the authoritative
        database on a surviving host; members are healed by an exact
        reconcile after this cycle's merge."""
        candidates = self._replica_targets(group, 1)
        if not candidates:
            return False
        host = candidates[0]
        owned = self._owned_keys(group)
        baselines = {
            name: self._shard_view(name, group)
            for name in self._group_tables(owned)
        }
        subscribe = [
            {"cq": key, "sql": self._queries[key].to_sql()} for key in owned
        ]
        self._seq += 1
        reply = self._send(
            host,
            ScatterMessage(
                host,
                self._seq,
                now,
                baselines=baselines,
                subscribe=subscribe,
                group=group,
            ),
        )
        if reply is None:
            self._on_host_down(host)
            return False
        self.metrics.count(Metrics.REREPLICATIONS)
        self._clear_group(group)
        self._place(group, host)
        self._lost.discard(group)
        self._store_horizons[(host, group)] = reply.ts
        self._record_store(host, group, reply.counters)
        self._ensure_zone(host, reply.ts)
        self._refresh_host_horizon(host)
        self._group_served[group] = reply.ts
        self._reconcile_keys.update(owned)
        return True

    def _top_up(self, group: int, now: Timestamp) -> None:
        if not self.replicas:
            return
        live = self._alive()
        placed = [
            h for h in self._placement.get(group, ()) if h not in self._dead
        ]
        target = 1 + min(self.replicas, len(live) - 1)
        need = target - len(placed)
        if need <= 0:
            return
        for host in self._replica_targets(group, need):
            if self._seed_replica(group, host, now):
                self.metrics.count(Metrics.REREPLICATIONS)
        placed = [
            h for h in self._placement.get(group, ()) if h not in self._dead
        ]
        if len(placed) < target:
            self._rerepl.append(group)  # retry when capacity returns

    def _seed_replica(self, group: int, host: int, now: Timestamp) -> bool:
        """Baseline-sync one new replica store (tables only, no
        subscriptions); it joins the group's lockstep from the next
        cycle on."""
        owned = self._owned_keys(group)
        baselines = {
            name: self._shard_view(name, group)
            for name in self._group_tables(owned)
        }
        self._seq += 1
        reply = self._send(
            host,
            ScatterMessage(
                host, self._seq, now, baselines=baselines, group=group
            ),
        )
        if reply is None:
            self._on_host_down(host)
            return False
        self._place(group, host)
        self._store_horizons[(host, group)] = reply.ts
        self._record_store(host, group, reply.counters)
        self._ensure_zone(host, reply.ts)
        self._refresh_host_horizon(host)
        return True

    def _maybe_release(self, group: int) -> None:
        """Unpin dead hosts' zones once ``group`` is healthy again
        (failed over and fully re-replicated) — the pinned-zone leak
        fix: a crashed host whose groups all moved on must not hold
        the update logs forever waiting for a rejoin that may never
        come."""
        live = self._alive()
        target = 1 + min(self.replicas, max(len(live) - 1, 0))
        placed = [
            h for h in self._placement.get(group, ()) if h not in self._dead
        ]
        if group in self._lost or len(placed) < target:
            return
        for host in sorted(self._pinned):
            pins = self._pinned[host]
            pins.discard(group)
            if pins:
                continue
            del self._pinned[host]
            zone = self._zone(host)
            if self.zones.boundary(zone) is not None:
                self.zones.remove(zone)

    # -- shard lifecycle ----------------------------------------------------

    def kill_shard(self, shard_id: int, release_zone: bool = False) -> None:
        """Simulate a shard crash: the process state is gone, the
        journal survives. With replicas the host's groups fail over
        immediately (promotion happens here, not at the next refresh);
        without, the groups are lost until :meth:`recover_shard`. The
        host's zone keeps the router logs pinned for delta replay
        unless ``release_zone`` lets GC move on — or until background
        re-replication restores the groups' capacity and auto-releases
        it."""
        if shard_id in self._dead:
            raise ClusterError(f"shard {shard_id} is already dead")
        self.backend.kill(shard_id)
        self._on_host_down(shard_id)
        if release_zone:
            self._pinned.pop(shard_id, None)
            if self.zones.boundary(self._zone(shard_id)) is not None:
                self.zones.remove(self._zone(shard_id))

    def recover_shard(self, shard_id: int) -> bool:
        """Rejoin a dead host and resume it differentially.

        Returns True when the rejoin replayed update-log deltas — or
        when the cluster never lost anything because failover kept
        every group serving, making this a planned catch-up — and False
        for the baseline fallback (a lost group whose horizon the
        pruned router logs no longer reach).

        Per journaled store: a group nobody else serves comes back
        *primary* (the pre-replication recovery path — replay or
        re-seed, then an exact per-key reconcile of member results); a
        group that failed over while the host was down comes back as a
        catch-up *replica* (stale registrations dropped — the promoted
        primary keeps serving, no downtime); a group that was dissolved
        or is already at full strength is drained.
        """
        if shard_id not in self._dead:
            raise ClusterError(f"shard {shard_id} is not dead")
        hello = self.backend.recover(shard_id, list(self._decls.values()))
        self._dead.discard(shard_id)
        self.health.forget(shard_id)
        now = self.db.now()
        groups_info = dict(hello.groups)
        if not groups_info:
            groups_info = {
                shard_id: {
                    "horizon": hello.horizon,
                    "subs": list(hello.subscriptions),
                }
            }
        lost = [g for g in sorted(groups_info) if g in self._lost]
        if lost:
            intact = all(
                self.db.table(name).log.pruned_through <= hello.horizon
                for name in self._all_tables()
            )
            self.metrics.count(
                Metrics.SHARD_REPLAYS if intact else Metrics.SHARD_FALLBACKS
            )
        else:
            # Nothing was lost — failover kept every group serving, so
            # this is a planned catch-up, not a recovery.
            intact = True
            self.metrics.count(Metrics.SHARD_REPLAYS)
        self.zones.register(self._zone(shard_id), self._all_tables(), now)
        self._pinned.pop(shard_id, None)
        for group in sorted(groups_info):
            info = groups_info[group]
            if group in self._lost:
                self._rejoin_primary(shard_id, group, info, now, intact)
            elif group in self._placement:
                live = [
                    h
                    for h in self._placement[group]
                    if h not in self._dead
                ]
                if shard_id not in live and len(live) < 1 + self.replicas:
                    self._rejoin_replica(shard_id, group, info, now)
                elif shard_id not in live:
                    self._drain_store(shard_id, group, now)
            else:
                self._drain_store(shard_id, group, now)
        self._horizons[shard_id] = now
        self._refresh_host_horizon(shard_id)
        if self.replicas:
            self._rerepl.extend(sorted(self._placement))
            self._drain_rereplication(now)
        if not any(
            host == shard_id for host, __ in self._store_horizons
        ):
            # Every store the journal held was drained (its groups are
            # served at full strength elsewhere): the host idles as
            # spare capacity, and an idle host must not pin the logs —
            # its zone would never advance again.
            if self.zones.boundary(self._zone(shard_id)) is not None:
                self.zones.remove(self._zone(shard_id))
        return intact

    def _rejoin_primary(
        self,
        host: int,
        group: int,
        info: Dict,
        now: Timestamp,
        intact: bool,
    ) -> None:
        """The pre-replication recovery path, per group: replay the
        missed window differentially while the router logs still cover
        the store's horizon, or re-seed baselines after GC pruned past
        it; re-register anything the journal lost, drop anything the
        cluster retired; then snap member results to the authoritative
        database (journal recovery rebases subscriptions on their
        registration-era state, so recovered delta old sides can be
        arbitrarily stale — one exact re-evaluation per key at a rare
        recovery buys bit-identical convergence)."""
        held = set(info.get("subs", ()))
        horizon = info.get("horizon", 0)
        owned = self._owned_keys(group)
        missing = [key for key in owned if key not in held]
        stale = sorted(key for key in held if key not in owned)
        deltas: Dict[str, DeltaRelation] = {}
        baselines: Dict[str, Relation] = {}
        if intact:
            window = deltas_since(
                [self.db.table(name) for name in self._all_tables()],
                horizon,
            )
            for name in self._group_tables(owned):
                delta = window.get(name)
                if delta is None:
                    continue
                if self._decls[name].partition_key is not None:
                    delta = partition_filter(
                        delta, self._partition(name, group)
                    )
                if not delta.is_empty():
                    deltas[name] = delta
            for sql_key in missing:
                for name in sorted(set(self._queries[sql_key].table_names)):
                    baselines.setdefault(
                        name, self._shard_view(name, group)
                    )
        else:
            for name in self._group_tables(owned):
                baselines[name] = self._shard_view(name, group)
        subscribe = [
            {"cq": key, "sql": self._queries[key].to_sql()}
            for key in missing
        ]
        self._seq += 1
        reply = self._send(
            host,
            ScatterMessage(
                host,
                self._seq,
                now,
                deltas=deltas,
                baselines=baselines,
                subscribe=subscribe,
                unsubscribe=stale,
                group=group,
            ),
        )
        if reply is None:
            self._on_host_down(host)
            return
        self._clear_group(group)
        self._place(group, host)
        self._lost.discard(group)
        self._store_horizons[(host, group)] = reply.ts
        self._record_store(host, group, reply.counters)
        self._group_served[group] = reply.ts
        self._reconcile(owned, now)

    def _rejoin_replica(
        self, host: int, group: int, info: Dict, now: Timestamp
    ) -> None:
        """Catch a journaled store back up and demote it to replica:
        the group failed over while this host was down, so the promoted
        primary keeps serving — the rejoiner drops its stale
        registrations (its results were served-past by the failover)
        and just re-enters the lockstep."""
        held = sorted(info.get("subs", ()))
        horizon = info.get("horizon", 0)
        owned = self._owned_keys(group)
        tables = self._group_tables(owned)
        intact = all(
            self.db.table(name).log.pruned_through <= horizon
            for name in tables
        )
        deltas: Dict[str, DeltaRelation] = {}
        baselines: Dict[str, Relation] = {}
        if intact:
            window = deltas_since(
                [self.db.table(name) for name in self._all_tables()],
                horizon,
            )
            for name in tables:
                delta = window.get(name)
                if delta is None:
                    continue
                if self._decls[name].partition_key is not None:
                    delta = partition_filter(
                        delta, self._partition(name, group)
                    )
                if not delta.is_empty():
                    deltas[name] = delta
        else:
            for name in tables:
                baselines[name] = self._shard_view(name, group)
        self._seq += 1
        reply = self._send(
            host,
            ScatterMessage(
                host,
                self._seq,
                now,
                deltas=deltas,
                baselines=baselines,
                unsubscribe=held,
                group=group,
            ),
        )
        if reply is None:
            self._on_host_down(host)
            return
        self._place(group, host)
        self._store_horizons[(host, group)] = reply.ts
        self._record_store(host, group, reply.counters)

    def _drain_store(self, host: int, group: int, now: Timestamp) -> None:
        """Best-effort detach of one store (its group moved on)."""
        self._seq += 1
        self._send(host, ShardDrainMessage(host, self._seq, now, group=group))

    def add_shard(self, weight: float = 1.0) -> int:
        """Grow the fleet by one shard (index handoff included).

        A leading refresh consumes every pending window first — commits
        between the last refresh and the resize would otherwise be
        re-sliced into baselines before any store evaluated them.
        Placement then moves with the ring: partitioned tables re-slice
        on every store (each converges onto its new slice through a
        local baseline diff), replicated ``sql_key`` subscriptions
        whose hash moved re-home (unsubscribe + baseline-seeded
        re-register), partition-parallel subscriptions additionally
        register on the new group, and with ``replicas > 0`` the new
        group gets its own replicas. ``weight`` scales the new shard's
        vnode count, so a beefier host immediately owns a
        proportionally larger share of slices and ``sql_key`` homes.
        """
        if not self._started:
            raise ClusterError("start() the cluster before adding shards")
        self.refresh(collect=False)
        new_id = max(self.ring.nodes()) + 1 if len(self.ring) else 0
        previous_home = {
            sql_key: self.ring.lookup(sql_key)
            for sql_key in self._owners
            if sql_key not in self._parallel
        }
        self.backend.spawn(new_id, list(self._decls.values()))
        self.ring.add_node(new_id, weight=weight)
        now = self.db.now()
        self._horizons[new_id] = now
        self.zones.register(self._zone(new_id), self._all_tables(), now)
        self._place(new_id, new_id)
        self._store_horizons[(new_id, new_id)] = now
        # Re-slice partitioned tables everywhere: rows whose owner moved
        # are deleted from the old group and inserted on the new one by
        # each store's local baseline diff.
        partitioned = sorted(
            name
            for name, decl in self._decls.items()
            if decl.partition_key is not None
        )
        if partitioned:
            for group in sorted(self._placement):
                if group == new_id:
                    continue
                for host in list(self._placement[group]):
                    if host in self._dead:
                        continue
                    baselines = {
                        name: self._shard_view(name, group)
                        for name in partitioned
                    }
                    self._seq += 1
                    if self._send(
                        host,
                        ScatterMessage(
                            host,
                            self._seq,
                            now,
                            baselines=baselines,
                            group=group,
                        ),
                    ) is None:
                        self._on_host_down(host)
        # Index handoff + new-group registrations.
        for sql_key in sorted(self._owners):
            query = self._queries[sql_key]
            if sql_key in self._parallel:
                self._owners[sql_key].add(new_id)
                self._seed_group(new_id, sql_key, query, now)
                continue
            new_home = self.ring.lookup(sql_key)
            old_home = previous_home[sql_key]
            if new_home == old_home:
                continue
            self._owners[sql_key] = {new_home}
            old_hosts = [
                h
                for h in self._placement.get(old_home, ())
                if h not in self._dead
            ]
            if old_hosts:
                self._seq += 1
                if self._send(
                    old_hosts[0],
                    ScatterMessage(
                        old_hosts[0],
                        self._seq,
                        now,
                        unsubscribe=[sql_key],
                        group=old_home,
                    ),
                ) is None:
                    self._on_host_down(old_hosts[0])
            self._seed_group(new_home, sql_key, query, now)
        if self.replicas:
            live = self._alive()
            for host in self._replica_targets(
                new_id, min(self.replicas, len(live) - 1)
            ):
                self._seed_replica(new_id, host, now)
        return new_id

    def remove_shard(self, shard_id: int) -> None:
        """Planned drain — the inverse of :meth:`add_shard`.

        A leading refresh makes the handoff gapless (the departing
        stores serve every pending window first). The host's replica
        and promoted stores hand off to survivors (promotion for the
        groups it led, background top-up for the capacity it carried);
        its own group dissolves — partitioned slices re-slice onto the
        survivors through the shrunken ring, replicated ``sql_key``
        subscriptions re-home to the groups their hash now names, and
        surviving replica stores of the dissolved group are drained.
        The process is then stopped cleanly (no journal replay owed),
        and every trace of the host leaves the routing state.
        """
        if not self._started:
            raise ClusterError("start() the cluster before removing shards")
        if shard_id in self._dead:
            raise ClusterError(
                f"shard {shard_id} is dead — remove_shard is the planned "
                "drain; recover it first or leave it for recover_shard"
            )
        if shard_id not in self.ring.nodes():
            raise ClusterError(f"shard {shard_id} is not in the cluster")
        if len(self._alive()) <= 1:
            raise ClusterError("cannot remove the last live shard")
        self.refresh(collect=False)
        now = self.db.now()
        # 1) Hand off the stores this host carries for *other* groups.
        foreign = sorted(
            group
            for group, hosts in self._placement.items()
            if shard_id in hosts and group != shard_id
        )
        for group in foreign:
            others = [
                h for h in self._placement[group] if h != shard_id
            ]
            if not others:
                # Sole holder of a foreign group (it failed over here):
                # seed a replacement replica before letting go.
                candidate = self._replica_targets(
                    group, 1, exclude={shard_id}
                )
                if candidate:
                    self._seed_replica(group, candidate[0], now)
            was_primary = self._placement[group][0] == shard_id
            self._unplace(group, shard_id)
            if not self._placement[group]:
                self._lost.add(group)
            elif was_primary:
                self._promote(group)
            if self.replicas:
                self._rerepl.append(group)
        # 2) Dissolve the host's own group.
        own = shard_id
        owned = self._owned_keys(own)
        replica_hosts = [
            h for h in self._placement.get(own, ()) if h != shard_id
        ]
        self.ring.remove_node(shard_id)
        partitioned = sorted(
            name
            for name, decl in self._decls.items()
            if decl.partition_key is not None
        )
        if partitioned:
            for group in sorted(self._placement):
                if group == own:
                    continue
                for host in list(self._placement[group]):
                    if host in self._dead or host == shard_id:
                        continue
                    baselines = {
                        name: self._shard_view(name, group)
                        for name in partitioned
                    }
                    self._seq += 1
                    if self._send(
                        host,
                        ScatterMessage(
                            host,
                            self._seq,
                            now,
                            baselines=baselines,
                            group=group,
                        ),
                    ) is None:
                        self._on_host_down(host)
        # Re-home the dissolved group's subscriptions.
        for sql_key in owned:
            query = self._queries[sql_key]
            if sql_key in self._parallel:
                self._owners[sql_key].discard(own)
            else:
                new_home = self.ring.lookup(sql_key)
                self._owners[sql_key] = {new_home}
                self._seed_group(new_home, sql_key, query, now)
        # Drain surviving replica stores of the dissolved group, then
        # stop the departing process cleanly.
        for host in replica_hosts:
            if host not in self._dead:
                self._drain_store(host, own, now)
        stop = getattr(self.backend, "stop", None)
        if stop is not None:
            stop(shard_id)
        else:
            self.backend.kill(shard_id)
        # 3) Forget the host — through the incremental bookkeeping
        # helpers, so _load/_host_cost stay consistent with _placement
        # (phantom entries would skew every future _replica_targets
        # ranking).
        self._clear_group(own, forget=True)
        self._lost.discard(own)
        self._group_served.pop(own, None)
        for key in [
            k
            for k in list(self._store_horizons)
            if k[0] == shard_id or k[1] == own
        ]:
            self._store_horizons.pop(key, None)
        for key in [
            k
            for k in list(self._store_counters)
            if k[0] == shard_id or k[1] == own
        ]:
            self._drop_store_counters(key)
        self._horizons.pop(shard_id, None)
        if self.zones.boundary(self._zone(shard_id)) is not None:
            self.zones.remove(self._zone(shard_id))
        self.health.forget(shard_id)
        self._pinned.pop(shard_id, None)
        for pins in self._pinned.values():
            pins.discard(own)
        self._rerepl = [g for g in self._rerepl if g != own]
        self._drain_rereplication(now)

    def _reconcile(self, sql_keys: Sequence[str], now: Timestamp) -> None:
        """Snap members of ``sql_keys`` to the authoritative result,
        notifying the exact catch-up delta each member missed."""
        for sql_key in sql_keys:
            query = self._queries.get(sql_key)
            if query is None:
                continue
            oracle = self.db.query(query, self.metrics)
            for member in list(self._members.get(sql_key, ())):
                sub = self._subs.get(member)
                if sub is None:
                    continue
                catch_up = diff(sub.result, oracle, ts=now)
                if catch_up.is_empty():
                    continue
                sub.result = oracle.copy()
                sub.last_ts = now
                if sub.on_delta is not None:
                    sub.on_delta(sub.cq_name, catch_up, now)

    # -- maintenance --------------------------------------------------------

    def collect_garbage(self) -> GCReport:
        """Prune the router's update logs up to the oldest shard zone.

        A dead host whose groups still await failover or
        re-replication pins every table (its replay window must
        survive); the pin auto-releases once the groups are healthy
        elsewhere, and ``.pinned`` on the report shows the boundary,
        retained log rows, and waiting groups of every pin still held.
        """
        pruned = self.zones.collect()
        return GCReport(pruned, self._pinned_report())

    def _pinned_report(self) -> Dict[str, Dict[str, object]]:
        report: Dict[str, Dict[str, object]] = {}
        for host in sorted(self._pinned):
            zone = self._zone(host)
            boundary = self.zones.boundary(zone)
            if boundary is None:
                continue
            retained = sum(
                len(self.db.table(name).log.since(boundary))
                for name in self._all_tables()
            )
            report[zone] = {
                "boundary": boundary,
                "retained_rows": retained,
                "groups": sorted(self._pinned[host]),
            }
        return report

    def result(self, client_id: str, cq_name: str) -> Relation:
        """The retained (merged) result of one subscription."""
        try:
            sub = self._subs[(client_id, cq_name)]
        except KeyError:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            ) from None
        return sub.result.copy()

    # -- observability ------------------------------------------------------

    def _role(self, host: int, group: int) -> str:
        placement = self._placement.get(group, ())
        return "primary" if placement and placement[0] == host else "replica"

    def stats(self) -> Dict[str, object]:
        """Router counters plus per-host aggregation, placement,
        health, and pinned-zone detail."""
        shards: Dict[int, Dict[str, object]] = {}
        for host in sorted(self.ring.nodes()):
            counters: Dict[str, int] = {}
            groups: Dict[int, Dict[str, object]] = {}
            for (h, group), bag in sorted(self._store_counters.items()):
                if h != host:
                    continue
                for name, value in bag.items():
                    counters[name] = counters.get(name, 0) + value
            for (h, group), horizon in sorted(self._store_horizons.items()):
                if h != host:
                    continue
                groups[group] = {
                    "role": self._role(host, group),
                    "horizon": horizon,
                }
            shards[host] = {
                "alive": host not in self._dead,
                "health": self.health.state(host),
                "horizon": self._horizons.get(host, 0),
                "zone": self.zones.boundary(self._zone(host)),
                "counters": counters,
                "groups": groups,
            }
        totals: Dict[str, int] = {}
        for info in shards.values():
            for name, value in info["counters"].items():
                totals[name] = totals.get(name, 0) + value
        return {
            "now": self.db.now(),
            "seq": self._seq,
            "subscriptions": len(self._subs),
            "sql_keys": len(self._owners),
            "replicas": self.replicas,
            "router": self.metrics.snapshot(),
            "shards": shards,
            "shard_totals": totals,
            "placement": {
                group: list(hosts)
                for group, hosts in sorted(self._placement.items())
            },
            "lost": sorted(self._lost),
            "health": self.health.snapshot(),
            "pinned": self._pinned_report(),
        }

    def prometheus(self, namespace: str = "repro") -> str:
        """One exposition: router samples plus per-store labelled
        samples (``{shard="<host>", group="<group>", role="..."}``),
        collision-free by construction."""
        chunks = [
            prometheus_text(
                self.metrics, namespace, labels={"role": "router"}
            )
        ]
        for host, group in sorted(self._store_counters):
            bag = Metrics()
            # A replica store evaluates nothing, so its counter bag can
            # be empty; the store-horizon sample keeps every store (and
            # its role label) present in the exposition regardless.
            bag.count(
                "cluster_store_horizon",
                self._store_horizons.get((host, group), 0),
            )
            for name, value in self._store_counters[(host, group)].items():
                bag.count(name, value)
            chunks.append(
                prometheus_text(
                    bag,
                    namespace,
                    labels={
                        "shard": str(host),
                        "group": str(group),
                        "role": self._role(host, group),
                    },
                )
            )
        return "".join(chunks)

    def describe(self) -> List[Dict[str, object]]:
        out = []
        for (client_id, cq_name), sub in sorted(self._subs.items()):
            owners = sorted(self._owners.get(sub.sql_key, ()))
            out.append(
                {
                    "client": client_id,
                    "cq": cq_name,
                    "sql_key": sub.sql_key,
                    "shards": owners,
                    "parallel": sub.sql_key in self._parallel,
                    "last_ts": sub.last_ts,
                    "result_rows": len(sub.result),
                }
            )
        return out

    def close(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        return (
            f"ClusterRouter({len(self.ring)} shards, "
            f"{len(self._subs)} subscriptions, now={self.db.now()})"
        )
