"""The cluster router: scatter/gather refresh over partitioned shards.

The router owns the authoritative database (every client commit lands
here first) and drives N shards through refresh cycles:

* **Placement.** Rows of a table with a declared partition key hash to
  exactly one shard through the seeded consistent-hash ring; other
  tables are *replicated on demand* (a shard receives their deltas only
  while it hosts a CQ touching them). Subscriptions over replicated
  tables hash to one shard by canonical SQL text (``sql_key``); a CQ
  touching a partitioned table runs *partition-parallel* on every
  shard, each evaluating over its slice (fragment-and-replicate: such a
  CQ may touch at most one partitioned table, so its partial result
  deltas are tid-disjoint across shards and merge by concatenation).

* **Relevance scatter.** Each cycle consolidates the per-shard missed
  window once and runs it through a router-side
  :class:`~repro.dra.predindex.PredicateIndex` holding every registered
  footprint. Shards none of whose CQ footprints the batch touches get a
  heartbeat instead of data (the Section 5.2 relevance theorem makes
  skipping sound: an entry failing every alias-local predicate cannot
  change any result); new subscriptions are seeded with a baseline
  sync, so earlier skipped windows never leave a gap.

* **Gather + merge.** Partial result deltas come back per ``sql_key``;
  the router merges the tid-disjoint slices (a cross-slice row move
  arrives as delete-on-one-shard + insert-on-another and is recombined
  into a modify), re-runs residual confirmation — the predicate
  conjuncts expressible over the output schema — on the merged Z-set
  delta, applies it to the retained result, and notifies subscribers.

* **Recovery.** Each shard journals scattered state WAL-first; a
  killed shard's zone (``shard:<id>``) keeps the router's update logs
  pinned. :meth:`recover_shard` rebuilds the shard from its journal and
  replays the missed window differentially while the logs still cover
  its horizon, falling back to a baseline re-seed (counted separately)
  once garbage collection has pruned past it.

See DESIGN.md §12 for the protocol walk-through and recovery matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ClusterError, RegistrationError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import _COMPARE_OPS, _SWAPPED, Comparison
from repro.relational.relation import Relation
from repro.relational.sql import parse_query
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.core.gc import ActiveDeltaZones
from repro.delta.capture import deltas_since
from repro.delta.diff import diff
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.predindex import PredicateIndex
from repro.obs.export import prometheus_text
from repro.cluster.ring import HashRing, Partition, partition_filter
from repro.cluster.shard import ROUTER_CLIENT, ClusterShard, TableDecl
from repro.net.messages import (
    GatherReplyMessage,
    Message,
    ScatterMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
)

#: ``(cq_name, delta, ts)`` notification callback.
DeltaCallback = Callable[[str, DeltaRelation, Timestamp], None]


class LocalBackend:
    """Shards as in-process objects (tests, benchmarks, examples).

    ``kill`` abandons the shard object without closing its journal —
    the crash the recovery path is built for. Recovery therefore needs
    a ``wal_root``; a purely in-memory backend raises instead.
    """

    def __init__(self, wal_root: Optional[str] = None, columnar: bool = False):
        self.wal_root = wal_root
        self.columnar = columnar
        self.shards: Dict[int, ClusterShard] = {}

    def spawn(self, shard_id: int, decls: Sequence[TableDecl]) -> ShardHelloMessage:
        if shard_id in self.shards:
            raise ClusterError(f"shard {shard_id} already running")
        shard = ClusterShard(
            shard_id,
            decls,
            wal_root=self.wal_root,
            columnar=self.columnar,
        )
        self.shards[shard_id] = shard
        return shard.hello()

    def send(self, shard_id: int, message: Message) -> GatherReplyMessage:
        try:
            shard = self.shards[shard_id]
        except KeyError:
            raise ClusterError(f"shard {shard_id} is not running") from None
        return shard.handle(message)

    def kill(self, shard_id: int) -> None:
        if self.shards.pop(shard_id, None) is None:
            raise ClusterError(f"shard {shard_id} is not running")

    def recover(
        self, shard_id: int, decls: Sequence[TableDecl]
    ) -> ShardHelloMessage:
        if shard_id in self.shards:
            raise ClusterError(f"shard {shard_id} is still running")
        if self.wal_root is None:
            raise ClusterError(
                "recovery needs a wal_root; this backend is in-memory only"
            )
        shard = ClusterShard.recover(
            shard_id, decls, self.wal_root, columnar=self.columnar
        )
        self.shards[shard_id] = shard
        return shard.hello()

    def alive(self) -> List[int]:
        return sorted(self.shards)

    def shard(self, shard_id: int) -> ClusterShard:
        return self.shards[shard_id]

    def close(self) -> None:
        for shard in self.shards.values():
            shard.close()


class _RouterSub:
    """One client subscription at the router."""

    __slots__ = ("client_id", "cq_name", "sql_key", "result", "last_ts", "on_delta")

    def __init__(
        self,
        client_id: str,
        cq_name: str,
        sql_key: str,
        result: Relation,
        last_ts: Timestamp,
        on_delta: Optional[DeltaCallback],
    ):
        self.client_id = client_id
        self.cq_name = cq_name
        self.sql_key = sql_key
        self.result = result
        self.last_ts = last_ts
        self.on_delta = on_delta


#: One residual conjunct over the output schema:
#: ``(output position, op, constant)``.
Residual = Tuple[int, Callable, object]


class ClusterRouter:
    """Routes commits, subscriptions, and refreshes across N shards."""

    def __init__(
        self,
        shards: int = 3,
        seed: int = 0,
        metrics: Optional[Metrics] = None,
        backend: Optional[LocalBackend] = None,
        vnodes: int = 64,
        auto_gc: bool = False,
    ):
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        self.metrics = metrics if metrics is not None else Metrics()
        self.backend = backend if backend is not None else LocalBackend()
        #: The authoritative database: clients commit here; shards hold
        #: router-scattered copies (slices) of it.
        self.db = Database()
        self.seed = seed
        self.ring = HashRing(seed=seed, vnodes=vnodes)
        self.index = PredicateIndex(self.metrics)
        self.zones = ActiveDeltaZones(self.db)
        self.auto_gc = auto_gc
        self._n_initial = shards
        self._decls: Dict[str, TableDecl] = {}
        self._started = False
        self._seq = 0
        self._horizons: Dict[int, Timestamp] = {}
        self._dead: Set[int] = set()
        self._queries: Dict[str, SPJQuery] = {}
        self._owners: Dict[str, Set[int]] = {}
        self._parallel: Set[str] = set()  # partition-parallel sql_keys
        self._members: Dict[str, List[Tuple[str, str]]] = {}
        self._subs: Dict[Tuple[str, str], _RouterSub] = {}
        self._residuals: Dict[str, Tuple[Residual, ...]] = {}
        self._shard_counters: Dict[int, Dict[str, int]] = {}

    # -- setup -------------------------------------------------------------

    def declare_table(
        self,
        name: str,
        schema,
        partition_key: Optional[str] = None,
        indexes: Sequence[Sequence[str]] = (),
    ) -> TableDecl:
        """Declare one cluster table (before :meth:`start`)."""
        if self._started:
            raise ClusterError("declare tables before start()")
        decl = TableDecl(
            name, schema, partition_key=partition_key, indexes=indexes
        )
        self._decls[name] = decl
        self.db.create_table(name, decl.schema, indexes=decl.indexes)
        return decl

    def start(self) -> None:
        """Spawn the shard fleet and place it on the ring."""
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        decls = list(self._decls.values())
        for shard_id in range(self._n_initial):
            self.backend.spawn(shard_id, decls)
            self.ring.add_node(shard_id)
            self._horizons[shard_id] = self.db.now()
            self.zones.register(
                self._zone(shard_id), self._all_tables(), self.db.now()
            )

    @staticmethod
    def _zone(shard_id: int) -> str:
        return f"shard:{shard_id}"

    def _all_tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._decls))

    def _alive(self) -> List[int]:
        return [s for s in self.ring.nodes() if s not in self._dead]

    def _partition(self, table: str, shard_id: int) -> Partition:
        decl = self._decls[table]
        return Partition(
            table, decl.partition_key, decl.key_position, self.ring, shard_id
        )

    # -- subscriptions ------------------------------------------------------

    def subscribe(
        self,
        client_id: str,
        cq_name: str,
        sql: str,
        on_delta: Optional[DeltaCallback] = None,
    ) -> Relation:
        """Register a CQ cluster-wide; returns the initial result.

        The first subscription of a ``sql_key`` installs the footprint
        in the router's predicate index and seeds the owning shard(s):
        partition-parallel queries (touching a partitioned table) on
        every shard, replicated-only queries on the single shard the
        key hashes to. Later identical subscriptions just join the
        existing group — shard work is independent of the subscriber
        count.
        """
        if not self._started:
            raise ClusterError("start() the cluster before subscribing")
        key = (client_id, cq_name)
        if key in self._subs:
            raise RegistrationError(
                f"client {client_id!r} already registered {cq_name!r}"
            )
        query = parse_query(sql)
        if not isinstance(query, SPJQuery):
            raise RegistrationError(
                "the cluster serves SPJ continual queries"
            )
        for name in set(query.table_names):
            if name not in self._decls:
                raise ClusterError(f"table {name!r} was never declared")
        partitioned = sorted(
            name
            for name in set(query.table_names)
            if self._decls[name].partition_key is not None
        )
        if len(partitioned) > 1:
            raise RegistrationError(
                "a cluster CQ may touch at most one partitioned table "
                f"(got {partitioned}); fragment-and-replicate needs the "
                "partial results to be tid-disjoint"
            )
        sql_key = query.to_sql()
        if sql_key not in self._owners:
            if partitioned:
                owners = set(self.ring.nodes())
                self._parallel.add(sql_key)
            else:
                owners = {self.ring.lookup(sql_key)}
            self._queries[sql_key] = query
            self._owners[sql_key] = owners
            self._members[sql_key] = []
            self._residuals[sql_key] = self._compile_residuals(query)
            scopes = {
                ref.alias: self.db.table(ref.table).schema
                for ref in query.relations
            }
            self.index.add(sql_key, query, scopes)
            for shard_id in sorted(owners - self._dead):
                self._seed(shard_id, sql_key, query)
        members = self._members[sql_key]
        if members:
            # Joining an existing group: share its retained result
            # instead of re-evaluating — subscriber count stays out of
            # registration cost, mirroring shard-side shared groups.
            peer = self._subs[members[0]]
            result, last_ts = peer.result.copy(), peer.last_ts
        else:
            result, last_ts = (
                self.db.query(query, self.metrics),
                self.db.now(),
            )
        sub = _RouterSub(
            client_id, cq_name, sql_key, result, last_ts, on_delta
        )
        self._subs[key] = sub
        self._members[sql_key].append(key)
        return result.copy()

    def unsubscribe(self, client_id: str, cq_name: str) -> None:
        """Drop a subscription; the last member of a ``sql_key`` also
        retires the footprint and the shard-side registrations."""
        sub = self._subs.pop((client_id, cq_name), None)
        if sub is None:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            )
        members = self._members[sub.sql_key]
        members.remove((client_id, cq_name))
        if members:
            return
        sql_key = sub.sql_key
        for shard_id in sorted(self._owners[sql_key] - self._dead):
            if shard_id not in self.ring.nodes():
                continue
            self._seq += 1
            self.backend.send(
                shard_id,
                ScatterMessage(
                    shard_id,
                    self._seq,
                    self.db.now(),
                    unsubscribe=[sql_key],
                ),
            )
        self.index.remove(sql_key)
        for registry in (
            self._queries,
            self._owners,
            self._members,
            self._residuals,
        ):
            registry.pop(sql_key, None)
        self._parallel.discard(sql_key)

    def _seed(self, shard_id: int, sql_key: str, query: SPJQuery) -> None:
        """Install one ``sql_key`` on one shard: baseline-sync every
        table the query touches (sliced for partitioned tables), then
        register. The local baseline diff makes re-seeding an already
        current table free, so this is always sound — it closes any gap
        left by earlier relevance-skipped scatters."""
        baselines: Dict[str, Relation] = {}
        for name in sorted(set(query.table_names)):
            baselines[name] = self._shard_view(name, shard_id)
        self._seq += 1
        self.backend.send(
            shard_id,
            ScatterMessage(
                shard_id,
                self._seq,
                self.db.now(),
                baselines=baselines,
                subscribe=[{"cq": sql_key, "sql": query.to_sql()}],
            ),
        )

    def _shard_view(self, table: str, shard_id: int) -> Relation:
        """The slice of a table's authoritative state one shard holds."""
        current = self.db.table(table).current
        decl = self._decls[table]
        if decl.partition_key is None:
            return current.copy()
        partition = self._partition(table, shard_id)
        out = Relation(current.schema)
        for row in current:
            if partition.accepts(row.values):
                out.add(row.tid, row.values)
        return out

    # -- residual confirmation ---------------------------------------------

    def _compile_residuals(self, query: SPJQuery) -> Tuple[Residual, ...]:
        """The predicate conjuncts re-checkable on gathered entries.

        A conjunct survives compilation when it is a column-vs-literal
        comparison whose column is visible in the output schema (the
        projection keeps it, or the query is single-relation SELECT *).
        Everything else — join conditions, dropped columns — was
        already enforced shard-side and cannot be re-checked here.
        """
        positions: Dict[Tuple[Optional[str], str], int] = {}
        if query.projection is not None:
            for i, col in enumerate(query.projection):
                positions[(col.ref.qualifier, col.ref.name)] = i
                if col.ref.qualifier is not None:
                    positions.setdefault((None, col.ref.name), i)
        elif query.is_single_relation():
            ref = query.relations[0]
            schema = self.db.table(ref.table).schema
            for i, attribute in enumerate(schema):
                positions[(ref.alias, attribute.name)] = i
                positions[(None, attribute.name)] = i
        else:
            return ()
        out: List[Residual] = []
        for conj in query.predicate.conjuncts():
            if not isinstance(conj, Comparison):
                continue
            left, right = conj.left, conj.right
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                ref, const, op = left, right.value, _COMPARE_OPS[conj.op]
            elif isinstance(left, Literal) and isinstance(right, ColumnRef):
                ref, const = right, left.value
                op = _COMPARE_OPS[_SWAPPED[conj.op]]
            else:
                continue
            if const is None:
                continue
            position = positions.get((ref.qualifier, ref.name))
            if position is None:
                continue
            out.append((position, op, const))
        return tuple(out)

    def _confirm(
        self, sql_key: str, entries: List[DeltaEntry]
    ) -> List[DeltaEntry]:
        """Residual confirmation on a merged Z-set delta: a new side
        failing any re-checkable conjunct is dropped (the entry decays
        to its delete half, or vanishes), counted per occurrence."""
        residuals = self._residuals.get(sql_key, ())
        if not residuals:
            return entries
        out: List[DeltaEntry] = []
        for entry in entries:
            new = entry.new
            if new is not None:
                ok = all(
                    new[position] is not None and op(new[position], const)
                    for position, op, const in residuals
                )
                if not ok:
                    self.metrics.count(Metrics.RESIDUAL_DROPS)
                    if entry.old is None:
                        continue
                    entry = DeltaEntry(entry.tid, entry.old, None, entry.ts)
            out.append(entry)
        return out

    # -- refresh ------------------------------------------------------------

    def refresh(self, collect: bool = True) -> int:
        """One cluster refresh cycle: scatter, gather, merge, notify.

        Returns the number of subscriptions that received a delta.
        ``collect`` asks each shard to run its own garbage collection
        after refreshing (router-side collection is separate; see
        :meth:`collect_garbage`).
        """
        if not self._started:
            raise ClusterError("start() the cluster before refreshing")
        now = self.db.now()
        pending: Dict[str, List[DeltaRelation]] = {}
        ts_by_key: Dict[str, Timestamp] = {}
        windows: Dict[Timestamp, Tuple[Dict, Set[str]]] = {}
        for shard_id in self._alive():
            message = self._plan(shard_id, now, collect, windows)
            reply = self.backend.send(shard_id, message)
            self._absorb(shard_id, reply, pending, ts_by_key)
        notified = self._merge_and_notify(pending, ts_by_key, now)
        if self.auto_gc:
            self.collect_garbage()
        return notified

    def _plan(
        self,
        shard_id: int,
        now: Timestamp,
        collect: bool,
        windows: Dict[Timestamp, Tuple[Dict, Set[str]]],
    ) -> Message:
        """The shard's frame for this cycle: a scatter when the missed
        window touches any of its footprints, a heartbeat otherwise.

        ``windows`` memoizes (window, routed-keys) by horizon for the
        cycle: in steady state every shard shares one horizon, so the
        consolidated window is captured and footprint-matched once per
        cycle, not once per shard — the router's cost stays flat as
        shards are added.
        """
        horizon = self._horizons[shard_id]
        cached = windows.get(horizon)
        if cached is None:
            window = deltas_since(
                [self.db.table(name) for name in self._all_tables()],
                horizon,
            )
            routed = self.index.match_batch(window) if window else set()
            cached = windows[horizon] = (window, routed)
        window, routed = cached
        self._seq += 1
        if not window:
            return ShardHeartbeatMessage(shard_id, self._seq, now, collect)
        local = {
            sql_key
            for sql_key in routed
            if shard_id in self._owners.get(sql_key, ())
        }
        deltas: Dict[str, DeltaRelation] = {}
        if local:
            needed = set()
            for sql_key in local:
                needed.update(self._queries[sql_key].table_names)
            for name in sorted(needed):
                delta = window.get(name)
                if delta is None:
                    continue
                if self._decls[name].partition_key is not None:
                    delta = partition_filter(
                        delta, self._partition(name, shard_id)
                    )
                if not delta.is_empty():
                    deltas[name] = delta
        if not deltas:
            self.metrics.count(Metrics.SCATTER_SKIPPED)
            return ShardHeartbeatMessage(shard_id, self._seq, now, collect)
        self.metrics.count(Metrics.SCATTERS)
        return ScatterMessage(
            shard_id, self._seq, now, deltas=deltas, collect=collect
        )

    def _absorb(
        self,
        shard_id: int,
        reply: GatherReplyMessage,
        pending: Dict[str, List[DeltaRelation]],
        ts_by_key: Dict[str, Timestamp],
    ) -> None:
        self._shard_counters[shard_id] = dict(reply.counters)
        self._horizons[shard_id] = reply.ts
        self.zones.advance(self._zone(shard_id), reply.ts)
        for sql_key, delta, ts in reply.entries:
            if sql_key not in self._owners:
                continue  # raced an unsubscribe
            pending.setdefault(sql_key, []).append(delta)
            ts_by_key[sql_key] = max(ts_by_key.get(sql_key, 0), ts)

    def _merge_and_notify(
        self,
        pending: Dict[str, List[DeltaRelation]],
        ts_by_key: Dict[str, Timestamp],
        now: Timestamp,
    ) -> int:
        notified = 0
        for sql_key in sorted(pending):
            parts = pending[sql_key]
            merged = self._merge(sql_key, parts)
            if merged is None or merged.is_empty():
                continue
            ts = ts_by_key.get(sql_key, now)
            for member in list(self._members.get(sql_key, ())):
                sub = self._subs.get(member)
                if sub is None:
                    continue
                sub.result = self._apply(merged, sub.result)
                sub.last_ts = ts
                if sub.on_delta is not None:
                    sub.on_delta(sub.cq_name, merged, ts)
                notified += 1
        return notified

    def _merge(
        self, sql_key: str, parts: List[DeltaRelation]
    ) -> Optional[DeltaRelation]:
        """Concatenate tid-disjoint partial deltas into one Z-set delta.

        The only legitimate tid collision is a cross-slice row move (a
        partition-key update): the old owner contributes the delete
        half, the new owner the insert half — recombined into a modify
        and counted as a merge conflict.
        """
        self.metrics.count(Metrics.CLUSTER_MERGES)
        if len(parts) == 1:
            entries = list(parts[0])
            schema = parts[0].schema
        else:
            schema = parts[0].schema
            by_tid: Dict[object, DeltaEntry] = {}
            for part in parts:
                for entry in part:
                    existing = by_tid.get(entry.tid)
                    if existing is None:
                        by_tid[entry.tid] = entry
                        continue
                    self.metrics.count(Metrics.MERGE_CONFLICTS)
                    combined = self._combine(existing, entry)
                    if combined is None:
                        del by_tid[entry.tid]
                    else:
                        by_tid[entry.tid] = combined
            entries = list(by_tid.values())
        entries = self._confirm(sql_key, entries)
        if not entries:
            return None
        return DeltaRelation(schema, entries)

    @staticmethod
    def _combine(a: DeltaEntry, b: DeltaEntry) -> Optional[DeltaEntry]:
        ts = max(a.ts, b.ts)
        if a.new is None and b.old is None:
            old, new = a.old, b.new
        elif b.new is None and a.old is None:
            old, new = b.old, a.new
        else:
            # Not a clean move; keep the later sighting whole.
            later = a if a.ts >= b.ts else b
            old, new = later.old, later.new
        if old == new:
            return None
        return DeltaEntry(a.tid, old, new, ts)

    @staticmethod
    def _apply(delta: DeltaRelation, result: Relation) -> Relation:
        """``delta.apply_to`` tolerant of recovery-replay skew.

        A recovered shard's catch-up entries interleave with partial
        merges the alive shards already delivered, so two delete shapes
        need care: a re-delivered delete (row already gone — a no-op)
        and a *stale* delete, the old-owner half of a cross-slice row
        move whose new-owner insert landed cycles ago. The old side
        identifies what a delete removes; when it no longer matches the
        retained value, a later entry superseded it and the delete is
        dropped. Inserts and modifies carry the current value outright,
        so applying them late is always safe.
        """
        out = result.copy()
        for entry in delta:
            if entry.new is None:
                if out.get_or_none(entry.tid) == entry.old:
                    out.discard(entry.tid)
            else:
                out.add(entry.tid, entry.new)
        return out

    # -- shard lifecycle ----------------------------------------------------

    def kill_shard(self, shard_id: int, release_zone: bool = False) -> None:
        """Simulate a shard crash: the process state is gone, the
        journal survives. The shard's zone keeps the router logs pinned
        for delta replay unless ``release_zone`` lets GC move on (after
        which recovery must fall back to a baseline re-seed)."""
        if shard_id in self._dead:
            raise ClusterError(f"shard {shard_id} is already dead")
        self.backend.kill(shard_id)
        self._dead.add(shard_id)
        if release_zone:
            self.zones.remove(self._zone(shard_id))

    def recover_shard(self, shard_id: int) -> bool:
        """Rebuild a killed shard and resume it differentially.

        Returns True for a delta replay of the missed window, False for
        the baseline fallback (the router logs no longer reach the
        shard's recovered horizon). Both paths also re-seed any
        subscription the shard's journal lost.

        Retained member results are reconciled against one full
        re-evaluation over the router's authoritative database per
        affected ``sql_key`` instead of trusting the recovered shard's
        catch-up entries: journal recovery rebases subscriptions on
        their registration-era state, so recovered delta old sides can
        be arbitrarily stale and cannot disambiguate a legitimate
        delete from the replayed half of a cross-slice row move whose
        other half an alive shard delivered cycles ago. One exact
        re-evaluation per key at a (rare) recovery buys bit-identical
        convergence; the differential machinery carries every normal
        cycle.
        """
        if shard_id not in self._dead:
            raise ClusterError(f"shard {shard_id} is not dead")
        hello = self.backend.recover(shard_id, list(self._decls.values()))
        self._dead.discard(shard_id)
        horizon = hello.horizon
        now = self.db.now()
        held = set(hello.subscriptions)
        owned = sorted(
            sql_key
            for sql_key, owners in self._owners.items()
            if shard_id in owners
        )
        missing = [key for key in owned if key not in held]
        intact = all(
            self.db.table(name).log.pruned_through <= horizon
            for name in self._all_tables()
        )
        baselines: Dict[str, Relation] = {}
        deltas: Dict[str, DeltaRelation] = {}
        if intact:
            self.metrics.count(Metrics.SHARD_REPLAYS)
            window = deltas_since(
                [self.db.table(name) for name in self._all_tables()],
                horizon,
            )
            needed = set()
            for sql_key in owned:
                needed.update(self._queries[sql_key].table_names)
            for name in sorted(needed):
                delta = window.get(name)
                if delta is None:
                    continue
                if self._decls[name].partition_key is not None:
                    delta = partition_filter(
                        delta, self._partition(name, shard_id)
                    )
                if not delta.is_empty():
                    deltas[name] = delta
            for sql_key in missing:
                for name in sorted(set(self._queries[sql_key].table_names)):
                    baselines.setdefault(
                        name, self._shard_view(name, shard_id)
                    )
        else:
            self.metrics.count(Metrics.SHARD_FALLBACKS)
            needed = set()
            for sql_key in owned:
                needed.update(self._queries[sql_key].table_names)
            for name in sorted(needed):
                baselines[name] = self._shard_view(name, shard_id)
        subscribe = [
            {"cq": sql_key, "sql": self._queries[sql_key].to_sql()}
            for sql_key in missing
        ]
        self._seq += 1
        reply = self.backend.send(
            shard_id,
            ScatterMessage(
                shard_id,
                self._seq,
                now,
                deltas=deltas,
                baselines=baselines,
                subscribe=subscribe,
            ),
        )
        self.zones.register(self._zone(shard_id), self._all_tables(), now)
        pending: Dict[str, List[DeltaRelation]] = {}
        ts_by_key: Dict[str, Timestamp] = {}
        self._absorb(shard_id, reply, pending, ts_by_key)
        self._reconcile(owned, now)
        return intact

    def _reconcile(self, sql_keys: Sequence[str], now: Timestamp) -> None:
        """Snap members of ``sql_keys`` to the authoritative result,
        notifying the exact catch-up delta each member missed."""
        for sql_key in sql_keys:
            query = self._queries.get(sql_key)
            if query is None:
                continue
            oracle = self.db.query(query, self.metrics)
            for member in list(self._members.get(sql_key, ())):
                sub = self._subs.get(member)
                if sub is None:
                    continue
                catch_up = diff(sub.result, oracle, ts=now)
                if catch_up.is_empty():
                    continue
                sub.result = oracle.copy()
                sub.last_ts = now
                if sub.on_delta is not None:
                    sub.on_delta(sub.cq_name, catch_up, now)

    def add_shard(self) -> int:
        """Grow the fleet by one shard (index handoff included).

        Placement moves with the ring: partitioned tables re-slice on
        every shard (each converges onto its new slice through a local
        baseline diff), replicated ``sql_key`` subscriptions whose hash
        moved re-home (unsubscribe + baseline-seeded re-register), and
        partition-parallel subscriptions additionally register on the
        new shard.
        """
        if not self._started:
            raise ClusterError("start() the cluster before adding shards")
        new_id = max(self.ring.nodes()) + 1 if len(self.ring) else 0
        previous_home = {
            sql_key: self.ring.lookup(sql_key)
            for sql_key in self._owners
            if sql_key not in self._parallel
        }
        self.backend.spawn(new_id, list(self._decls.values()))
        self.ring.add_node(new_id)
        now = self.db.now()
        self._horizons[new_id] = now
        self.zones.register(self._zone(new_id), self._all_tables(), now)
        # Re-slice partitioned tables everywhere: rows whose owner moved
        # are deleted from the old shard and inserted on the new one by
        # each shard's local baseline diff.
        partitioned = sorted(
            name
            for name, decl in self._decls.items()
            if decl.partition_key is not None
        )
        for shard_id in self._alive():
            if shard_id == new_id:
                continue
            baselines = {
                name: self._shard_view(name, shard_id)
                for name in partitioned
            }
            if baselines:
                self._seq += 1
                self.backend.send(
                    shard_id,
                    ScatterMessage(
                        shard_id, self._seq, now, baselines=baselines
                    ),
                )
        # Index handoff + new-shard registrations.
        for sql_key in sorted(self._owners):
            query = self._queries[sql_key]
            if sql_key in self._parallel:
                self._owners[sql_key].add(new_id)
                self._seed(new_id, sql_key, query)
                continue
            new_home = self.ring.lookup(sql_key)
            old_home = previous_home[sql_key]
            if new_home == old_home:
                continue
            self._owners[sql_key] = {new_home}
            if old_home not in self._dead and old_home in self.ring.nodes():
                self._seq += 1
                self.backend.send(
                    old_home,
                    ScatterMessage(
                        old_home, self._seq, now, unsubscribe=[sql_key]
                    ),
                )
            self._seed(new_home, sql_key, query)
        return new_id

    # -- maintenance --------------------------------------------------------

    def collect_garbage(self) -> Dict[str, int]:
        """Prune the router's update logs up to the oldest shard zone.

        A dead shard whose zone was not released pins every table (its
        replay window must survive); releasing it lets collection move
        on at the price of a baseline-fallback recovery.
        """
        return self.zones.collect()

    def result(self, client_id: str, cq_name: str) -> Relation:
        """The retained (merged) result of one subscription."""
        try:
            sub = self._subs[(client_id, cq_name)]
        except KeyError:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            ) from None
        return sub.result.copy()

    # -- observability ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Router counters plus per-shard aggregation."""
        shards = {}
        for shard_id in sorted(self.ring.nodes()):
            shards[shard_id] = {
                "alive": shard_id not in self._dead,
                "horizon": self._horizons.get(shard_id, 0),
                "zone": self.zones.boundary(self._zone(shard_id)),
                "counters": dict(self._shard_counters.get(shard_id, {})),
            }
        totals: Dict[str, int] = {}
        for info in shards.values():
            for name, value in info["counters"].items():
                totals[name] = totals.get(name, 0) + value
        return {
            "now": self.db.now(),
            "seq": self._seq,
            "subscriptions": len(self._subs),
            "sql_keys": len(self._owners),
            "router": self.metrics.snapshot(),
            "shards": shards,
            "shard_totals": totals,
        }

    def prometheus(self, namespace: str = "repro") -> str:
        """One exposition: router samples plus per-shard labelled
        samples (``{shard="<id>"}``), collision-free by construction."""
        chunks = [
            prometheus_text(
                self.metrics, namespace, labels={"role": "router"}
            )
        ]
        for shard_id in sorted(self._shard_counters):
            bag = Metrics()
            for name, value in self._shard_counters[shard_id].items():
                bag.count(name, value)
            chunks.append(
                prometheus_text(
                    bag, namespace, labels={"shard": str(shard_id)}
                )
            )
        return "".join(chunks)

    def describe(self) -> List[Dict[str, object]]:
        out = []
        for (client_id, cq_name), sub in sorted(self._subs.items()):
            owners = sorted(self._owners.get(sub.sql_key, ()))
            out.append(
                {
                    "client": client_id,
                    "cq": cq_name,
                    "sql_key": sub.sql_key,
                    "shards": owners,
                    "parallel": sub.sql_key in self._parallel,
                    "last_ts": sub.last_ts,
                    "result_rows": len(sub.result),
                }
            )
        return out

    def close(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        return (
            f"ClusterRouter({len(self.ring)} shards, "
            f"{len(self._subs)} subscriptions, now={self.db.now()})"
        )
