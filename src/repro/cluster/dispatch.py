"""Overlapped scatter/gather: one cycle's dispatch/gather state machine.

The sequential router drove every store through a blocking
send-then-gather, so a cycle's wall-clock was the *sum* of per-store
round-trips and one slow shard stalled everyone behind it.
:class:`CycleEngine` replaces that loop for the refresh path: every
frame the cycle plans (scatters, heartbeats, replica lockstep slices)
is dispatched up front, then replies are gathered as they arrive from
whichever host answers first, so the cycle's wall-clock is bounded by
the slowest *host*, not the fleet.

The engine is transport-agnostic: it drives any backend exposing the
non-blocking trio ``post(host, message)`` / ``collect(timeout)`` /
``host_alive(host)``. ``ProcessBackend`` implements ``collect`` with
``multiprocessing.connection.wait`` — a ``selectors`` multiplex over
the shard pipes' file descriptors — and ``LocalBackend`` with a thread
pool draining into a queue. Frames to one host stay FIFO with at most
one outstanding request (mirroring the single-threaded shard worker on
the other end of a pipe); overlap happens *across* hosts.

Bookkeeping rules the rest of the router relies on:

* **One clock.** Every per-request deadline and retry timer is a
  ``time.monotonic`` instant; the gather wait is sized to the nearest
  timer, so a host backing off never stalls another host's gather
  (this replaces the blocking backoff sleep inside the sequential
  ``_send``).
* **Same failure accounting.** A deadline miss counts a scatter
  timeout and one health failure, a retry counts a scatter retry, and
  exhaustion hands the host to ``ClusterRouter._on_host_down`` —
  byte-for-byte the sequential schedule, just without the sleeps. A
  torn connection whose process is actually gone
  (``not host_alive(host)``) fails fast instead of burning the
  remaining ``retries × backoff`` wall-clock; the health machine still
  ends at *dead* through the same transitions.
* **Exactly-once.** Retries re-post the *same* frame (same ``seq``),
  so the shard-side seq-dedup reply cache keeps at-least-once delivery
  exactly-once application; late replies from timed-out attempts pair
  by seq with the completed set and are discarded (counted as stale).
* **Arrival-independent merge.** The engine only *records* replies;
  the router absorbs them after ``run()`` in sorted group/placement
  order, so merge and notification order never depend on which host
  answered first.
* **Failover inside the cycle.** When a host exhausts its schedule the
  router's ``_on_host_down`` runs immediately; promotions it triggers
  are submitted back into the engine at the *front* of the target
  host's queue, so a promote still precedes the new primary's scatter
  whenever that frame has not been dispatched yet (the bit-identical
  failover path). If the lockstep frame already ran, the promote's
  horizon mismatch queues the exact reconcile, exactly as the
  sequential loop's ordering would.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ClusterError, ShardTimeout
from repro.metrics import Metrics
from repro.net.messages import GatherReplyMessage, Message

#: Engine request kinds: ``refresh`` replies feed the merge via the
#: router's end-of-cycle absorb; ``promote`` replies complete a
#: failover via ``_finish_promote``.
REFRESH = "refresh"
PROMOTE = "promote"


def supports_overlap(backend) -> bool:
    """Whether ``backend`` exposes the non-blocking dispatch trio."""
    return all(
        callable(getattr(backend, name, None))
        for name in ("post", "collect", "host_alive")
    )


class _Request:
    """One in-flight frame: its target, retry state, and timers."""

    __slots__ = (
        "host",
        "group",
        "message",
        "kind",
        "context",
        "attempt",
        "deadline",
        "retry_at",
        "reply",
        "failed",
    )

    def __init__(self, host: int, group: int, message: Message, kind: str, context):
        seq = getattr(message, "seq", None)
        if not isinstance(seq, int):
            raise ClusterError(
                f"cycle frames need an integer seq to pair replies; got "
                f"{seq!r} on {type(message).__name__}"
            )
        self.host = host
        self.group = group
        self.message = message
        self.kind = kind
        self.context = context
        self.attempt = 1
        self.deadline: Optional[float] = None  # set when posted
        self.retry_at: Optional[float] = None  # set while backing off
        self.reply: Optional[GatherReplyMessage] = None
        self.failed = False

    @property
    def seq(self) -> int:
        return self.message.seq


class CycleEngine:
    """Dispatch-all-then-gather driver for one router refresh cycle."""

    def __init__(self, router, max_wait: float = 0.25):
        self.router = router
        self.backend = router.backend
        self.metrics: Metrics = router.metrics
        #: Upper bound on a single gather wait, so newly submitted work
        #: (a promote queued by a failover on another host) is picked
        #: up promptly even while every timer is far away.
        self.max_wait = max_wait
        self._queues: Dict[int, Deque[_Request]] = {}
        #: At most one outstanding request per host (the worker on the
        #: other side is serial; pipelining buys nothing and would
        #: break request/reply pairing on timeout).
        self._outstanding: Dict[int, _Request] = {}
        #: ``(host, group) -> reply`` for refresh-kind frames; the
        #: router absorbs these in sorted order after :meth:`run`.
        self.replies: Dict[Tuple[int, int], GatherReplyMessage] = {}

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        host: int,
        group: int,
        message: Message,
        kind: str = REFRESH,
        front: bool = False,
        context=None,
    ) -> None:
        """Queue one frame for ``host``; dispatched FIFO per host.

        ``front=True`` (promotions) jumps the not-yet-dispatched part
        of the queue: the promote precedes the new primary's lockstep
        scatter when that scatter has not gone out yet, preserving the
        sequential loop's bit-identical failover ordering.
        """
        request = _Request(host, group, message, kind, context)
        queue = self._queues.setdefault(host, deque())
        if front:
            queue.appendleft(request)
        else:
            queue.append(request)

    # -- the gather loop ----------------------------------------------------

    def run(self) -> None:
        """Drive every queued frame to a reply or an exhausted host."""
        self._pump()
        while self._outstanding or any(self._queues.values()):
            now = time.monotonic()
            self._fire_timers(now)
            self._pump()
            if not self._outstanding and not any(self._queues.values()):
                break
            timeout = self._next_wait(time.monotonic())
            for host, seq, payload in self.backend.collect(timeout):
                if isinstance(payload, ShardTimeout):
                    self._on_timeout(self._outstanding.get(host))
                elif isinstance(payload, Exception):
                    self._on_torn(self._outstanding.get(host))
                else:
                    self._on_reply(host, seq, payload)
            self._pump()

    def _pump(self) -> None:
        """Post the head of every idle live host's queue."""
        for host in list(self._outstanding):
            # A failover cascade can declare a host dead while another
            # of its frames is still in flight; waiting out that
            # frame's deadline would only charge a dead host more
            # failures, so drop it on the floor here.
            if host in self.router._dead:
                self._abandon(host)
        for host, queue in list(self._queues.items()):
            if not queue or host in self._outstanding:
                continue
            if host in self.router._dead:
                self._abandon(host)
                continue
            request = queue.popleft()
            self._post(request)

    def _post(self, request: _Request) -> None:
        try:
            self.backend.post(request.host, request.message)
        except ClusterError:
            # The post itself failed (conn torn and reaped during a
            # backoff window, host never spawned, ...). Clear the
            # timers *before* dispatching the failure: a stale past
            # ``retry_at`` would make ``_fire_timers`` re-fire every
            # iteration while ``_on_torn``'s backing-off guard
            # swallowed the event — a busy livelock that never reaches
            # the exhaustion check.
            request.retry_at = None
            request.deadline = None
            self._outstanding[request.host] = request
            self._on_torn(request)
            return
        timeout = self.router._request_timeout
        request.deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        request.retry_at = None
        self._outstanding[request.host] = request

    def _next_wait(self, now: float) -> float:
        horizon = now + self.max_wait
        for request in self._outstanding.values():
            if request.retry_at is not None:
                horizon = min(horizon, request.retry_at)
            elif request.deadline is not None:
                horizon = min(horizon, request.deadline)
        return max(0.0, horizon - now)

    def _fire_timers(self, now: float) -> None:
        for host in list(self._outstanding):
            request = self._outstanding.get(host)
            if request is None:
                continue
            if request.retry_at is not None:
                if now >= request.retry_at:
                    self.metrics.count(Metrics.SCATTER_RETRIES)
                    request.attempt += 1
                    del self._outstanding[host]
                    self._post(request)
            elif request.deadline is not None and now >= request.deadline:
                self._on_timeout(request)

    # -- event handling -----------------------------------------------------

    def _on_reply(self, host: int, seq, reply) -> None:
        request = self._outstanding.get(host)
        if (
            request is None
            or not isinstance(seq, int)
            or seq != request.seq
        ):
            # Either a seqless frame (never pairable), the original
            # answer of a timed-out attempt whose retry already paired
            # (same seq, already in the completed set), or a leftover
            # from a previous cycle. All are discarded, never matched.
            self.metrics.count(Metrics.STALE_REPLIES)
            return
        del self._outstanding[host]
        self.router.health.success(host)
        request.reply = reply
        self._settle(request)

    def _on_timeout(self, request: Optional[_Request]) -> None:
        """A deadline miss (engine timer or transport-raised)."""
        if request is None or request.retry_at is not None:
            return
        self.metrics.count(Metrics.SCATTER_TIMEOUTS)
        self.router._record_failure(request.host)
        self._retry_or_exhaust(request)

    def _on_torn(self, request: Optional[_Request]) -> None:
        """A torn connection (EOF/injected crash) on the host's pipe."""
        if request is None:
            return
        # A torn pipe is a real failure even while the request is
        # backing off (timeout -> backoff -> process dies is exactly
        # how the conn gets reaped): cancel the pending retry rather
        # than swallow the event, then exhaust/fail-fast below.
        request.retry_at = None
        request.deadline = None
        self.router._record_failure(request.host)
        if not self.backend.host_alive(request.host):
            # The process behind the pipe is gone: no backoff schedule
            # can heal this connection, so skip straight to failover
            # instead of burning retries × backoff of wall-clock.
            self.metrics.count(Metrics.SCATTER_FAILFASTS)
            self._exhaust(request)
            return
        self._retry_or_exhaust(request)

    def _retry_or_exhaust(self, request: _Request) -> None:
        if request.attempt >= max(1, self.router._retries + 1):
            self._exhaust(request)
            return
        delay = self.router.health.backoff(request.attempt)
        request.retry_at = time.monotonic() + delay
        request.deadline = None

    def _exhaust(self, request: _Request) -> None:
        host = request.host
        self._outstanding.pop(host, None)
        request.failed = True
        self._settle(request)
        if request.kind == REFRESH:
            self.router._on_host_down(host)
            self._abandon(host)

    def _abandon(self, host: int) -> None:
        """Drop a downed host's remaining frames (it left the cycle)."""
        queue = self._queues.get(host)
        if queue:
            queue.clear()
        dangling = self._outstanding.pop(host, None)
        if dangling is not None:
            dangling.failed = True
            self._settle(dangling)

    def _settle(self, request: _Request) -> None:
        """Route a finished request's outcome back to the router."""
        reply = None if request.failed else request.reply
        if request.kind == PROMOTE:
            served, owned = request.context
            self.router._finish_promote(
                request.group, request.host, served, owned, reply
            )
        elif reply is not None:
            self.replies[(request.host, request.group)] = reply
