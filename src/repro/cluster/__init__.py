"""Sharded CQ cluster: partitioned shards behind a scatter/gather router.

The paper's differential refresh model distributes naturally: a delta
batch is relevant only to the CQs whose footprints it touches
(Section 5.2), so scattering each consolidated batch to exactly the
shards owning those footprints divides refresh work while preserving
exactness. With ``replicas > 0`` every placement group also keeps
lockstep replica stores on distinct hosts, and a failed primary is
promoted within the refresh cycle that detects it. See DESIGN.md §12
for the protocol, failover walk-through, and recovery matrix.
"""

from repro.cluster.health import FaultInjector, HealthMonitor
from repro.cluster.proc import ProcessBackend
from repro.cluster.ring import HashRing, Partition, partition_delta
from repro.cluster.router import (
    ClusterRouter,
    GCReport,
    LocalBackend,
    TableDecl,
)
from repro.cluster.shard import ClusterShard, ShardHost

__all__ = [
    "ClusterRouter",
    "ClusterShard",
    "FaultInjector",
    "GCReport",
    "HashRing",
    "HealthMonitor",
    "LocalBackend",
    "Partition",
    "ProcessBackend",
    "ShardHost",
    "TableDecl",
    "partition_delta",
]
