"""Sharded CQ cluster: partitioned shards behind a scatter/gather router.

The paper's differential refresh model distributes naturally: a delta
batch is relevant only to the CQs whose footprints it touches
(Section 5.2), so scattering each consolidated batch to exactly the
shards owning those footprints divides refresh work while preserving
exactness. See DESIGN.md §12 for the protocol and recovery matrix.
"""

from repro.cluster.proc import ProcessBackend
from repro.cluster.ring import HashRing, Partition, partition_delta
from repro.cluster.router import ClusterRouter, LocalBackend, TableDecl
from repro.cluster.shard import ClusterShard

__all__ = [
    "ClusterRouter",
    "ClusterShard",
    "HashRing",
    "LocalBackend",
    "Partition",
    "ProcessBackend",
    "TableDecl",
    "partition_delta",
]
