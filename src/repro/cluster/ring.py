"""Seeded consistent hashing for partition and subscription placement.

Two placement decisions use the same ring:

* rows of a table with a declared partition key hash by
  ``"<table>:<key value>"`` to the shard owning that slice, and
* subscriptions over replicated tables hash by their canonical SQL
  text (``sql_key``) to the shard owning that predicate-index entry
  and shared-materialization group.

The ring is *seeded*: every router (and every recovery) derives the
identical placement from the same seed and node set, so scatter
targets never depend on process-lifetime state. Virtual nodes keep
slices balanced when the node count is small.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.delta.differential import DeltaEntry, DeltaRelation


def _position(seed: int, token: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}:{token}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes."""

    def __init__(
        self,
        nodes: Iterable[int] = (),
        seed: int = 0,
        vnodes: int = 64,
    ):
        if vnodes <= 0:
            raise ValueError("HashRing needs vnodes >= 1")
        self.seed = seed
        self.vnodes = vnodes
        self._nodes: List[int] = []
        self._weights: Dict[int, float] = {}
        self._points: List[Tuple[int, int]] = []  # (position, node)
        for node in nodes:
            self.add_node(node)

    def nodes(self) -> List[int]:
        return list(self._nodes)

    def weight(self, node: int) -> float:
        """The node's placement weight (1.0 unless declared otherwise)."""
        return self._weights.get(node, 1.0)

    def weights(self) -> Dict[int, float]:
        return dict(self._weights)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def add_node(self, node: int, weight: float = 1.0) -> None:
        """Place ``node`` with ``weight × vnodes`` virtual nodes.

        Weight scales the vnode count, so a weight-2 node owns ~2x the
        key space of a weight-1 peer — the heterogeneous-fleet knob.
        The first ``vnodes`` tokens of a weighted node are identical to
        its unweighted tokens, so raising a node's weight only *adds*
        ring points: keys either stay put or move onto the heavier
        node, never shuffle between unrelated survivors.
        """
        if node in self._nodes:
            raise ValueError(f"node {node} is already on the ring")
        if weight <= 0:
            raise ValueError("node weight must be > 0")
        self._nodes.append(node)
        self._weights[node] = weight
        for replica in range(max(1, round(self.vnodes * weight))):
            self._points.append((_position(self.seed, f"{node}#{replica}"), node))
        self._points.sort()

    def remove_node(self, node: int) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node} is not on the ring")
        self._nodes.remove(node)
        self._weights.pop(node, None)
        self._points = [(pos, n) for pos, n in self._points if n != node]

    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (clockwise-next virtual node)."""
        if not self._points:
            raise ValueError("lookup on an empty ring")
        position = _position(self.seed, key)
        index = bisect.bisect_right(self._points, (position, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def lookup_n(self, key: str, n: int) -> List[int]:
        """The first ``n`` *distinct* shards clockwise from ``key``.

        The head of the list is :meth:`lookup`; the tail is the
        deterministic successor order replica placement uses — every
        router (and every recovery) derives the same preference list
        from the same seed and node set. Returns fewer than ``n``
        entries when the ring has fewer nodes.
        """
        if not self._points:
            raise ValueError("lookup on an empty ring")
        position = _position(self.seed, key)
        start = bisect.bisect_right(self._points, (position, -1))
        out: List[int] = []
        seen = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node in seen:
                continue
            seen.add(node)
            out.append(node)
            if len(out) >= n:
                break
        return out

    def __repr__(self) -> str:
        return f"HashRing({sorted(self._nodes)}, seed={self.seed})"


class Partition:
    """One shard's slice of a hash-partitioned table.

    ``accepts(values)`` answers whether a row belongs to this shard:
    the partition-key column hashes through the shared ring. The same
    object also serves partition-aware manager registration — a
    :class:`~repro.core.manager.CQManager` given a ``partition=``
    restricts a CQ's delta reads to the slice it owns.
    """

    __slots__ = ("table", "column", "position", "ring", "node")

    def __init__(
        self, table: str, column: str, position: int, ring: HashRing, node: int
    ):
        self.table = table
        self.column = column
        self.position = position
        self.ring = ring
        self.node = node

    def owner(self, values: Tuple) -> int:
        return self.ring.lookup(f"{self.table}:{values[self.position]}")

    def accepts(self, values: Optional[Tuple]) -> bool:
        return values is not None and self.owner(values) == self.node

    def __repr__(self) -> str:
        return (
            f"Partition({self.table}.{self.column} -> shard {self.node})"
        )


def _slice_entry(
    entry: DeltaEntry, old_mine: bool, new_mine: bool
) -> Optional[DeltaEntry]:
    """The part of one delta entry that belongs to a slice.

    A modification whose row migrates *across* slices splits: the old
    side's owner sees a delete, the new side's owner an insert. Entries
    entirely outside the slice vanish.
    """
    if old_mine and new_mine:
        return entry
    if old_mine:
        return DeltaEntry(entry.tid, entry.old, None, entry.ts)
    if new_mine:
        return DeltaEntry(entry.tid, None, entry.new, entry.ts)
    return None


def partition_filter(
    delta: DeltaRelation, partition: Partition
) -> DeltaRelation:
    """Restrict a consolidated delta to one shard's slice."""
    out: List[DeltaEntry] = []
    for entry in delta:
        sliced = _slice_entry(
            entry,
            partition.accepts(entry.old),
            partition.accepts(entry.new),
        )
        if sliced is not None:
            out.append(sliced)
    return DeltaRelation(delta.schema, out)


def partition_delta(
    delta: DeltaRelation, table: str, position: int, ring: HashRing
) -> Dict[int, DeltaRelation]:
    """Split a consolidated delta into per-shard slices.

    Returns only non-empty slices; the union of the slices is exactly
    ``delta`` with cross-slice modifications rewritten as
    delete-at-old-owner + insert-at-new-owner.
    """
    per_shard: Dict[int, List[DeltaEntry]] = {}

    def owner(values) -> Optional[int]:
        if values is None:
            return None
        return ring.lookup(f"{table}:{values[position]}")

    for entry in delta:
        old_owner = owner(entry.old)
        new_owner = owner(entry.new)
        for node in {o for o in (old_owner, new_owner) if o is not None}:
            sliced = _slice_entry(
                entry, old_owner == node, new_owner == node
            )
            if sliced is not None:
                per_shard.setdefault(node, []).append(sliced)
    return {
        node: DeltaRelation(delta.schema, entries)
        for node, entries in per_shard.items()
    }
