"""The paper's running example: a stock-quote database.

``stocks(sid, name, price)`` mirrors Example 1's relation (tid, Name,
Price per 100 units); ``trades(sid, shares, deal)`` joins against it
for the multi-relation experiments. Prices are drawn uniformly from
``[price_low, price_high)``, so a selection ``price > x`` has an
analytically known selectivity — the control knob of experiment E4.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.relational.relation import Tid
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database
from repro.workload.zipf import ZipfSampler

STOCKS_SCHEMA = Schema.of(
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
)

TRADES_SCHEMA = Schema.of(
    ("sid", AttributeType.INT),
    ("shares", AttributeType.INT),
    ("deal", AttributeType.INT),
)

_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def symbol_name(sid: int) -> str:
    """A deterministic 3-letter ticker symbol for a stock id."""
    a, rest = divmod(sid, 26 * 26)
    b, c = divmod(rest, 26)
    return _LETTERS[a % 26] + _LETTERS[b] + _LETTERS[c]


class StockMarket:
    """Populates and perturbs the stocks/trades tables deterministically."""

    def __init__(
        self,
        db: Database,
        seed: int = 7,
        price_low: int = 0,
        price_high: int = 1000,
        with_trades: bool = False,
        index_columns: Sequence[Sequence[str]] = (("sid",),),
    ):
        self.db = db
        self.rng = random.Random(seed)
        self.price_low = price_low
        self.price_high = price_high
        self.stocks = db.create_table("stocks", STOCKS_SCHEMA, indexes=index_columns)
        self.trades = (
            db.create_table("trades", TRADES_SCHEMA, indexes=[("sid",)])
            if with_trades
            else None
        )
        self._next_sid = 1
        self._live_tids: List[Tid] = []

    # -- population -----------------------------------------------------------

    def _new_row(self):
        sid = self._next_sid
        self._next_sid += 1
        price = self.rng.randrange(self.price_low, self.price_high)
        return (sid, symbol_name(sid), price)

    def populate(self, n_rows: int, trades_per_stock: int = 0) -> None:
        rows = [self._new_row() for __ in range(n_rows)]
        self._live_tids.extend(self.stocks.insert_many(rows))
        if trades_per_stock and self.trades is not None:
            trade_rows = []
            for sid, __, price in rows:
                for __ in range(trades_per_stock):
                    shares = self.rng.randrange(1, 100)
                    trade_rows.append((sid, shares, shares * price))
            self.trades.insert_many(trade_rows)

    # -- perturbation ------------------------------------------------------------

    def tick(
        self,
        n_updates: int,
        p_insert: float = 0.0,
        p_delete: float = 0.0,
        volatility: int = 50,
        zipf: Optional[ZipfSampler] = None,
    ) -> int:
        """Apply one batch of market activity in a single transaction.

        Each update is an insert (new listing) with probability
        ``p_insert``, a delete (delisting) with ``p_delete``, else a
        price modification by a uniform step in [-volatility,
        volatility] clamped to the price range. ``zipf`` optionally
        skews which rows get modified. Returns operations applied.
        """
        applied = 0
        with self.db.begin() as txn:
            for __ in range(n_updates):
                roll = self.rng.random()
                if roll < p_insert:
                    tid = txn.insert_into(self.stocks, self._new_row())
                    self._live_tids.append(tid)
                elif roll < p_insert + p_delete and self._live_tids:
                    position = self.rng.randrange(len(self._live_tids))
                    tid = self._live_tids.pop(position)
                    txn.delete_from(self.stocks, tid)
                elif self._live_tids:
                    position = (
                        min(zipf.sample(), len(self._live_tids) - 1)
                        if zipf is not None
                        else self.rng.randrange(len(self._live_tids))
                    )
                    tid = self._live_tids[position]
                    values = txn.read(self.stocks, tid)
                    if values is None:
                        continue
                    step = self.rng.randint(-volatility, volatility)
                    price = max(
                        self.price_low,
                        min(self.price_high - 1, values[2] + step),
                    )
                    txn.modify_in(self.stocks, tid, updates={"price": price})
                else:
                    continue
                applied += 1
        return applied

    def modify_in_band(
        self, n_updates: int, low: int, high: int
    ) -> int:
        """Set ``n_updates`` random rows' prices uniformly in [low, high).

        Used to steer updates into (or away from) a query's selection
        band — the relevance knob of experiment E10.
        """
        applied = 0
        with self.db.begin() as txn:
            for __ in range(min(n_updates, len(self._live_tids))):
                tid = self._live_tids[self.rng.randrange(len(self._live_tids))]
                price = self.rng.randrange(low, high)
                txn.modify_in(self.stocks, tid, updates={"price": price})
                applied += 1
        return applied

    def selectivity_of(self, threshold: int) -> float:
        """Analytic selectivity of ``price > threshold``."""
        span = self.price_high - self.price_low
        above = max(0, self.price_high - 1 - threshold)
        return min(1.0, above / span)

    def live_count(self) -> int:
        return len(self.stocks)
