"""Zipf-skewed subscriber populations for the fan-out experiments.

A fan-out deployment is many subscribers running *parameterized*
variants of a few query templates: most subscribers watch a handful of
popular slices, a long tail watches everything else. This module
stamps out such a population deterministically — template popularity
follows a Zipf law over template rank, and every subscription is a
``(name, sql)`` pair ready for ``CQManager.register_sql`` or a
``CQClient.register`` call.

Two template families cover the predicate-index shapes:

* equality — ``WHERE <column> = v`` (hash-bucket routing), and
* interval — ``WHERE <column> >= lo AND <column> < hi`` (interval
  stabbing).

Because popular templates repeat with identical parameters, the
generated population also exercises shared materialization: repeats
share a canonical SQL text, so the manager/server collapses them into
one maintained group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class Subscription:
    """One generated subscriber: a name, its SQL, and its template rank."""

    name: str
    sql: str
    template_rank: int

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.name, self.sql)


@dataclass(frozen=True)
class _Template:
    rank: int
    sql: str


class FanoutWorkload:
    """Stamps out a Zipf-skewed population of parameterized subscriptions.

    ``n_templates`` distinct predicate templates are instantiated over
    ``domain = [low, high)``; each generated subscriber picks its
    template by Zipf rank (exponent ``skew``), so rank-0 templates
    collect the bulk of the population. ``eq_fraction`` of the
    templates are equality predicates, the rest half-open intervals of
    width ``interval_width``. Everything is driven by one seeded RNG:
    the same constructor arguments always produce the same
    subscriptions, in the same order.
    """

    def __init__(
        self,
        n_templates: int = 100,
        seed: int = 0,
        skew: float = 1.0,
        table: str = "stocks",
        column: str = "price",
        projection: str = "name, price",
        domain: Tuple[int, int] = (0, 1000),
        eq_fraction: float = 0.5,
        interval_width: int = 50,
    ):
        if n_templates <= 0:
            raise ValueError("FanoutWorkload needs n_templates >= 1")
        low, high = domain
        if high <= low:
            raise ValueError("domain must be a non-empty half-open interval")
        if not 0.0 <= eq_fraction <= 1.0:
            raise ValueError("eq_fraction must lie in [0, 1]")
        if interval_width <= 0:
            raise ValueError("interval_width must be positive")
        self.table = table
        self.column = column
        self.domain = (low, high)
        self.rng = random.Random(seed)
        self.sampler = ZipfSampler(n_templates, s=skew, rng=self.rng)
        self._templates: List[_Template] = []
        n_eq = round(n_templates * eq_fraction)
        for rank in range(n_templates):
            if rank < n_eq:
                value = self.rng.randrange(low, high)
                predicate = f"{column} = {value}"
            else:
                span = min(interval_width, high - low)
                lo = self.rng.randrange(low, high - span + 1)
                predicate = f"{column} >= {lo} AND {column} < {lo + span}"
            self._templates.append(
                _Template(
                    rank,
                    f"SELECT {projection} FROM {table} WHERE {predicate}",
                )
            )
        self._issued = 0

    def templates(self) -> List[str]:
        """The distinct template SQL texts, by rank."""
        return [t.sql for t in self._templates]

    def next_subscription(self) -> Subscription:
        """One more subscriber, drawn from the Zipf popularity law."""
        rank = self.sampler.sample()
        name = f"sub{self._issued}"
        self._issued += 1
        return Subscription(name, self._templates[rank].sql, rank)

    def subscriptions(self, count: int) -> List[Subscription]:
        """The next ``count`` subscribers (deterministic per seed)."""
        return [self.next_subscription() for __ in range(count)]
