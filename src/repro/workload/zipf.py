"""Deterministic Zipf sampling for skewed update targeting."""

from __future__ import annotations

import bisect
import random
from typing import List


class ZipfSampler:
    """Samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s.

    Uses a precomputed CDF and binary search, so sampling is O(log n)
    and fully determined by the supplied RNG.
    """

    def __init__(self, n: int, s: float = 1.0, rng: random.Random = None):
        if n <= 0:
            raise ValueError("ZipfSampler needs n >= 1")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        self.rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc / total)
        self._cdf = cumulative

    def sample(self) -> int:
        """One rank in [0, n)."""
        u = self.rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for __ in range(count)]
