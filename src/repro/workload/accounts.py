"""The checking-accounts workload (paper Sections 3.2 and 5.3).

``accounts(acct, owner, branch, amount)`` backs the sum-up epsilon
query "how many millions of dollars she has in all the checking
accounts". Deposits and withdrawals modify balances; accounts open and
close. The *drift* knob biases deposits over withdrawals so benchmarks
can control how fast the NetChangeEpsilon divergence accumulates.
"""

from __future__ import annotations

import random
from typing import List

from repro.relational.relation import Tid
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database

ACCOUNTS_SCHEMA = Schema.of(
    ("acct", AttributeType.INT),
    ("owner", AttributeType.STR),
    ("branch", AttributeType.STR),
    ("amount", AttributeType.FLOAT),
)

_BRANCHES = ("downtown", "campus", "airport", "harbor")


class Bank:
    """Populates and perturbs the accounts table deterministically."""

    def __init__(self, db: Database, seed: int = 11):
        self.db = db
        self.rng = random.Random(seed)
        self.accounts = db.create_table("accounts", ACCOUNTS_SCHEMA)
        self._next_acct = 1
        self._live_tids: List[Tid] = []

    def _new_row(self):
        acct = self._next_acct
        self._next_acct += 1
        owner = f"cust{acct:06d}"
        branch = _BRANCHES[acct % len(_BRANCHES)]
        amount = float(self.rng.randrange(100, 100_000))
        return (acct, owner, branch, amount)

    def populate(self, n_accounts: int) -> None:
        rows = [self._new_row() for __ in range(n_accounts)]
        self._live_tids.extend(self.accounts.insert_many(rows))

    def business_day(
        self,
        n_transactions: int,
        mean_amount: float = 500.0,
        deposit_bias: float = 0.5,
        p_open: float = 0.0,
        p_close: float = 0.0,
    ) -> float:
        """One batch of banking activity; returns the net money moved.

        ``deposit_bias`` is the probability a balance change is a
        deposit (0.5 = balanced, so net drift accumulates slowly; 1.0 =
        all deposits, fastest drift).
        """
        net = 0.0
        with self.db.begin() as txn:
            for __ in range(n_transactions):
                roll = self.rng.random()
                if roll < p_open:
                    tid = txn.insert_into(self.accounts, self._new_row())
                    self._live_tids.append(tid)
                    continue
                if roll < p_open + p_close and self._live_tids:
                    position = self.rng.randrange(len(self._live_tids))
                    tid = self._live_tids.pop(position)
                    values = txn.read(self.accounts, tid)
                    if values is not None:
                        net -= values[3]
                        txn.delete_from(self.accounts, tid)
                    continue
                if not self._live_tids:
                    continue
                tid = self._live_tids[self.rng.randrange(len(self._live_tids))]
                values = txn.read(self.accounts, tid)
                if values is None:
                    continue
                amount = self.rng.expovariate(1.0 / mean_amount)
                if self.rng.random() >= deposit_bias:
                    amount = -min(amount, values[3])  # no overdrafts
                txn.modify_in(
                    self.accounts, tid, updates={"amount": values[3] + amount}
                )
                net += amount
        return net

    def total_balance(self) -> float:
        return sum(row.values[3] for row in self.accounts.rows())

    def live_count(self) -> int:
        return len(self.accounts)
