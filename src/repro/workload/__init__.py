"""Deterministic workload generators. See DESIGN.md S8."""

from repro.workload.accounts import ACCOUNTS_SCHEMA, Bank
from repro.workload.fanout import FanoutWorkload, Subscription
from repro.workload.generators import TableWorkload
from repro.workload.stocks import (
    STOCKS_SCHEMA,
    TRADES_SCHEMA,
    StockMarket,
    symbol_name,
)
from repro.workload.zipf import ZipfSampler

__all__ = [
    "ACCOUNTS_SCHEMA",
    "Bank",
    "FanoutWorkload",
    "STOCKS_SCHEMA",
    "StockMarket",
    "Subscription",
    "TRADES_SCHEMA",
    "TableWorkload",
    "ZipfSampler",
    "symbol_name",
]
