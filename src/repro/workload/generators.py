"""Generic randomized update workloads over arbitrary tables.

Used by integration tests and the equivalence benchmarks: drive any
table with a seeded mix of inserts/deletes/modifies and arbitrary
value generators, in transactions of configurable size.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.relational.relation import Tid, Values
from repro.storage.database import Database
from repro.storage.table import Table

# Builds a fresh row: fn(rng) -> values
RowFactory = Callable[[random.Random], Sequence]
# Mutates an existing row: fn(rng, old_values) -> new values
RowMutator = Callable[[random.Random, Values], Sequence]


class TableWorkload:
    """A seeded insert/delete/modify driver for one table."""

    def __init__(
        self,
        db: Database,
        table: Table,
        row_factory: RowFactory,
        row_mutator: RowMutator,
        seed: int = 0,
        insert_weight: float = 1.0,
        delete_weight: float = 1.0,
        modify_weight: float = 2.0,
    ):
        total = insert_weight + delete_weight + modify_weight
        if total <= 0:
            raise ValueError("operation weights must sum to a positive value")
        self.db = db
        self.table = table
        self.row_factory = row_factory
        self.row_mutator = row_mutator
        self.rng = random.Random(seed)
        self._p_insert = insert_weight / total
        self._p_delete = delete_weight / total
        self._live: List[Tid] = [row.tid for row in table.rows()]
        self.operations_applied = 0

    def seed_rows(self, count: int) -> None:
        """Bulk-insert ``count`` factory rows (one transaction)."""
        tids = self.table.insert_many(
            tuple(self.row_factory(self.rng)) for __ in range(count)
        )
        self._live.extend(tids)
        self.operations_applied += count

    def run(self, operations: int, transaction_size: int = 10) -> int:
        """Apply ``operations`` random ops in fixed-size transactions."""
        remaining = operations
        while remaining > 0:
            batch = min(transaction_size, remaining)
            self._run_transaction(batch)
            remaining -= batch
        return operations

    def _run_transaction(self, batch: int) -> None:
        with self.db.begin() as txn:
            for __ in range(batch):
                roll = self.rng.random()
                if roll < self._p_insert or not self._live:
                    tid = txn.insert_into(
                        self.table, tuple(self.row_factory(self.rng))
                    )
                    self._live.append(tid)
                elif roll < self._p_insert + self._p_delete:
                    position = self.rng.randrange(len(self._live))
                    tid = self._live.pop(position)
                    txn.delete_from(self.table, tid)
                else:
                    tid = self._live[self.rng.randrange(len(self._live))]
                    old = txn.read(self.table, tid)
                    if old is None:
                        continue
                    txn.modify_in(
                        self.table,
                        tid,
                        values=tuple(self.row_mutator(self.rng, old)),
                    )
                self.operations_applied += 1

    def live_tids(self) -> List[Tid]:
        return list(self._live)
