"""``python -m repro`` — a narrated end-to-end demonstration.

Walks the paper's Examples 1 and 2 live, shows the DRA explain trace,
and finishes with a small epsilon-triggered aggregate — a two-minute
tour of the library.
"""

from __future__ import annotations

from repro import AttributeType, Database
from repro.core import (
    CQManager,
    DeliveryMode,
    EpsilonTrigger,
    NetChangeEpsilon,
)
from repro.delta.capture import delta_since
from repro.dra.algorithm import dra_execute
from repro.relational import parse_query


def banner(text: str) -> None:
    print()
    print("=" * 66)
    print(text)
    print("=" * 66)


def main() -> None:
    banner("Differential Evaluation of Continual Queries (ICDCS '96)")
    print("Reproduction demo: Examples 1 & 2, DRA explain, epsilon CQ.")

    db = Database()
    stocks = db.create_table(
        "stocks",
        [
            ("sid", AttributeType.INT),
            ("name", AttributeType.STR),
            ("price", AttributeType.INT),
        ],
    )
    stocks.insert_many(
        [(100000, "DEC", 156), (92394, "QLI", 145), (120992, "DEC", 150)]
    )

    banner("The Stocks relation and the continual query Q")
    print(stocks.current.to_table_string())
    query = parse_query("SELECT sid, name, price FROM stocks WHERE price > 120")
    print(f"\nQ: {query.to_sql()}")
    previous = db.query(query)
    print(f"E_i(Q): {len(previous)} rows")

    banner("Example 1: transaction T (insert + modify + delete)")
    ts_last = db.now()
    tids = {row.values[0]: row.tid for row in stocks.rows()}
    with db.begin() as txn:
        txn.insert_into(stocks, (101088, "MAC", 117))
        txn.modify_in(stocks, tids[120992], updates={"price": 149})
        txn.delete_from(stocks, tids[92394])
    delta = delta_since(stocks, ts_last)
    print("ΔStocks (the differential relation, paper Section 4.1):")
    print(delta.as_wide_relation().to_table_string())
    print("\ninsertions(ΔStocks):", sorted(delta.insertions().values_set()))
    print("deletions(ΔStocks): ", sorted(delta.deletions().values_set()))

    banner("Example 2: differential re-evaluation of Q (Algorithm 1)")
    result = dra_execute(
        query, db, since=ts_last, previous=previous, explain=True
    )
    print(result.explain())
    print("\ndifferential result ΔQ:")
    print(result.delta.as_wide_relation().to_table_string())
    print("\ncomplete result, assembled as E_i ∪ insertions − deletions:")
    print(result.complete_result().to_table_string())
    recomputed = db.query(query)
    print(
        f"\nequal to recompute-from-scratch: "
        f"{result.complete_result() == recomputed}"
    )

    banner("An epsilon-triggered continual query (Sections 3.2 / 5.3)")
    accounts = db.create_table(
        "accounts",
        [("owner", AttributeType.STR), ("amount", AttributeType.FLOAT)],
    )
    accounts.insert_many([(f"cust{i}", 1000.0) for i in range(10)])
    manager = CQManager(db)
    manager.register_sql(
        "sum-up",
        "SELECT SUM(amount) AS total FROM accounts",
        trigger=EpsilonTrigger(NetChangeEpsilon(500.0, "amount")),
        mode=DeliveryMode.COMPLETE,
    )
    manager.drain()
    print("T_cq: |Deposits − Withdrawals| >= 500")
    for amount in (200.0, 200.0, 200.0):
        accounts.insert(("new", amount))
        notes = manager.drain()
        total_seen = (
            f"re-reported total = {notes[0].result.get(())[0]:,.0f}"
            if notes
            else "below epsilon, no notification"
        )
        print(f"  deposit {amount:7,.0f} -> {total_seen}")

    banner("Manager status")
    print(manager.status_report())
    print("\nDone. See examples/ for richer scenarios and EXPERIMENTS.md")
    print("for the full claim-by-claim reproduction.")


if __name__ == "__main__":
    main()
