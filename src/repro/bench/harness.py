"""Experiment harness shared by the benchmark suite.

Benchmarks report two kinds of numbers:

* *deterministic operation counts* (rows scanned, delta rows read,
  bytes shipped) from :class:`repro.metrics.Metrics` — these carry the
  paper's claims and are asserted on;
* *wall-clock timings* via :func:`time_fn` or pytest-benchmark — these
  illustrate the same shapes but are never asserted on (Python timing
  noise is not evidence).

:func:`format_table` renders sweep results as aligned text, which each
benchmark prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import Histogram


def time_fn(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def summarize_latency(histogram: "Histogram", unit: str = "us") -> Dict[str, Any]:
    """One row of latency summary stats from a metrics histogram.

    Feed the result rows to :func:`format_table`; percentiles are
    bucket upper bounds (see :class:`repro.metrics.Histogram`), which
    is the right resolution for illustrating refresh-latency shapes
    without pretending Python timings are precise.
    """
    return {
        "n": histogram.count,
        f"mean_{unit}": round(histogram.mean, 1),
        f"p50_{unit}": histogram.percentile(50),
        f"p95_{unit}": histogram.percentile(95),
        f"max_{unit}": round(histogram.max or 0.0, 1),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
