"""Benchmark harness utilities. See DESIGN.md S10."""

from repro.bench.harness import format_table, geometric_mean, time_fn

__all__ = ["format_table", "geometric_mean", "time_fn"]
