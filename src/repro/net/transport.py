"""Transports: how encoded CQ messages move between endpoints.

Two implementations of one abstraction:

* :class:`SimulatedTransport` — wraps the in-process
  :class:`~repro.net.simnet.SimulatedNetwork` (with its injectable
  drop/delay/partition faults) and delivers message objects directly,
  charging the *measured* encoded frame size. This is the deterministic
  harness every benchmark and most tests run on.
* :class:`TcpTransport` — real asyncio TCP sockets. Frames produced by
  :mod:`repro.net.codec` cross a loopback (or actual) network; the
  :class:`FrameConnection` wrapper handles framing, byte accounting,
  and injected faults (frame drops, severed connections) for
  crash/recovery tests.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, List, Optional, Tuple

from repro.errors import CodecError, NetworkError
from repro.metrics import Metrics
from repro.net.codec import MAX_FRAME_BYTES, _LENGTH, decode_payload, encode_frame
from repro.net.messages import Message
from repro.net.simnet import SimulatedNetwork


class Transport:
    """Message-level delivery between named endpoints.

    ``deliver`` returns True when the destination received the message
    and False when the transport lost it (drop, partition, dead
    connection) — the sender's state machine decides whether loss is
    fatal (sim tests) or recovered later via reconnect replay.
    """

    def deliver(
        self,
        src: str,
        dst: str,
        message: Message,
        metrics: Optional[Metrics] = None,
    ) -> bool:
        raise NotImplementedError


class SimulatedTransport(Transport):
    """The simulated network as a Transport (measured frame sizes)."""

    def __init__(self, network: Optional[SimulatedNetwork] = None):
        self.network = network if network is not None else SimulatedNetwork()
        self._receivers = {}

    def attach(self, name: str, receive: Callable[[Message], None]) -> None:
        self._receivers[name] = receive

    def detach(self, name: str) -> None:
        self._receivers.pop(name, None)

    def deliver(
        self,
        src: str,
        dst: str,
        message: Message,
        metrics: Optional[Metrics] = None,
    ) -> bool:
        receive = self._receivers.get(dst)
        if receive is None:
            raise NetworkError(f"no attached endpoint {dst!r}")
        duration = self.network.send(src, dst, message.wire_size(), metrics)
        if duration is None:
            return False
        receive(message)
        return True


class FaultInjector:
    """Deterministic fault plan shared by TCP connections.

    ``drop_rate`` silently discards outbound frames (application-level
    loss: the frame is simply never written, so stream framing stays
    intact). ``sever_all`` abruptly aborts every registered connection,
    the "kill the connection mid-stream" fault reconnect tests inject.
    """

    def __init__(self, drop_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= drop_rate <= 1.0:
            raise NetworkError("drop rate must be in [0, 1]")
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._connections: List["FrameConnection"] = []
        self.frames_dropped = 0
        self.severed = 0

    def register(self, connection: "FrameConnection") -> None:
        self._connections.append(connection)

    def should_drop(self) -> bool:
        if self.drop_rate <= 0.0:
            return False
        if self._rng.random() < self.drop_rate:
            self.frames_dropped += 1
            return True
        return False

    def sever_all(self) -> int:
        """Abort every live registered connection; returns the count."""
        count = 0
        for connection in self._connections:
            if not connection.closed:
                connection.abort()
                count += 1
        self.severed += count
        return count


class FrameConnection:
    """One framed message stream over an asyncio TCP connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        metrics: Optional[Metrics] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.metrics = metrics
        self.injector = injector
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Malformed frames skipped on this connection (intact framing,
        #: undecodable payload). Oversized length prefixes are fatal
        #: instead — framing is lost — and close the connection.
        self.codec_errors = 0
        self.closed = False
        if injector is not None:
            injector.register(self)

    async def send(self, message: Message) -> int:
        """Encode and write one frame; returns bytes written (0 if the
        frame was dropped by the fault injector)."""
        if self.closed:
            raise NetworkError("connection is closed")
        frame = encode_frame(message)
        if self.injector is not None and self.injector.should_drop():
            return 0
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self.closed = True
            raise NetworkError(f"send failed: {exc}") from exc
        self.bytes_sent += len(frame)
        if self.metrics:
            self.metrics.count(Metrics.BYTES_ENCODED, len(frame))
        return len(frame)

    async def recv(self) -> Optional[Message]:
        """Read one message; None on clean or abrupt EOF.

        A malformed payload inside an intact frame is counted
        (``codec_errors``) and skipped — the read loop continues with
        the next frame instead of tearing the session down. An
        oversized length prefix means framing is lost: the connection
        closes (returns None) after counting the error, because no
        later byte can be trusted as a frame boundary."""
        while True:
            try:
                prefix = await self._reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(prefix)
                if length > MAX_FRAME_BYTES:
                    self._count_codec_error()
                    self.close()
                    return None
                payload = await self._reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                self.closed = True
                return None
            self.bytes_received += len(payload) + _LENGTH.size
            try:
                return decode_payload(payload)
            except CodecError:
                self._count_codec_error()
                continue

    def _count_codec_error(self) -> None:
        self.codec_errors += 1
        if self.metrics:
            self.metrics.count(Metrics.CODEC_ERRORS)

    def abort(self) -> None:
        """Drop the connection without flushing (simulates a cut link)."""
        self.closed = True
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._writer.close()
        except (ConnectionError, OSError):  # already torn down
            pass

    async def wait_closed(self, timeout: float = 1.0) -> None:
        """Wait (bounded) for the transport to finish closing.

        Bounded because ``StreamWriter.wait_closed`` can block
        indefinitely on an already-reset connection; teardown must
        never hang on a peer that is gone.
        """
        try:
            # Shielded: the close waiter is one shared future per
            # connection, and a timeout here must not cancel it for
            # every other waiter.
            await asyncio.wait_for(
                asyncio.shield(self._writer.wait_closed()), timeout
            )
        except (
            asyncio.TimeoutError,
            asyncio.CancelledError,
            ConnectionError,
            OSError,
        ):
            pass


class TcpTransport:
    """Factory for framed connections over real asyncio TCP sockets."""

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.metrics = metrics
        self.injector = injector

    async def connect(self, host: str, port: int) -> FrameConnection:
        reader, writer = await asyncio.open_connection(host, port)
        return FrameConnection(reader, writer, self.metrics, self.injector)

    async def serve(
        self,
        host: str,
        port: int,
        on_connection: Callable[[FrameConnection], "asyncio.Future"],
    ) -> Tuple[asyncio.AbstractServer, Tuple[str, int]]:
        """Listen and hand each accepted connection to ``on_connection``
        (a coroutine function). Returns the server and its bound address
        (useful with ``port=0``)."""

        async def handler(reader, writer):
            connection = FrameConnection(
                reader, writer, self.metrics, self.injector
            )
            await on_connection(connection)

        server = await asyncio.start_server(handler, host, port)
        sock = server.sockets[0].getsockname()
        return server, (sock[0], sock[1])
