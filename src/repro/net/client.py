"""CQ clients: registering queries and maintaining cached results.

"Caching the results on the client side makes the servers more
scalable with respect to the number of clients" (Section 5.1): a
client applies shipped deltas to its local copy instead of re-pulling
the full result.

Two client kinds live here:

* :class:`CQClient` — the in-process endpoint used with
  :class:`~repro.net.simnet.SimulatedNetwork` deployments (benchmarks,
  deterministic tests);
* :class:`CQSession` — the asyncio endpoint for a real
  :class:`~repro.net.service.CQService`: it dials over a transport,
  heartbeats, reconnects with exponential backoff + jitter, and on
  resume asks the server to replay its missed window differentially.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, List, Optional

from repro.errors import ConnectTimeout, NetworkError, ReproError
from repro.relational.relation import Relation
from repro.storage.timestamps import Timestamp
from repro.net.digest import relation_digest
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    HeartbeatAckMessage,
    HeartbeatMessage,
    HelloAckMessage,
    HelloMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    StatsMessage,
    StatsReplyMessage,
    ResyncMessage,
)
from repro.net.server import Protocol
from repro.net.transport import FrameConnection, TcpTransport


class CQClient:
    """A subscriber endpoint holding one cached result per CQ."""

    def __init__(self, name: str):
        self.name = name
        self.server = None  # set by CQServer.attach
        self._results: Dict[str, Relation] = {}
        self._history: List[Message] = []
        # Lazy protocol: the latest pending-delta notice per CQ.
        self._pending: Dict[str, DeltaAvailableMessage] = {}
        #: Deltas that arrived for a CQ this client holds no cached
        #: result for (a normal race after a client restart).
        self.stale_deltas = 0
        #: Results whose post-apply digest did not match the server's
        #: stamp; each one discarded the cache and triggered a resync.
        self.digest_mismatches = 0

    # -- outbound ------------------------------------------------------------

    def _send(self, message: Message) -> bool:
        """Charge one client->server message; False when the network
        lost it (injected faults)."""
        if self.server is None:
            raise NetworkError(f"client {self.name!r} is not attached")
        duration = self.server.network.send(
            self.name, self.server.name, message.wire_size(), self.server.metrics
        )
        return duration is not None

    def register(
        self, cq_name: str, sql: str, protocol: Protocol = Protocol.DRA_DELTA
    ) -> None:
        """Install a CQ at the attached server."""
        message = RegisterMessage(cq_name, sql, protocol.value)
        if self._send(message):
            self.server.handle_register(self.name, message, protocol)

    # -- inbound -----------------------------------------------------------------

    def receive(self, message: Message) -> None:
        self._history.append(message)
        if isinstance(message, (InitialResultMessage, FullResultMessage)):
            if not self._verify(message.cq_name, message.result, message.digest):
                return
            self._results[message.cq_name] = message.result.copy()
        elif isinstance(message, DeltaMessage):
            cached = self._results.get(message.cq_name)
            if cached is None:
                # A delta for a CQ we hold no result for: normal after
                # a client restart (the server refreshed before seeing
                # the new session). Ask for the full copy instead of
                # treating the race as a protocol error.
                self.stale_deltas += 1
                self._resync(message.cq_name)
                return
            applied = message.delta.apply_to(cached)
            if not self._verify(message.cq_name, applied, message.digest):
                return
            self._results[message.cq_name] = applied
            self._pending.pop(message.cq_name, None)
        elif isinstance(message, DeltaAvailableMessage):
            self._pending[message.cq_name] = message
        else:
            raise NetworkError(f"unexpected message {message!r}")

    def _verify(self, cq_name: str, result: Relation, digest) -> bool:
        """Check a post-apply result against the server's stamp; on
        mismatch discard the cache, count it, and resync."""
        if digest is None or relation_digest(result) == digest:
            return True
        self.digest_mismatches += 1
        if self.server is not None:
            from repro.metrics import Metrics

            self.server.metrics.count(Metrics.DIGEST_MISMATCHES)
        self._results.pop(cq_name, None)
        self._resync(cq_name)
        return False

    def _resync(self, cq_name: str) -> None:
        if self.server is not None and self._send(ResyncMessage(cq_name)):
            self.server.handle_resync(self.name, ResyncMessage(cq_name))

    # -- lazy protocol --------------------------------------------------------

    def pending_notice(self, cq_name: str):
        """The latest unfetched DeltaAvailableMessage, or None."""
        return self._pending.get(cq_name)

    def fetch(self, cq_name: str) -> bool:
        """Pull the accumulated pending delta from the server.

        Returns True if a delta arrived (the cached result is then
        current as of the last refresh the server performed).
        """
        if self._send(FetchMessage(cq_name)):
            return self.server.handle_fetch(self.name, FetchMessage(cq_name))
        return False

    # -- inspection -----------------------------------------------------------------

    def result(self, cq_name: str) -> Relation:
        try:
            return self._results[cq_name]
        except KeyError:
            raise NetworkError(
                f"client {self.name!r} has no result for {cq_name!r}"
            ) from None

    def forget(self, cq_name: str) -> None:
        """Drop the cached result (simulates client state loss)."""
        self._results.pop(cq_name, None)
        self._pending.pop(cq_name, None)

    def history(self) -> List[Message]:
        return list(self._history)

    def __repr__(self) -> str:
        return f"CQClient({self.name!r}, {len(self._results)} cached results)"


class CQSession:
    """An asyncio CQ subscriber over a real transport.

    The session dials the service, identifies itself with a Hello
    frame, and keeps cached results current by applying pushed deltas.
    When the connection dies it reconnects with exponential backoff
    plus jitter, resuming with its last-applied timestamp per CQ so the
    server can replay exactly the missed window as one consolidated
    delta (or fall back to a full result when garbage collection has
    passed the session's horizon).
    """

    def __init__(
        self,
        client_id: str,
        host: str,
        port: int,
        transport: Optional[TcpTransport] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        backoff_jitter: float = 0.5,
        max_attempts: int = 20,
        seed: int = 0,
        auto_fetch: bool = True,
    ):
        self.client_id = client_id
        self.host = host
        self.port = port
        self.transport = transport if transport is not None else TcpTransport()
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.max_attempts = max_attempts
        self.auto_fetch = auto_fetch
        self._rng = random.Random(seed)
        self._conn: Optional[FrameConnection] = None
        self._task: Optional[asyncio.Task] = None
        self._closing = False
        self._results: Dict[str, Relation] = {}
        #: CQ name -> last refresh timestamp applied locally. This is
        #: the resume map sent in every Hello and heartbeat ack.
        self.applied: Dict[str, Timestamp] = {}
        self._registered: Dict[str, tuple] = {}
        self._updated = asyncio.Event()
        self.server_name: Optional[str] = None
        # Visible session counters (tests and ops assertions).
        self.reconnects = 0
        self.heartbeats = 0
        self.stale_deltas = 0
        self.full_results = 0
        self.deltas_applied = 0
        self.lazy_notices = 0
        self.digest_mismatches = 0
        self.connect_attempts = 0
        self.stats_replies = 0
        #: The most recent StatsReply payload (see :meth:`stats`).
        self.last_stats: Optional[Dict[str, object]] = None

    # -- lifecycle ---------------------------------------------------------

    async def connect(self, timeout: float = 10.0) -> None:
        """Dial and handshake; starts the background reader.

        ``timeout`` is a *total* deadline spanning every dial attempt
        and backoff sleep, not a per-attempt budget. On expiry — or as
        soon as the retry loop exhausts ``max_attempts``, whichever
        comes first — the session is torn down and
        :class:`~repro.errors.ConnectTimeout` reports how many dial
        attempts were made, so callers can retry cleanly.
        """
        if self._task is not None:
            raise NetworkError(f"session {self.client_id!r} already running")
        self._closing = False
        self.connect_attempts = 0
        self._task = asyncio.ensure_future(self._run())
        try:
            await self._wait_for(
                lambda: self.connected or self._task.done(), timeout
            )
        except NetworkError:
            await self.close()
            raise ConnectTimeout(
                f"session {self.client_id!r} could not connect to "
                f"{self.host}:{self.port} within {timeout}s "
                f"({self.connect_attempts} attempts)",
                attempts=self.connect_attempts,
            ) from None
        if not self.connected:
            # The retry loop gave up (max_attempts) before the deadline.
            await self.close()
            raise ConnectTimeout(
                f"session {self.client_id!r} gave up connecting to "
                f"{self.host}:{self.port} after "
                f"{self.connect_attempts} attempts",
                attempts=self.connect_attempts,
            )

    async def close(self) -> None:
        self._closing = True
        if self._conn is not None:
            self._conn.close()
            await self._conn.wait_closed()
            self._conn = None
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    async def redial(self, host: str, port: int, timeout: float = 10.0) -> None:
        """Point the session at a different address (server restart)
        and reconnect there, resuming differentially."""
        self.host = host
        self.port = port
        if self._conn is not None and not self._conn.closed:
            self._conn.abort()
        await self._wait_for(lambda: self.connected, timeout)

    @property
    def connected(self) -> bool:
        return self._conn is not None and not self._conn.closed

    # -- requests ----------------------------------------------------------

    async def register(
        self,
        cq_name: str,
        sql: str,
        protocol: Protocol = Protocol.DRA_DELTA,
        timeout: float = 10.0,
    ) -> Relation:
        """Install a CQ and wait for its initial result."""
        self._registered[cq_name] = (sql, protocol.value)
        await self._send(RegisterMessage(cq_name, sql, protocol.value))
        await self._wait_for(lambda: cq_name in self._results, timeout)
        return self._results[cq_name]

    async def fetch(self, cq_name: str) -> None:
        """Request the pending lazy delta for one CQ."""
        await self._send(FetchMessage(cq_name))

    async def stats(self, timeout: float = 10.0) -> Dict[str, object]:
        """Ask the server for its live stats payload (admin
        introspection over the wire) and wait for the reply."""
        target = self.stats_replies + 1
        await self._send(StatsMessage())
        await self._wait_for(lambda: self.stats_replies >= target, timeout)
        assert self.last_stats is not None
        return self.last_stats

    async def wait_applied(
        self, cq_name: str, ts: Timestamp, timeout: float = 10.0
    ) -> None:
        """Block until the local cache reflects refresh time ``ts``."""
        await self._wait_for(
            lambda: self.applied.get(cq_name, -1) >= ts, timeout
        )

    def result(self, cq_name: str) -> Relation:
        try:
            return self._results[cq_name]
        except KeyError:
            raise NetworkError(
                f"session {self.client_id!r} has no result for {cq_name!r}"
            ) from None

    # -- internals ---------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return delay * (1.0 + self.backoff_jitter * self._rng.random())

    def _notify(self) -> None:
        self._updated.set()

    async def _wait_for(
        self, predicate: Callable[[], bool], timeout: float
    ) -> None:
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while not predicate():
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise NetworkError(
                    f"session {self.client_id!r} timed out waiting"
                )
            self._updated.clear()
            if predicate():  # re-check after clear to avoid a lost wakeup
                return
            try:
                await asyncio.wait_for(self._updated.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    async def _send(self, message: Message) -> None:
        if self._conn is None or self._conn.closed:
            raise NetworkError(f"session {self.client_id!r} is not connected")
        await self._conn.send(message)

    async def _dial(self) -> None:
        self.connect_attempts += 1
        conn = await self.transport.connect(self.host, self.port)
        await conn.send(HelloMessage(self.client_id, dict(self.applied)))
        ack = await conn.recv()
        if not isinstance(ack, HelloAckMessage):
            conn.close()
            raise NetworkError(f"expected HelloAck, got {ack!r}")
        self.server_name = ack.server_name
        self._conn = conn
        # CQs the server does not know (it restarted without us, or we
        # registered while disconnected): install them now.
        for cq_name in ack.unknown:
            spec = self._registered.get(cq_name)
            if spec is not None:
                await conn.send(RegisterMessage(cq_name, spec[0], spec[1]))
        self._notify()

    async def _run(self) -> None:
        attempt = 0
        first = True
        while not self._closing:
            if self._conn is None or self._conn.closed:
                if not first:
                    attempt += 1
                    if attempt > self.max_attempts:
                        self._notify()
                        return
                    await asyncio.sleep(self._backoff(attempt))
                try:
                    await self._dial()
                except (NetworkError, OSError):
                    if first:
                        attempt += 1
                        if attempt > self.max_attempts:
                            self._notify()
                            return
                        await asyncio.sleep(self._backoff(attempt))
                    continue
                attempt = 0
                first = False
                continue
            message = await self._conn.recv()
            if message is None:
                self._conn = None
                if not self._closing:
                    self.reconnects += 1
                continue
            try:
                await self._handle(message)
            except NetworkError:
                continue  # connection died mid-reply; reconnect loop

    async def _handle(self, message: Message) -> None:
        if isinstance(message, (InitialResultMessage, FullResultMessage)):
            if not await self._verify(
                message.cq_name, message.result, message.digest
            ):
                return
            self._results[message.cq_name] = message.result.copy()
            self.applied[message.cq_name] = message.ts
            if isinstance(message, FullResultMessage):
                self.full_results += 1
        elif isinstance(message, DeltaMessage):
            cached = self._results.get(message.cq_name)
            if cached is None:
                self.stale_deltas += 1
                await self._send(ResyncMessage(message.cq_name))
                return
            try:
                applied = message.delta.apply_to(cached)
            except (KeyError, ReproError):
                # Our cache diverged from what the server believes we
                # hold (lost frames); a full copy resynchronizes.
                self.stale_deltas += 1
                await self._send(ResyncMessage(message.cq_name))
                return
            if not await self._verify(
                message.cq_name, applied, message.digest
            ):
                return
            self._results[message.cq_name] = applied
            self.applied[message.cq_name] = message.ts
            self.deltas_applied += 1
        elif isinstance(message, DeltaAvailableMessage):
            self.lazy_notices += 1
            if self.auto_fetch:
                await self._send(FetchMessage(message.cq_name))
        elif isinstance(message, StatsReplyMessage):
            self.last_stats = message.payload
            self.stats_replies += 1
        elif isinstance(message, HeartbeatMessage):
            self.heartbeats += 1
            await self._send(
                HeartbeatAckMessage(message.ts, dict(self.applied))
            )
        # HelloAck outside the handshake and anything unknown: ignore.
        self._notify()

    async def _verify(self, cq_name: str, result: Relation, digest) -> bool:
        """Compare a post-apply result against the server's digest
        stamp; on mismatch discard the cached copy (it is provably not
        what the server shipped from) and request a full resync."""
        if digest is None or relation_digest(result) == digest:
            return True
        self.digest_mismatches += 1
        self._results.pop(cq_name, None)
        await self._send(ResyncMessage(cq_name))
        return False

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return (
            f"CQSession({self.client_id!r}, {state}, "
            f"{len(self._results)} cached results)"
        )
