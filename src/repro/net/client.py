"""The CQ client: registers queries and maintains cached results.

"Caching the results on the client side makes the servers more
scalable with respect to the number of clients" (Section 5.1): a
client applies shipped deltas to its local copy instead of re-pulling
the full result.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NetworkError
from repro.relational.relation import Relation
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
)
from repro.net.server import Protocol


class CQClient:
    """A subscriber endpoint holding one cached result per CQ."""

    def __init__(self, name: str):
        self.name = name
        self.server = None  # set by CQServer.attach
        self._results: Dict[str, Relation] = {}
        self._history: List[Message] = []
        # Lazy protocol: the latest pending-delta notice per CQ.
        self._pending: Dict[str, DeltaAvailableMessage] = {}

    # -- outbound ------------------------------------------------------------

    def register(
        self, cq_name: str, sql: str, protocol: Protocol = Protocol.DRA_DELTA
    ) -> None:
        """Install a CQ at the attached server."""
        if self.server is None:
            raise NetworkError(f"client {self.name!r} is not attached")
        message = RegisterMessage(cq_name, sql)
        self.server.network.send(
            self.name, self.server.name, message.wire_size(), self.server.metrics
        )
        self.server.handle_register(self.name, message, protocol)

    # -- inbound -----------------------------------------------------------------

    def receive(self, message: Message) -> None:
        self._history.append(message)
        if isinstance(message, InitialResultMessage):
            self._results[message.cq_name] = message.result.copy()
        elif isinstance(message, FullResultMessage):
            self._results[message.cq_name] = message.result.copy()
        elif isinstance(message, DeltaMessage):
            cached = self._results.get(message.cq_name)
            if cached is None:
                raise NetworkError(
                    f"delta for unknown CQ {message.cq_name!r} at {self.name!r}"
                )
            self._results[message.cq_name] = message.delta.apply_to(cached)
            self._pending.pop(message.cq_name, None)
        elif isinstance(message, DeltaAvailableMessage):
            self._pending[message.cq_name] = message
        else:
            raise NetworkError(f"unexpected message {message!r}")

    # -- lazy protocol --------------------------------------------------------

    def pending_notice(self, cq_name: str):
        """The latest unfetched DeltaAvailableMessage, or None."""
        return self._pending.get(cq_name)

    def fetch(self, cq_name: str) -> bool:
        """Pull the accumulated pending delta from the server.

        Returns True if a delta arrived (the cached result is then
        current as of the last refresh the server performed).
        """
        if self.server is None:
            raise NetworkError(f"client {self.name!r} is not attached")
        message = FetchMessage(cq_name)
        self.server.network.send(
            self.name, self.server.name, message.wire_size(), self.server.metrics
        )
        return self.server.handle_fetch(self.name, message)

    # -- inspection -----------------------------------------------------------------

    def result(self, cq_name: str) -> Relation:
        try:
            return self._results[cq_name]
        except KeyError:
            raise NetworkError(
                f"client {self.name!r} has no result for {cq_name!r}"
            ) from None

    def history(self) -> List[Message]:
        return list(self._history)

    def __repr__(self) -> str:
        return f"CQClient({self.name!r}, {len(self._results)} cached results)"
