"""Length-prefixed wire codec for CQ protocol messages.

Frame layout::

    +----------------+---------------------------+
    | 4 bytes, BE    | UTF-8 JSON payload        |
    | payload length | {"t": <tag>, ...fields}   |
    +----------------+---------------------------+

JSON keeps the codec debuggable (a captured frame is readable) while
the length prefix gives unambiguous streaming over TCP. Tids are ints
or nested tuples of tids (join provenance); tuples encode as JSON
arrays and decode back to tuples recursively, which is unambiguous
because scalar tids are never arrays. Attribute values are scalars
(int/float/str/bool/None), validated against the schema on decode so a
corrupted or hand-forged frame fails loudly instead of poisoning a
cached result.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import CodecError, NetworkError
from repro.relational.relation import Relation, Tid, Values
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    HeartbeatAckMessage,
    HeartbeatMessage,
    HelloAckMessage,
    HelloMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    ResyncMessage,
    GatherReplyMessage,
    ScatterMessage,
    ShardDrainMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
    ShardPromoteMessage,
    StatsMessage,
    StatsReplyMessage,
)

#: Frames above this are rejected: a length prefix this large is far
#: more likely stream corruption than a legitimate payload. Decoders
#: accept a per-instance override for deployments with bigger results.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# -- schema / relation / delta payloads ---------------------------------------


def _schema_to_json(schema: Schema) -> List[List[str]]:
    return [[a.name, a.type.value] for a in schema]


def _schema_from_json(data: List[List[str]]) -> Schema:
    return Schema.of(*((name, AttributeType(type_)) for name, type_ in data))


def _tid_to_json(tid: Tid) -> Any:
    if isinstance(tid, tuple):
        return [_tid_to_json(part) for part in tid]
    return tid


def _tid_from_json(data: Any) -> Tid:
    if isinstance(data, list):
        return tuple(_tid_from_json(part) for part in data)
    return data


def _values_from_json(data: Optional[List[Any]]) -> Optional[Values]:
    return None if data is None else tuple(data)


def _relation_to_json(relation: Relation) -> Dict[str, Any]:
    return {
        "schema": _schema_to_json(relation.schema),
        "rows": [
            [_tid_to_json(row.tid), list(row.values)] for row in relation
        ],
    }


def _relation_from_json(data: Dict[str, Any]) -> Relation:
    schema = _schema_from_json(data["schema"])
    out = Relation(schema)
    for tid, values in data["rows"]:
        out.add(_tid_from_json(tid), tuple(values))
    return out


def _delta_to_json(delta: DeltaRelation) -> Dict[str, Any]:
    return {
        "schema": _schema_to_json(delta.schema),
        "entries": [
            [
                _tid_to_json(e.tid),
                None if e.old is None else list(e.old),
                None if e.new is None else list(e.new),
                e.ts,
            ]
            for e in delta
        ],
    }


def _delta_from_json(data: Dict[str, Any]) -> DeltaRelation:
    schema = _schema_from_json(data["schema"])
    return DeltaRelation(
        schema,
        (
            DeltaEntry(
                _tid_from_json(tid),
                _values_from_json(old),
                _values_from_json(new),
                ts,
            )
            for tid, old, new, ts in data["entries"]
        ),
    )


# -- per-message payloads -----------------------------------------------------

_TO_JSON: Dict[Type[Message], Tuple[str, Callable[[Message], Dict[str, Any]]]] = {
    RegisterMessage: (
        "register",
        lambda m: {"cq": m.cq_name, "sql": m.sql, "protocol": m.protocol},
    ),
    InitialResultMessage: (
        "initial_result",
        lambda m: {
            "cq": m.cq_name,
            "result": _relation_to_json(m.result),
            "ts": m.ts,
            "dg": m.digest,
        },
    ),
    FullResultMessage: (
        "full_result",
        lambda m: {
            "cq": m.cq_name,
            "result": _relation_to_json(m.result),
            "ts": m.ts,
            "dg": m.digest,
        },
    ),
    DeltaMessage: (
        "delta",
        lambda m: {
            "cq": m.cq_name,
            "delta": _delta_to_json(m.delta),
            "ts": m.ts,
            "dg": m.digest,
        },
    ),
    DeltaAvailableMessage: (
        "delta_available",
        lambda m: {
            "cq": m.cq_name,
            "ts": m.ts,
            "entries": m.entry_count,
            "pending": m.pending_bytes,
        },
    ),
    FetchMessage: ("fetch", lambda m: {"cq": m.cq_name}),
    ResyncMessage: ("resync", lambda m: {"cq": m.cq_name}),
    HelloMessage: (
        "hello",
        lambda m: {"client": m.client_id, "resume": m.resume},
    ),
    HelloAckMessage: (
        "hello_ack",
        lambda m: {
            "server": m.server_name,
            "ts": m.ts,
            "resumed": m.resumed,
            "unknown": m.unknown,
        },
    ),
    HeartbeatMessage: ("heartbeat", lambda m: {"ts": m.ts}),
    HeartbeatAckMessage: (
        "heartbeat_ack",
        lambda m: {"ts": m.ts, "applied": m.applied},
    ),
    StatsMessage: ("stats", lambda m: {}),
    StatsReplyMessage: ("stats_reply", lambda m: {"payload": m.payload}),
    ShardHelloMessage: (
        "shard_hello",
        lambda m: {
            "shard": m.shard_id,
            "horizon": m.horizon,
            "tables": m.tables,
            "subs": m.subscriptions,
            # JSON object keys must be strings; decode restores ints.
            "groups": {str(g): info for g, info in sorted(m.groups.items())},
        },
    ),
    ScatterMessage: (
        "scatter",
        lambda m: {
            "shard": m.shard_id,
            "seq": m.seq,
            "ts": m.ts,
            "deltas": {
                name: _delta_to_json(delta)
                for name, delta in sorted(m.deltas.items())
            },
            "baselines": {
                name: _relation_to_json(rel)
                for name, rel in sorted(m.baselines.items())
            },
            "sub": m.subscribe,
            "unsub": m.unsubscribe,
            "collect": m.collect,
            "group": m.group,
        },
    ),
    GatherReplyMessage: (
        "gather_reply",
        lambda m: {
            "shard": m.shard_id,
            "seq": m.seq,
            "ts": m.ts,
            "horizon": m.horizon,
            "entries": [
                [sql_key, _delta_to_json(delta), ts]
                for sql_key, delta, ts in m.entries
            ],
            "counters": m.counters,
            "group": m.group,
        },
    ),
    ShardHeartbeatMessage: (
        "shard_heartbeat",
        lambda m: {
            "shard": m.shard_id,
            "seq": m.seq,
            "ts": m.ts,
            "collect": m.collect,
            "group": m.group,
        },
    ),
    ShardPromoteMessage: (
        "shard_promote",
        lambda m: {
            "shard": m.shard_id,
            "group": m.group,
            "seq": m.seq,
            "ts": m.ts,
            "sub": m.subscribe,
        },
    ),
    ShardDrainMessage: (
        "shard_drain",
        lambda m: {
            "shard": m.shard_id,
            "seq": m.seq,
            "ts": m.ts,
            "group": m.group,
        },
    ),
}

_FROM_JSON: Dict[str, Callable[[Dict[str, Any]], Message]] = {
    "register": lambda d: RegisterMessage(d["cq"], d["sql"], d.get("protocol")),
    "initial_result": lambda d: InitialResultMessage(
        d["cq"], _relation_from_json(d["result"]), d["ts"], d.get("dg")
    ),
    "full_result": lambda d: FullResultMessage(
        d["cq"], _relation_from_json(d["result"]), d["ts"], d.get("dg")
    ),
    "delta": lambda d: DeltaMessage(
        d["cq"], _delta_from_json(d["delta"]), d["ts"], d.get("dg")
    ),
    "delta_available": lambda d: DeltaAvailableMessage(
        d["cq"], d["ts"], d["entries"], d["pending"]
    ),
    "fetch": lambda d: FetchMessage(d["cq"]),
    "resync": lambda d: ResyncMessage(d["cq"]),
    "hello": lambda d: HelloMessage(d["client"], d["resume"]),
    "hello_ack": lambda d: HelloAckMessage(
        d["server"], d["ts"], d["resumed"], d["unknown"]
    ),
    "heartbeat": lambda d: HeartbeatMessage(d["ts"]),
    "heartbeat_ack": lambda d: HeartbeatAckMessage(d["ts"], d["applied"]),
    "stats": lambda d: StatsMessage(),
    "stats_reply": lambda d: StatsReplyMessage(d["payload"]),
    "shard_hello": lambda d: ShardHelloMessage(
        d["shard"],
        d["horizon"],
        d["tables"],
        d["subs"],
        groups=d.get("groups"),
    ),
    "scatter": lambda d: ScatterMessage(
        d["shard"],
        d["seq"],
        d["ts"],
        deltas={
            name: _delta_from_json(delta)
            for name, delta in d["deltas"].items()
        },
        baselines={
            name: _relation_from_json(rel)
            for name, rel in d["baselines"].items()
        },
        subscribe=d["sub"],
        unsubscribe=d["unsub"],
        collect=d["collect"],
        group=d.get("group"),
    ),
    "gather_reply": lambda d: GatherReplyMessage(
        d["shard"],
        d["seq"],
        d["ts"],
        d["horizon"],
        entries=[
            (sql_key, _delta_from_json(delta), ts)
            for sql_key, delta, ts in d["entries"]
        ],
        counters=d["counters"],
        group=d.get("group"),
    ),
    "shard_heartbeat": lambda d: ShardHeartbeatMessage(
        d["shard"], d["seq"], d["ts"], d["collect"], group=d.get("group")
    ),
    "shard_promote": lambda d: ShardPromoteMessage(
        d["shard"], d["group"], d["seq"], d["ts"], subscribe=d["sub"]
    ),
    "shard_drain": lambda d: ShardDrainMessage(
        d["shard"], d["seq"], d["ts"], group=d.get("group")
    ),
}


# -- framing ------------------------------------------------------------------


def encode_payload(message: Message) -> bytes:
    """The JSON payload of one message, without the length prefix."""
    try:
        tag, to_json = _TO_JSON[type(message)]
    except KeyError:
        raise NetworkError(f"no codec for message type {type(message).__name__}")
    body = to_json(message)
    body["t"] = tag
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode_payload(payload: bytes) -> Message:
    """Rebuild a message from one JSON payload.

    Raises :class:`~repro.errors.CodecError` (a ``NetworkError``
    subtype, so existing handlers keep working) on undecodable JSON,
    unknown tags, or field structure that fails validation. The frame
    *boundary* is still intact in these cases — callers that own a
    stream may count the error and continue with the next frame."""
    try:
        body = json.loads(payload.decode("utf-8"))
        tag = body["t"]
        from_json = _FROM_JSON[tag]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise CodecError(f"undecodable frame payload: {exc}") from exc
    try:
        return from_json(body)
    except NetworkError:
        raise
    except Exception as exc:  # malformed field structure or bad values
        raise CodecError(f"malformed {tag!r} frame: {exc}") from exc


def encode_frame(message: Message) -> bytes:
    """One complete wire frame: 4-byte length prefix + payload."""
    payload = encode_payload(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise NetworkError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(payload)) + payload


def encoded_size(message: Message) -> int:
    """Measured wire size (frame bytes) of one message."""
    return _LENGTH.size + len(encode_payload(message))


class FrameDecoder:
    """Incremental frame reassembly for a byte stream.

    Feed arbitrary chunks (as a socket delivers them); complete
    messages come out in order. Partial frames are buffered until the
    rest arrives.

    Hardened against hostile or damaged input: a length prefix above
    ``max_frame_bytes`` means stream framing is lost (everything after
    it is unparseable) and raises :class:`~repro.errors.CodecError`; a
    frame whose *payload* is malformed but whose boundary is intact is
    counted in :attr:`errors` and skipped, and decoding continues with
    the next frame — one poisoned message does not tear down the
    stream.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes
        #: Malformed-but-framed payloads skipped so far.
        self.errors = 0

    def feed(self, data: bytes) -> List[Message]:
        self._buffer.extend(data)
        out: List[Message] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return out
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise CodecError(
                    f"frame length {length} exceeds max_frame_bytes "
                    f"{self.max_frame_bytes} (corrupted stream?)"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return out
            payload = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            try:
                out.append(decode_payload(payload))
            except CodecError:
                self.errors += 1

    def pending_bytes(self) -> int:
        return len(self._buffer)
