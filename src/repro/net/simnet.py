"""A deterministic simulated network.

Section 5.1's claims are about transmission volume ("if the volume of
relevant updates is smaller than the results ... we are further
reducing the network traffic"). The simulation therefore charges each
message a deterministic cost — latency plus size over bandwidth — and
keeps byte/message counters per link, which the E2/E3 benchmarks
report. No real sockets: everything runs in-process.

Faults are injectable and deterministic: a seeded drop probability, a
fixed added latency, and directed partitions. A lost message shows up
in the link's ``drops`` counter and :meth:`send` returns ``None`` so
callers (the CQ server's delivery path) know the receiver never saw
it. With no faults configured, behavior is byte-for-byte identical to
the fault-free network.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.metrics import Metrics


class LinkStats:
    """Counters for one directed (src, dst) link."""

    __slots__ = ("bytes", "messages", "busy_seconds", "drops")

    def __init__(self) -> None:
        self.bytes = 0
        self.messages = 0
        self.busy_seconds = 0.0
        self.drops = 0

    def __repr__(self) -> str:
        return (
            f"LinkStats({self.messages} msgs, {self.bytes} bytes, "
            f"{self.busy_seconds:.6f}s, {self.drops} drops)"
        )


class SimulatedNetwork:
    """Charges costs for messages between named endpoints."""

    def __init__(
        self,
        latency_seconds: float = 0.001,
        bandwidth_bytes_per_second: float = 1_000_000.0,
        seed: int = 0,
    ):
        if latency_seconds < 0:
            raise NetworkError("latency must be non-negative")
        if bandwidth_bytes_per_second <= 0:
            raise NetworkError("bandwidth must be positive")
        self.latency_seconds = latency_seconds
        self.bandwidth = bandwidth_bytes_per_second
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        self.total = LinkStats()
        # Fault plan: off by default, so the network is lossless and
        # the RNG is never consulted (existing traffic is unchanged).
        self.drop_probability = 0.0
        self.extra_latency_seconds = 0.0
        self._partitions: Set[Tuple[str, str]] = set()
        self._rng = random.Random(seed)

    # -- fault injection ---------------------------------------------------

    def set_faults(
        self,
        drop_probability: float = 0.0,
        extra_latency_seconds: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        """Configure loss and added delay (deterministic under ``seed``)."""
        if not 0.0 <= drop_probability <= 1.0:
            raise NetworkError("drop probability must be in [0, 1]")
        if extra_latency_seconds < 0:
            raise NetworkError("extra latency must be non-negative")
        self.drop_probability = drop_probability
        self.extra_latency_seconds = extra_latency_seconds
        if seed is not None:
            self._rng = random.Random(seed)

    def partition(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Sever the directed (src, dst) link (and its reverse by default)."""
        self._partitions.add((src, dst))
        if bidirectional:
            self._partitions.add((dst, src))

    def heal(self, src: Optional[str] = None, dst: Optional[str] = None) -> None:
        """Remove partitions: the (src, dst) pair, or all when omitted."""
        if src is None and dst is None:
            self._partitions.clear()
            return
        self._partitions.discard((src, dst))
        self._partitions.discard((dst, src))

    def is_partitioned(self, src: str, dst: str) -> bool:
        return (src, dst) in self._partitions

    # -- traffic -----------------------------------------------------------

    def transfer_time(self, payload_bytes: int) -> float:
        """Simulated seconds to deliver one message of this size."""
        return (
            self.latency_seconds
            + self.extra_latency_seconds
            + payload_bytes / self.bandwidth
        )

    def send(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        metrics: Optional[Metrics] = None,
    ) -> Optional[float]:
        """Account for one message; returns its simulated duration.

        Returns ``None`` when the message is lost to a partition or a
        probabilistic drop — the bytes never crossed, so only the
        ``drops`` counters move.
        """
        if payload_bytes < 0:
            raise NetworkError("payload size must be non-negative")
        link = self._links.setdefault((src, dst), LinkStats())
        lost = (src, dst) in self._partitions or (
            self.drop_probability > 0.0
            and self._rng.random() < self.drop_probability
        )
        if lost:
            link.drops += 1
            self.total.drops += 1
            if metrics:
                metrics.count(Metrics.MESSAGES_DROPPED)
            return None
        duration = self.transfer_time(payload_bytes)
        for stats in (link, self.total):
            stats.bytes += payload_bytes
            stats.messages += 1
            stats.busy_seconds += duration
        if metrics:
            metrics.count(Metrics.BYTES_SENT, payload_bytes)
            metrics.count(Metrics.MESSAGES_SENT)
        return duration

    def link(self, src: str, dst: str) -> LinkStats:
        return self._links.setdefault((src, dst), LinkStats())

    def links(self) -> Dict[Tuple[str, str], LinkStats]:
        return dict(self._links)

    def reset(self) -> None:
        self._links.clear()
        self.total = LinkStats()

    def __repr__(self) -> str:
        return f"SimulatedNetwork(total={self.total!r})"
