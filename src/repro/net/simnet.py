"""A deterministic simulated network.

Section 5.1's claims are about transmission volume ("if the volume of
relevant updates is smaller than the results ... we are further
reducing the network traffic"). The simulation therefore charges each
message a deterministic cost — latency plus size over bandwidth — and
keeps byte/message counters per link, which the E2/E3 benchmarks
report. No real sockets: everything runs in-process.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.metrics import Metrics


class LinkStats:
    """Counters for one directed (src, dst) link."""

    __slots__ = ("bytes", "messages", "busy_seconds")

    def __init__(self) -> None:
        self.bytes = 0
        self.messages = 0
        self.busy_seconds = 0.0

    def __repr__(self) -> str:
        return (
            f"LinkStats({self.messages} msgs, {self.bytes} bytes, "
            f"{self.busy_seconds:.6f}s)"
        )


class SimulatedNetwork:
    """Charges costs for messages between named endpoints."""

    def __init__(
        self,
        latency_seconds: float = 0.001,
        bandwidth_bytes_per_second: float = 1_000_000.0,
    ):
        if latency_seconds < 0:
            raise NetworkError("latency must be non-negative")
        if bandwidth_bytes_per_second <= 0:
            raise NetworkError("bandwidth must be positive")
        self.latency_seconds = latency_seconds
        self.bandwidth = bandwidth_bytes_per_second
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        self.total = LinkStats()

    def transfer_time(self, payload_bytes: int) -> float:
        """Simulated seconds to deliver one message of this size."""
        return self.latency_seconds + payload_bytes / self.bandwidth

    def send(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        metrics: Optional[Metrics] = None,
    ) -> float:
        """Account for one message; returns its simulated duration."""
        if payload_bytes < 0:
            raise NetworkError("payload size must be non-negative")
        duration = self.transfer_time(payload_bytes)
        link = self._links.setdefault((src, dst), LinkStats())
        for stats in (link, self.total):
            stats.bytes += payload_bytes
            stats.messages += 1
            stats.busy_seconds += duration
        if metrics:
            metrics.count(Metrics.BYTES_SENT, payload_bytes)
            metrics.count(Metrics.MESSAGES_SENT)
        return duration

    def link(self, src: str, dst: str) -> LinkStats:
        return self._links.setdefault((src, dst), LinkStats())

    def links(self) -> Dict[Tuple[str, str], LinkStats]:
        return dict(self._links)

    def reset(self) -> None:
        self._links.clear()
        self.total = LinkStats()

    def __repr__(self) -> str:
        return f"SimulatedNetwork(total={self.total!r})"
