"""Order-insensitive digests of query results.

Every result-bearing frame the server ships (initial, full, delta) is
stamped with a digest of the *post-apply* retained result. A client
applies the frame, digests its own copy, and compares: any divergence —
a lost frame the server believed delivered, a bit flip the codec let
through, a server-side bug — is detected at the moment it happens
instead of surfacing as silently wrong results.

The digest must be order-insensitive because a relation is a tid-keyed
set: two copies holding the same rows are equal regardless of iteration
order. Each row (tid + values) hashes independently through BLAKE2b and
the per-row hashes are XOR-folded; the row count rides along so results
that XOR to the same value with different cardinalities (e.g. a row
present twice vs. absent) still differ.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.relational.relation import Relation, Tid


def _canon_tid(tid: Tid) -> Any:
    """Tids are ints or nested tuples (join provenance); canonicalize
    tuples to lists for a deterministic JSON form."""
    if isinstance(tid, tuple):
        return [_canon_tid(part) for part in tid]
    return tid


def row_digest(tid: Tid, values) -> int:
    payload = json.dumps(
        [_canon_tid(tid), list(values)], separators=(",", ":")
    ).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


def relation_digest(relation: Relation) -> str:
    """A compact, order-insensitive fingerprint: ``<count>:<xor-hex>``."""
    acc = 0
    count = 0
    for row in relation:
        acc ^= row_digest(row.tid, row.values)
        count += 1
    return f"{count}:{acc:016x}"
