"""Client-server deployment of continual queries.

See DESIGN.md S7 and paper Section 5.1. Two deployment styles share
one server core: the deterministic in-process simulation
(:class:`SimulatedNetwork` + :class:`CQClient`) and real asyncio TCP
(:class:`CQService` + :class:`CQSession`) over the length-prefixed
wire codec in :mod:`repro.net.codec`.
"""

from repro.net.client import CQClient, CQSession
from repro.net.codec import (
    FrameDecoder,
    decode_payload,
    encode_frame,
    encode_payload,
    encoded_size,
)
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    HeartbeatAckMessage,
    HeartbeatMessage,
    HelloAckMessage,
    HelloMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    ResyncMessage,
    delta_wire_size,
    relation_wire_size,
)
from repro.net.server import CQServer, Protocol, Subscription
from repro.net.service import CQService
from repro.net.simnet import LinkStats, SimulatedNetwork
from repro.net.transport import (
    FaultInjector,
    FrameConnection,
    SimulatedTransport,
    TcpTransport,
    Transport,
)

__all__ = [
    "CQClient",
    "CQServer",
    "CQService",
    "CQSession",
    "DeltaAvailableMessage",
    "DeltaMessage",
    "FaultInjector",
    "FetchMessage",
    "FrameConnection",
    "FrameDecoder",
    "FullResultMessage",
    "HeartbeatAckMessage",
    "HeartbeatMessage",
    "HelloAckMessage",
    "HelloMessage",
    "InitialResultMessage",
    "LinkStats",
    "Message",
    "Protocol",
    "RegisterMessage",
    "ResyncMessage",
    "SimulatedNetwork",
    "SimulatedTransport",
    "Subscription",
    "TcpTransport",
    "Transport",
    "decode_payload",
    "delta_wire_size",
    "encode_frame",
    "encode_payload",
    "encoded_size",
    "relation_wire_size",
]
