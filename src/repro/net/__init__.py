"""Simulated client-server deployment of continual queries.

See DESIGN.md S7 and paper Section 5.1.
"""

from repro.net.client import CQClient
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    delta_wire_size,
    relation_wire_size,
)
from repro.net.server import CQServer, Protocol, Subscription
from repro.net.simnet import LinkStats, SimulatedNetwork

__all__ = [
    "CQClient",
    "CQServer",
    "DeltaAvailableMessage",
    "DeltaMessage",
    "FetchMessage",
    "FullResultMessage",
    "InitialResultMessage",
    "LinkStats",
    "Message",
    "Protocol",
    "RegisterMessage",
    "SimulatedNetwork",
    "Subscription",
    "delta_wire_size",
    "relation_wire_size",
]
