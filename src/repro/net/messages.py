"""Wire messages and size accounting.

Every message type here round-trips through the length-prefixed wire
codec (:mod:`repro.net.codec`); :meth:`Message.wire_size` is the
*measured* size of the encoded frame, so byte comparisons between
protocols reflect what actually crosses a socket. The per-value
estimators (:func:`relation_wire_size`, :func:`delta_wire_size`) remain
as cheap nominal approximations for pending-size notices and horizon
accounting, where encoding the payload just to size it would defeat the
purpose of the lazy protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.relational.relation import Relation
from repro.relational.types import value_wire_size
from repro.delta.differential import DeltaRelation
from repro.storage.timestamps import Timestamp

#: Nominal per-message envelope (headers, CQ id, sequence number) used
#: by the estimators below.
ENVELOPE_BYTES = 64
#: Nominal per-row overhead (tid + framing) used by the estimators.
ROW_OVERHEAD_BYTES = 12


def relation_wire_size(relation: Relation) -> int:
    """Nominal bytes to ship a complete relation (estimate)."""
    total = 0
    for row in relation:
        total += ROW_OVERHEAD_BYTES
        total += sum(value_wire_size(v) for v in row.values)
    return total


def delta_wire_size(delta: DeltaRelation) -> int:
    """Nominal bytes to ship a differential relation (estimate).

    Inserts and deletes ship one side; modifications ship both (the
    wide form of the paper's Example 1 table).
    """
    total = 0
    for entry in delta:
        total += ROW_OVERHEAD_BYTES + 8  # + timestamp
        if entry.old is not None:
            total += sum(value_wire_size(v) for v in entry.old)
        if entry.new is not None:
            total += sum(value_wire_size(v) for v in entry.new)
    return total


class Message:
    """Base class for CQ protocol messages.

    ``seq`` is the request/reply pairing contract for the cluster
    transports: the router stamps every scatter-cycle frame with a
    globally unique integer, the shard echoes it on the reply, and
    both the blocking ``ProcessBackend.send`` and the overlapped
    ``CycleEngine`` gather path pair replies to in-flight requests by
    that integer — a reply whose seq matches nothing in flight is
    stale (the late answer of a timed-out attempt) and is discarded,
    never matched by arrival order. Messages outside the scatter cycle
    leave it ``None``; transports that pair by seq refuse to send
    those rather than pair them by luck.
    """

    seq: Optional[int] = None

    def wire_size(self) -> int:
        """Measured size in bytes of this message's encoded frame."""
        from repro.net.codec import encoded_size

        return encoded_size(self)


class RegisterMessage(Message):
    """Client -> server: install a continual query.

    ``protocol`` names the refresh protocol (a ``Protocol`` enum value)
    so registration carries everything needed over a real wire; the
    in-process path may still pass the protocol out of band.
    """

    def __init__(self, cq_name: str, sql: str, protocol: Optional[str] = None):
        self.cq_name = cq_name
        self.sql = sql
        self.protocol = protocol

    def __repr__(self) -> str:
        return f"RegisterMessage({self.cq_name!r})"


class InitialResultMessage(Message):
    """Server -> client: E_0, the complete first result.

    ``digest`` (when stamped) is the order-insensitive fingerprint of
    the shipped result (:func:`repro.net.digest.relation_digest`); the
    client verifies its copy against it after storing."""

    def __init__(
        self,
        cq_name: str,
        result: Relation,
        ts: int,
        digest: Optional[str] = None,
    ):
        self.cq_name = cq_name
        self.result = result
        self.ts = ts
        self.digest = digest

    def __repr__(self) -> str:
        return f"InitialResultMessage({self.cq_name!r}, {len(self.result)} rows)"


class DeltaMessage(Message):
    """Server -> client: the differential refresh (the DRA protocol).

    ``digest`` fingerprints the *post-apply* retained result: the state
    the client's cached copy must reach after applying this delta. A
    mismatch after apply means the client's copy had silently diverged
    (or the frame was corrupted) — it discards the copy and resyncs."""

    def __init__(
        self,
        cq_name: str,
        delta: DeltaRelation,
        ts: int,
        digest: Optional[str] = None,
    ):
        self.cq_name = cq_name
        self.delta = delta
        self.ts = ts
        self.digest = digest

    def __repr__(self) -> str:
        return f"DeltaMessage({self.cq_name!r}, {self.delta!r})"


class DeltaAvailableMessage(Message):
    """Server -> client: a (possibly large) delta is pending; fetch at
    will. This is the lazy-transmission notice of Section 5.1 ("when
    the results turn out to be large ... a lazy evaluation and
    transmission of results is necessary")."""

    def __init__(self, cq_name: str, ts: int, entry_count: int, pending_bytes: int):
        self.cq_name = cq_name
        self.ts = ts
        self.entry_count = entry_count
        self.pending_bytes = pending_bytes

    def __repr__(self) -> str:
        return (
            f"DeltaAvailableMessage({self.cq_name!r}, {self.entry_count} "
            f"entries, {self.pending_bytes} bytes pending)"
        )


class FetchMessage(Message):
    """Client -> server: send me the pending delta for this CQ."""

    def __init__(self, cq_name: str):
        self.cq_name = cq_name

    def __repr__(self) -> str:
        return f"FetchMessage({self.cq_name!r})"


class FullResultMessage(Message):
    """Server -> client: a complete refreshed result (naive protocol,
    or the replay fallback when GC has passed a resuming client)."""

    def __init__(
        self,
        cq_name: str,
        result: Relation,
        ts: int,
        digest: Optional[str] = None,
    ):
        self.cq_name = cq_name
        self.result = result
        self.ts = ts
        self.digest = digest

    def __repr__(self) -> str:
        return f"FullResultMessage({self.cq_name!r}, {len(self.result)} rows)"


class ResyncMessage(Message):
    """Client -> server: my cached copy for this CQ is unusable (e.g. a
    delta arrived for a CQ I no longer hold after a restart); please
    re-send the complete result."""

    def __init__(self, cq_name: str):
        self.cq_name = cq_name

    def __repr__(self) -> str:
        return f"ResyncMessage({self.cq_name!r})"


class HelloMessage(Message):
    """Client -> server: first frame of every connection.

    ``resume`` maps CQ name -> the timestamp of the last refresh the
    client *applied*. On a fresh connect it is empty; on reconnect the
    server replays the missed window differentially from the update
    logs (paper Section 5.4's active delta zone bounds how far back
    that is possible)."""

    def __init__(self, client_id: str, resume: Optional[Dict[str, Timestamp]] = None):
        self.client_id = client_id
        self.resume = dict(resume or {})

    def __repr__(self) -> str:
        return f"HelloMessage({self.client_id!r}, resume={self.resume})"


class HelloAckMessage(Message):
    """Server -> client: connection accepted.

    ``resumed`` lists CQs whose missed window is being replayed (the
    replay follows as DeltaMessage or FullResultMessage frames);
    ``unknown`` lists resume requests the server has no subscription
    for — the client should re-register those."""

    def __init__(
        self,
        server_name: str,
        ts: Timestamp,
        resumed: Optional[List[str]] = None,
        unknown: Optional[List[str]] = None,
    ):
        self.server_name = server_name
        self.ts = ts
        self.resumed = list(resumed or [])
        self.unknown = list(unknown or [])

    def __repr__(self) -> str:
        return (
            f"HelloAckMessage({self.server_name!r}, ts={self.ts}, "
            f"resumed={self.resumed}, unknown={self.unknown})"
        )


class StatsMessage(Message):
    """Client -> server: admin introspection request.

    The server answers with a :class:`StatsReplyMessage` carrying its
    full :meth:`repro.net.service.CQService.stats` payload — live
    subscriptions, zone boundaries, per-session outbox depths and
    degraded sets, and the WAL/digest/backpressure counters."""

    def __repr__(self) -> str:
        return "StatsMessage()"


class StatsReplyMessage(Message):
    """Server -> client: the stats payload (a JSON-safe dict)."""

    def __init__(self, payload: Dict[str, object]):
        self.payload = dict(payload)

    def __repr__(self) -> str:
        return f"StatsReplyMessage({sorted(self.payload)})"


class ShardHelloMessage(Message):
    """Shard -> router: identity frame on spawn, attach, or recovery.

    ``horizon`` is the shard's applied-through timestamp — everything
    the router's update logs hold beyond it is the shard's missed
    window. ``subscriptions`` lists the ``sql_key`` CQs the shard still
    holds (recovered from its journal), so the router can detect and
    re-seed any registration the shard lost."""

    def __init__(
        self,
        shard_id: int,
        horizon: Timestamp,
        tables: Optional[List[str]] = None,
        subscriptions: Optional[List[str]] = None,
        groups: Optional[Dict[int, Dict]] = None,
    ):
        self.shard_id = shard_id
        self.horizon = horizon
        self.tables = list(tables or [])
        self.subscriptions = list(subscriptions or [])
        #: Per placement-group store state on a replicated host:
        #: ``{group: {"horizon": ts, "subs": [...]}}``. Empty on a
        #: plain single-store shard; the router then infers
        #: ``{shard_id: {...}}`` from the top-level fields.
        self.groups = {
            int(g): dict(info) for g, info in (groups or {}).items()
        }

    def __repr__(self) -> str:
        return (
            f"ShardHelloMessage(shard={self.shard_id}, "
            f"horizon={self.horizon}, subs={len(self.subscriptions)})"
        )


class ScatterMessage(Message):
    """Router -> shard: one refresh cycle's relevant work.

    ``deltas`` carries the consolidated per-table delta slices the
    shard must fold in (replicated tables get the whole window,
    partitioned tables only the shard's slice); ``baselines`` carries
    complete table states for (re-)seeding — the replay fallback and
    the index-handoff path. ``subscribe``/``unsubscribe`` piggyback
    registration control so a shard host needs exactly one inbound
    data-plane message type. ``collect`` asks the shard to run its own
    zone-bounded garbage collection after refreshing.

    ``group`` addresses one placement-group store on a replicated host
    (a host carries its own primary group plus replica stores of other
    groups); ``None`` means the host's own group — the pre-replication
    wire format, still accepted everywhere."""

    def __init__(
        self,
        shard_id: int,
        seq: int,
        ts: Timestamp,
        deltas: Optional[Dict[str, DeltaRelation]] = None,
        baselines: Optional[Dict[str, Relation]] = None,
        subscribe: Optional[List[Dict[str, str]]] = None,
        unsubscribe: Optional[List[str]] = None,
        collect: bool = False,
        group: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.seq = seq
        self.ts = ts
        self.deltas = dict(deltas or {})
        self.baselines = dict(baselines or {})
        self.subscribe = list(subscribe or [])
        self.unsubscribe = list(unsubscribe or [])
        self.collect = collect
        self.group = group

    def __repr__(self) -> str:
        return (
            f"ScatterMessage(shard={self.shard_id}, seq={self.seq}, "
            f"ts={self.ts}, deltas={sorted(self.deltas)}, "
            f"baselines={sorted(self.baselines)})"
        )


class GatherReplyMessage(Message):
    """Shard -> router: the partial result deltas of one cycle.

    ``entries`` is ``[(sql_key, delta, ts), ...]`` — each affected
    shard-side group's result delta, to be merged (and residual-
    confirmed) at the router before member notification. ``counters``
    snapshots the shard's metrics bag for cluster-wide stats
    aggregation."""

    def __init__(
        self,
        shard_id: int,
        seq: int,
        ts: Timestamp,
        horizon: Timestamp,
        entries: Optional[List] = None,
        counters: Optional[Dict[str, int]] = None,
        group: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.seq = seq
        self.ts = ts
        self.horizon = horizon
        self.entries = list(entries or [])
        self.counters = dict(counters or {})
        self.group = group

    def __repr__(self) -> str:
        return (
            f"GatherReplyMessage(shard={self.shard_id}, seq={self.seq}, "
            f"{len(self.entries)} entries)"
        )


class ShardHeartbeatMessage(Message):
    """Router -> shard: an empty-scatter cycle.

    No batch was relevant to this shard's footprints, so there is
    nothing to evaluate — but the shard still advances its clock to
    ``ts``, moves every group's refresh window forward (the Section 5.2
    relevance theorem makes their deltas provably empty), and with
    ``collect`` prunes its update logs — GC zones advance cluster-wide
    without a single term evaluation."""

    def __init__(
        self,
        shard_id: int,
        seq: int,
        ts: Timestamp,
        collect: bool = False,
        group: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.seq = seq
        self.ts = ts
        self.collect = collect
        self.group = group

    def __repr__(self) -> str:
        return (
            f"ShardHeartbeatMessage(shard={self.shard_id}, seq={self.seq}, "
            f"ts={self.ts})"
        )


class ShardPromoteMessage(Message):
    """Router -> shard: promote one replica store to group primary.

    ``ts`` is the group's *last served* timestamp — the horizon through
    which the failed primary's gathers were merged. The store registers
    each ``subscribe`` spec locally over its (hot, lockstep) tables at
    that timestamp, so the registration-era state matches the router's
    retained results exactly and the very next scatter's window
    ``(ts, now]`` yields the failed cycle's delta bit-identically. No
    baseline transfer, no downtime: promotion is a local evaluation
    over state the replica already holds."""

    def __init__(
        self,
        shard_id: int,
        group: int,
        seq: int,
        ts: Timestamp,
        subscribe: Optional[List[Dict[str, str]]] = None,
    ):
        self.shard_id = shard_id
        self.group = group
        self.seq = seq
        self.ts = ts
        self.subscribe = list(subscribe or [])

    def __repr__(self) -> str:
        return (
            f"ShardPromoteMessage(shard={self.shard_id}, "
            f"group={self.group}, seq={self.seq}, ts={self.ts}, "
            f"{len(self.subscribe)} subs)"
        )


class ShardDrainMessage(Message):
    """Router -> shard: detach one store (or every store) gracefully.

    The planned inverse of placement: after ``remove_shard`` hands a
    group's slices and ownership to the survivors, the departing (or
    demoted) store is drained — subscriptions deregistered, journal
    closed — instead of being crashed. ``group=None`` drains the whole
    host ahead of a clean process stop."""

    def __init__(
        self,
        shard_id: int,
        seq: int,
        ts: Timestamp,
        group: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.seq = seq
        self.ts = ts
        self.group = group

    def __repr__(self) -> str:
        return (
            f"ShardDrainMessage(shard={self.shard_id}, "
            f"group={self.group}, seq={self.seq})"
        )


class HeartbeatMessage(Message):
    """Server -> client: liveness probe carrying the server clock."""

    def __init__(self, ts: Timestamp):
        self.ts = ts

    def __repr__(self) -> str:
        return f"HeartbeatMessage(ts={self.ts})"


class HeartbeatAckMessage(Message):
    """Client -> server: heartbeat reply.

    ``applied`` maps CQ name -> last applied refresh timestamp; the
    server advances the subscription's GC-protected zone boundary from
    it, so update logs are retained exactly as far back as a live
    client might still need for delta replay."""

    def __init__(self, ts: Timestamp, applied: Optional[Dict[str, Timestamp]] = None):
        self.ts = ts
        self.applied = dict(applied or {})

    def __repr__(self) -> str:
        return f"HeartbeatAckMessage(ts={self.ts}, applied={self.applied})"
