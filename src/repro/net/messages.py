"""Wire messages and size estimation.

Messages carry live Python objects (the network is simulated), but
each knows its nominal serialized size, computed from the same
per-value accounting everywhere, so byte comparisons between protocols
are apples-to-apples.
"""

from __future__ import annotations


from repro.relational.relation import Relation
from repro.relational.types import value_wire_size
from repro.delta.differential import DeltaRelation

#: Fixed per-message envelope (headers, CQ id, sequence number).
ENVELOPE_BYTES = 64
#: Fixed per-row overhead (tid + framing).
ROW_OVERHEAD_BYTES = 12


def relation_wire_size(relation: Relation) -> int:
    """Nominal bytes to ship a complete relation."""
    total = 0
    for row in relation:
        total += ROW_OVERHEAD_BYTES
        total += sum(value_wire_size(v) for v in row.values)
    return total


def delta_wire_size(delta: DeltaRelation) -> int:
    """Nominal bytes to ship a differential relation.

    Inserts and deletes ship one side; modifications ship both (the
    wide form of the paper's Example 1 table).
    """
    total = 0
    for entry in delta:
        total += ROW_OVERHEAD_BYTES + 8  # + timestamp
        if entry.old is not None:
            total += sum(value_wire_size(v) for v in entry.old)
        if entry.new is not None:
            total += sum(value_wire_size(v) for v in entry.new)
    return total


class Message:
    """Base class for CQ protocol messages."""

    def wire_size(self) -> int:
        raise NotImplementedError


class RegisterMessage(Message):
    """Client -> server: install a continual query."""

    def __init__(self, cq_name: str, sql: str):
        self.cq_name = cq_name
        self.sql = sql

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.sql.encode("utf-8"))

    def __repr__(self) -> str:
        return f"RegisterMessage({self.cq_name!r})"


class InitialResultMessage(Message):
    """Server -> client: E_0, the complete first result."""

    def __init__(self, cq_name: str, result: Relation, ts: int):
        self.cq_name = cq_name
        self.result = result
        self.ts = ts

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + relation_wire_size(self.result)

    def __repr__(self) -> str:
        return f"InitialResultMessage({self.cq_name!r}, {len(self.result)} rows)"


class DeltaMessage(Message):
    """Server -> client: the differential refresh (the DRA protocol)."""

    def __init__(self, cq_name: str, delta: DeltaRelation, ts: int):
        self.cq_name = cq_name
        self.delta = delta
        self.ts = ts

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + delta_wire_size(self.delta)

    def __repr__(self) -> str:
        return f"DeltaMessage({self.cq_name!r}, {self.delta!r})"


class DeltaAvailableMessage(Message):
    """Server -> client: a (possibly large) delta is pending; fetch at
    will. This is the lazy-transmission notice of Section 5.1 ("when
    the results turn out to be large ... a lazy evaluation and
    transmission of results is necessary")."""

    def __init__(self, cq_name: str, ts: int, entry_count: int, pending_bytes: int):
        self.cq_name = cq_name
        self.ts = ts
        self.entry_count = entry_count
        self.pending_bytes = pending_bytes

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16  # two counters

    def __repr__(self) -> str:
        return (
            f"DeltaAvailableMessage({self.cq_name!r}, {self.entry_count} "
            f"entries, {self.pending_bytes} bytes pending)"
        )


class FetchMessage(Message):
    """Client -> server: send me the pending delta for this CQ."""

    def __init__(self, cq_name: str):
        self.cq_name = cq_name

    def wire_size(self) -> int:
        return ENVELOPE_BYTES

    def __repr__(self) -> str:
        return f"FetchMessage({self.cq_name!r})"


class FullResultMessage(Message):
    """Server -> client: a complete refreshed result (naive protocol)."""

    def __init__(self, cq_name: str, result: Relation, ts: int):
        self.cq_name = cq_name
        self.result = result
        self.ts = ts

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + relation_wire_size(self.result)

    def __repr__(self) -> str:
        return f"FullResultMessage({self.cq_name!r}, {len(self.result)} rows)"
