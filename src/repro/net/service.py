"""CQService: a CQServer hosted behind real asyncio TCP sockets.

The in-process :class:`~repro.net.server.CQServer` stays the single
source of truth for subscriptions, protocols, retained result copies,
and GC zones; this module adds the machinery a real deployment needs
around it:

* per-connection **sessions** keyed by client id, with a handshake
  (Hello/HelloAck) that resumes existing subscriptions differentially
  via :meth:`CQServer.replay`;
* **heartbeats** with a miss limit and an optional idle timeout, so
  dead peers are evicted and their replay zones released;
* **bounded outbound queues**: when a session's outbox backs up past
  ``queue_limit``, its push (DRA_DELTA) subscriptions degrade to the
  lazy DeltaAvailable protocol — the server keeps consolidating deltas
  server-side and ships one small notice instead of every delta — and
  are restored (with the accumulated delta shipped once) when the
  queue drains.

Zone discipline: socket sessions set ``defer_zone_advance``, so a
subscription's replay boundary only moves when the client's heartbeat
ack reports the refresh as *applied*. Everything newer than the last
acknowledged refresh stays GC-protected while the client is connected;
:meth:`CQServer.release_zones` on disconnect lets GC move on.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import NetworkError, RegistrationError
from repro.metrics import Metrics
from repro.storage.database import Database
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    HeartbeatAckMessage,
    HeartbeatMessage,
    HelloAckMessage,
    HelloMessage,
    Message,
    RegisterMessage,
    ResyncMessage,
    StatsMessage,
    StatsReplyMessage,
)
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.net.transport import FaultInjector, FrameConnection, TcpTransport


class _Session:
    """Server-side state for one connected client."""

    #: The CQServer must not advance replay zones on delivery: a frame
    #: in flight when the connection dies would otherwise lose its
    #: replay window. Heartbeat acks advance zones instead.
    defer_zone_advance = True

    def __init__(self, service: "CQService", client_id: str, conn: FrameConnection):
        self.service = service
        self.name = client_id  # CQServer.attach reads .name
        self.client_id = client_id
        self.conn = conn
        self.server = None  # set by CQServer.attach
        self.outbox: Deque[Message] = deque()
        self._wake = asyncio.Event()
        self.closed = False
        self.unacked_heartbeats = 0
        self.last_seen = asyncio.get_event_loop().time()
        #: CQs degraded to DRA_LAZY by backpressure, to restore later.
        self.degraded = set()
        self._tasks = []

    # -- CQServer endpoint interface ---------------------------------------

    def receive(self, message: Message) -> None:
        """Enqueue one outbound message (called synchronously by
        CQServer delivery paths)."""
        if self.closed:
            return
        if isinstance(message, DeltaAvailableMessage):
            # Coalesce: a newer pending-delta notice supersedes any
            # queued one for the same CQ.
            self.outbox = deque(
                queued
                for queued in self.outbox
                if not (
                    isinstance(queued, DeltaAvailableMessage)
                    and queued.cq_name == message.cq_name
                )
            )
        self.outbox.append(message)
        self._wake.set()

    @property
    def backlogged(self) -> bool:
        return len(self.outbox) >= self.service.queue_limit

    # -- tasks -------------------------------------------------------------

    def start(self) -> None:
        self._tasks = [
            asyncio.ensure_future(self._writer()),
            asyncio.ensure_future(self._heartbeats()),
        ]

    async def _writer(self) -> None:
        while not self.closed:
            if not self.outbox:
                self._wake.clear()
                if not self.outbox:
                    await self._wake.wait()
                continue
            message = self.outbox.popleft()
            try:
                await self.conn.send(message)
            except NetworkError:
                break

    async def _heartbeats(self) -> None:
        interval = self.service.heartbeat_interval
        if not interval:
            return
        metrics = self.service.metrics
        while not self.closed:
            await asyncio.sleep(interval)
            if self.closed:
                break
            now = asyncio.get_event_loop().time()
            idle = self.service.idle_timeout
            if idle and now - self.last_seen > idle:
                self.abort()
                break
            if self.unacked_heartbeats:
                metrics.count(Metrics.HEARTBEATS_MISSED)
                if self.unacked_heartbeats >= self.service.miss_limit:
                    self.abort()
                    break
            self.unacked_heartbeats += 1
            self.receive(HeartbeatMessage(self.service.db.now()))

    async def _reader(self) -> None:
        while not self.closed:
            message = await self.conn.recv()
            if message is None:
                break
            self.last_seen = asyncio.get_event_loop().time()
            self._handle(message)

    def _handle(self, message: Message) -> None:
        server = self.service.server
        try:
            if isinstance(message, RegisterMessage):
                server.handle_register(self.client_id, message)
            elif isinstance(message, FetchMessage):
                server.handle_fetch(self.client_id, message)
            elif isinstance(message, ResyncMessage):
                server.handle_resync(self.client_id, message)
            elif isinstance(message, StatsMessage):
                # Admin introspection: answer with the live service
                # stats payload over the same connection.
                self.receive(StatsReplyMessage(self.service.stats()))
            elif isinstance(message, HeartbeatAckMessage):
                self.unacked_heartbeats = 0
                for cq_name, ts in message.applied.items():
                    server.advance_zone(self.client_id, cq_name, ts)
            # Anything else (stray Hello, result frames) is ignored.
        except RegistrationError:
            # A duplicate register or a fetch for a dropped CQ is a
            # client/server race, not a reason to kill the session:
            # re-ship the retained copy so the client converges.
            if isinstance(message, (RegisterMessage, FetchMessage)):
                server.handle_resync(
                    self.client_id, ResyncMessage(message.cq_name)
                )

    # -- teardown ----------------------------------------------------------

    def abort(self) -> None:
        """Cut the socket without flushing (eviction, fault injection)."""
        self.closed = True
        self._wake.set()
        self.conn.abort()

    async def shutdown(self) -> None:
        self.closed = True
        self._wake.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        self.conn.close()
        await self.conn.wait_closed()


class CQService:
    """Hosts a :class:`CQServer` behind a listening TCP socket."""

    def __init__(
        self,
        db: Database,
        name: str = "server",
        metrics: Optional[Metrics] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        heartbeat_interval: float = 0.0,
        miss_limit: int = 3,
        idle_timeout: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
        server: Optional[CQServer] = None,
        share_evaluation: bool = False,
        durability=None,
        audit_interval: int = 0,
        tracer=None,
        fanout: bool = False,
        columnar: bool = False,
    ):
        self.db = db
        self.metrics = metrics if metrics is not None else (
            server.metrics if server is not None else Metrics()
        )
        #: ``durability=`` accepts a WriteAheadLog or a path; commits
        #: and subscription register/deregister events journal through
        #: it, and :meth:`CQService.recover` rebuilds a crashed service
        #: from the journal (plus the latest checkpoint, if any).
        if durability is not None and db.wal is None:
            if isinstance(durability, str):
                from repro.storage.wal import WriteAheadLog

                durability = WriteAheadLog(durability, metrics=self.metrics)
            db.attach_wal(durability)
        if server is None:
            # Message-level accounting still flows through a (lossless,
            # zero-latency) simulated network; the wire-level truth is
            # in bytes_encoded from the TCP frames.
            server = CQServer(
                db,
                SimulatedNetwork(latency_seconds=0.0),
                name=name,
                metrics=self.metrics,
                share_evaluation=share_evaluation,
                audit_interval=audit_interval,
                tracer=tracer,
                fanout=fanout,
                columnar=columnar,
            )
        else:
            if audit_interval and not server.audit_interval:
                server.audit_interval = audit_interval
            if tracer is not None:
                server.tracer = tracer
            if columnar:
                server.columnar = True
        self.server = server
        self.tracer = server.tracer
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.idle_timeout = idle_timeout
        self.transport = TcpTransport(self.metrics, injector)
        self.address: Optional[Tuple[str, int]] = None
        self._listener: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[str, _Session] = {}
        self._known_clients = set()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def recover(
        cls,
        wal_path: str,
        checkpoint_path: Optional[str] = None,
        metrics: Optional[Metrics] = None,
        **kwargs,
    ) -> "CQService":
        """Rebuild a crashed service from its journal (+ checkpoint).

        Replays the write-ahead log on top of the latest checkpoint
        (tolerating a torn tail), re-creates journaled subscriptions,
        and returns a service ready to :meth:`start` — reconnecting
        sessions then resume differentially through the normal
        Hello/replay handshake. ``kwargs`` pass through to the
        constructor (host, port, heartbeat_interval, ...)."""
        from repro.core.persistence import recover_server

        metrics = metrics if metrics is not None else Metrics()
        server = recover_server(
            wal_path,
            checkpoint_path=checkpoint_path,
            metrics=metrics,
            fanout=kwargs.get("fanout", False),
            columnar=kwargs.get("columnar", False),
        )
        return cls(server.db, metrics=metrics, server=server, **kwargs)

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self._listener is not None:
            raise NetworkError(f"service {self.server.name!r} already started")
        self._listener, self.address = await self.transport.serve(
            self.host, self.port, self._on_connection
        )
        return self.address

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for session in list(self._sessions.values()):
            await session.shutdown()
        # _on_connection handlers run their own cleanup, but the
        # listener may be gone before they finish; be idempotent.
        for client_id in list(self._sessions):
            self._drop_session(client_id)

    def sessions(self) -> Dict[str, _Session]:
        return dict(self._sessions)

    def evict(self, client_id: str) -> bool:
        """Forcibly cut one client's connection."""
        session = self._sessions.get(client_id)
        if session is None or session.closed:
            return False
        session.abort()
        return True

    def sever_connections(self) -> int:
        """Abort every live session socket mid-stream (fault
        injection for reconnect tests); returns the count."""
        count = 0
        for session in list(self._sessions.values()):
            if not session.closed:
                session.abort()
                count += 1
        return count

    # -- refresh -----------------------------------------------------------

    async def refresh(self) -> int:
        """Run one server refresh cycle and let writers make progress.

        Applies backpressure policy first: sessions whose outbox is at
        or past ``queue_limit`` have their DRA_DELTA subscriptions
        degraded to DRA_LAZY before the cycle computes anything, so a
        slow consumer costs one notice per cycle instead of a delta.
        """
        self._apply_backpressure()
        sent = self.server.refresh_all()
        await asyncio.sleep(0)
        return sent

    def _apply_backpressure(self) -> None:
        for session in self._sessions.values():
            if session.closed:
                continue
            if session.backlogged:
                for sub in self.server.subscriptions_for(session.client_id):
                    if sub.protocol is Protocol.DRA_DELTA:
                        sub.protocol = Protocol.DRA_LAZY
                        session.degraded.add(sub.cq_name)
                        self.metrics.count(Metrics.BACKPRESSURE_DEGRADES)
            elif session.degraded:
                self._restore(session)

    def _restore(self, session: _Session) -> None:
        """Undo a backpressure degrade: ship the delta accumulated
        while lazy as one consolidated push, then resume DRA_DELTA."""
        for sub in self.server.subscriptions_for(session.client_id):
            if sub.cq_name not in session.degraded:
                continue
            sub.protocol = Protocol.DRA_DELTA
            pending = sub.pending_delta
            if pending is not None and not pending.is_empty():
                from repro.net.digest import relation_digest

                sub.pending_delta = None
                sub.previous_result = pending.apply_to(sub.previous_result)
                self.server._deliver(
                    session.client_id,
                    DeltaMessage(
                        sub.cq_name,
                        pending,
                        sub.last_ts,
                        relation_digest(sub.previous_result),
                    ),
                )
        session.degraded.clear()

    # -- connection handling -----------------------------------------------

    async def _on_connection(self, conn: FrameConnection) -> None:
        hello = await conn.recv()
        if not isinstance(hello, HelloMessage):
            conn.close()
            await conn.wait_closed()
            return
        client_id = hello.client_id
        stale = self._sessions.pop(client_id, None)
        if stale is not None:
            await stale.shutdown()
        if client_id in self._known_clients:
            self.metrics.count(Metrics.RECONNECTS)
        self._known_clients.add(client_id)
        session = _Session(self, client_id, conn)
        self._sessions[client_id] = session
        self.server.attach(session)
        session.start()
        try:
            known = {
                sub.cq_name
                for sub in self.server.subscriptions_for(client_id)
            }
            resumed = sorted(cq for cq in hello.resume if cq in known)
            unknown = sorted(cq for cq in hello.resume if cq not in known)
            await conn.send(
                HelloAckMessage(
                    self.server.name, self.db.now(), resumed, unknown
                )
            )
            # Pin replay boundaries at the client's applied horizon
            # before any refresh can run, then replay missed windows.
            self.server.pin_zones(client_id, hello.resume)
            for cq_name in resumed:
                self.server.replay(client_id, cq_name, hello.resume[cq_name])
            await session._reader()
        except NetworkError:
            pass
        finally:
            # Drop before the (bounded, possibly slow) socket teardown:
            # zone release must not lag behind the disconnect.
            if self._sessions.get(client_id) is session:
                self._drop_session(client_id)
            await session.shutdown()

    def _drop_session(self, client_id: str) -> None:
        session = self._sessions.pop(client_id, None)
        if session is not None and session.degraded:
            # Disconnecting while degraded must not park the
            # subscription on DRA_LAZY forever: the next connection
            # starts with a fresh (empty) degraded set, so _restore
            # would never fire for it. Fold the accumulated delta into
            # the retained copy (no delivery — the peer is gone, and a
            # reconnect replays from the update logs anyway) and resume
            # the push protocol.
            for sub in self.server.subscriptions_for(client_id):
                if sub.cq_name not in session.degraded:
                    continue
                sub.protocol = Protocol.DRA_DELTA
                pending = sub.pending_delta
                if pending is not None and not pending.is_empty():
                    sub.pending_delta = None
                    sub.previous_result = pending.apply_to(
                        sub.previous_result
                    )
            session.degraded.clear()
        self.server.release_zones(client_id)
        self.server.detach(client_id)

    # -- introspection -----------------------------------------------------

    #: Counters every stats payload reports even at zero, so operators
    #: (and the wire protocol's consumers) can rely on their presence.
    _STATS_COUNTERS = (
        Metrics.WAL_APPENDS,
        Metrics.WAL_RECOVERED,
        Metrics.WAL_TORN_TRUNCATIONS,
        Metrics.DIGEST_MISMATCHES,
        Metrics.AUDITS,
        Metrics.AUDIT_DIVERGENCES,
        Metrics.BACKPRESSURE_DEGRADES,
        Metrics.CODEC_ERRORS,
        Metrics.BYTES_ENCODED,
        Metrics.BYTES_SENT,
        Metrics.RECONNECTS,
        Metrics.HEARTBEATS_MISSED,
        Metrics.REPLAYS,
        Metrics.REPLAY_FALLBACKS,
        Metrics.RESYNCS,
        Metrics.PREDINDEX_PROBES,
        Metrics.PREDINDEX_MATCHES,
        Metrics.PREDINDEX_INVALIDATIONS,
        Metrics.SHARED_GROUPS,
        Metrics.SHARED_GROUP_HITS,
        Metrics.KERNEL_CALLS,
        Metrics.KERNEL_ROWS,
    )

    def stats(self) -> Dict[str, object]:
        """The live introspection payload (JSON-safe): counters,
        histograms, subscriptions, per-CQ cost tables, session queue
        depths and degraded sets, and GC zone boundaries. This is what
        a :class:`~repro.net.messages.StatsMessage` gets back."""
        counters = self.metrics.snapshot()
        for name in self._STATS_COUNTERS:
            counters.setdefault(name, 0)
        histograms = {}
        for name, hist in self.metrics.histograms().items():
            histograms[name] = {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
                "buckets": [[exp, n] for exp, n in hist.buckets()],
            }
        sessions = [
            {
                "client": session.client_id,
                "outbox": len(session.outbox),
                "degraded": sorted(session.degraded),
                "unacked_heartbeats": session.unacked_heartbeats,
                "closed": session.closed,
            }
            for session in self._sessions.values()
        ]
        kernel_calls = counters.get(Metrics.KERNEL_CALLS, 0)
        return {
            "server": self.server.name,
            "now": self.db.now(),
            "counters": counters,
            # Columnar kernel efficiency (DESIGN.md §11): average rows
            # per kernel invocation; 0 until a columnar refresh runs.
            "rows_per_kernel_call": (
                round(counters.get(Metrics.KERNEL_ROWS, 0) / kernel_calls, 3)
                if kernel_calls
                else 0
            ),
            "histograms": histograms,
            "subscriptions": self.server.describe(),
            "per_cq": self.server.stats.to_dict(),
            "sessions": sessions,
            "zones": self.server.zones.boundaries(),
        }

    def prometheus(self) -> str:
        """The service metrics in Prometheus text exposition format."""
        from repro.obs.export import prometheus_text

        return prometheus_text(self.metrics)

    def status_report(self) -> str:
        return self.server.status_report()

    def __repr__(self) -> str:
        addr = self.address if self.address else "not started"
        return (
            f"CQService({self.server.name!r}, {addr}, "
            f"{len(self._sessions)} sessions)"
        )
