"""The CQ server: hosts base data, computes refreshes, ships messages.

Each client subscription carries a *protocol* choosing how refreshes
are computed and shipped:

* DRA_DELTA — differential re-evaluation, ship only the result delta
  (the paper's design: "each server only generates delta relations
  when communicating with the clients");
* REEVAL_DELTA — complete re-evaluation + Diff, ship the delta (the
  Propagate instantiation: same traffic as DRA, recompute cost);
* REEVAL_FULL — complete re-evaluation, ship the entire result every
  time (the naive pre-CQ workflow: re-issue the query, get everything).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError, RegistrationError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.relational.sql import parse_query
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.capture import deltas_since
from repro.delta.diff import diff
from repro.dra.algorithm import dra_execute
from repro.dra.prepared import PlanCache, PreparedCQ
from repro.core.scheduler import DeltaBatchCache
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    delta_wire_size,
)
from repro.net.simnet import SimulatedNetwork


class Protocol(enum.Enum):
    DRA_DELTA = "dra_delta"
    DRA_LAZY = "dra_lazy"
    REEVAL_DELTA = "reeval_delta"
    REEVAL_FULL = "reeval_full"


class Subscription:
    """One client's registration of one continual query."""

    __slots__ = (
        "client_id",
        "cq_name",
        "query",
        "sql_key",
        "protocol",
        "last_ts",
        "previous_result",
        "pending_delta",
    )

    def __init__(
        self,
        client_id: str,
        cq_name: str,
        query: SPJQuery,
        protocol: Protocol,
        last_ts: Timestamp,
        previous_result: Relation,
    ):
        self.client_id = client_id
        self.cq_name = cq_name
        self.query = query
        # Canonical SQL, rendered once: the key under which this
        # subscription shares evaluation groups and prepared plans with
        # identical subscriptions from other clients.
        self.sql_key = query.to_sql()
        self.protocol = protocol
        self.last_ts = last_ts
        # Retained server-side copy of the last shipped result state
        # (Section 3.3: "the copy is maintained at the site where the
        # differential query refresh is carried out").
        self.previous_result = previous_result
        # DRA_LAZY only: deltas accumulated since the client's last
        # fetch, composed so repeated changes to one tuple net out.
        self.pending_delta = None


class CQServer:
    """Hosts the database and serves continual-query subscriptions.

    With ``share_evaluation`` (the Section 5.2 "extracting common
    subexpressions" refinement applied at subscription granularity),
    DRA subscriptions with the same query text and refresh window are
    evaluated once per refresh cycle and the resulting delta is shipped
    to every subscriber — making server compute per cycle independent
    of the subscriber count (experiment E3b).

    Independently of full-evaluation sharing, ``share_deltas`` (on by
    default) routes every subscription's delta consolidation through a
    per-cycle :class:`~repro.core.scheduler.DeltaBatchCache`: even
    subscriptions with *different* queries share one update-log pass
    per (table, window) — observable as ``delta_batches_reused`` in
    the server metrics. The consolidated batches are identical to the
    private reads, so refresh results are unchanged.
    """

    def __init__(
        self,
        db: Database,
        network: SimulatedNetwork,
        name: str = "server",
        metrics: Optional[Metrics] = None,
        share_evaluation: bool = False,
        share_deltas: bool = True,
    ):
        self.db = db
        self.network = network
        self.name = name
        self.metrics = metrics if metrics is not None else Metrics()
        self.share_evaluation = share_evaluation
        self.share_deltas = share_deltas
        #: Prepared plans keyed by canonical query SQL: identical
        #: subscriptions from different clients share one compiled
        #: plan, revalidated against the catalog on every use.
        self.plans = PlanCache(db, self.metrics)
        self._clients: Dict[str, "object"] = {}
        self._subscriptions: Dict[Tuple[str, str], Subscription] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, client) -> None:
        """Connect a client endpoint (an object with .name/.receive)."""
        self._clients[client.name] = client
        client.server = self

    def _deliver(self, client_id: str, message: Message) -> None:
        client = self._clients.get(client_id)
        if client is None:
            raise NetworkError(f"no attached client {client_id!r}")
        self.network.send(
            self.name, client_id, message.wire_size(), self.metrics
        )
        client.receive(message)

    # -- registration -----------------------------------------------------------

    def handle_register(
        self,
        client_id: str,
        message: RegisterMessage,
        protocol: Protocol = Protocol.DRA_DELTA,
    ) -> Subscription:
        """Install a subscription and ship the initial result."""
        key = (client_id, message.cq_name)
        if key in self._subscriptions:
            raise RegistrationError(
                f"client {client_id!r} already registered {message.cq_name!r}"
            )
        query = parse_query(message.sql)
        if not isinstance(query, SPJQuery):
            raise RegistrationError(
                "the client-server protocol serves SPJ queries; aggregate "
                "CQs are managed by CQManager"
            )
        if protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY):
            # Compile before E_0: auto-created join indexes serve the
            # initial evaluation and every later differential refresh.
            self.plans.get(query.to_sql(), query)
        now = self.db.now()
        result = self.db.query(query, self.metrics)
        subscription = Subscription(
            client_id, message.cq_name, query, protocol, now, result
        )
        self._subscriptions[key] = subscription
        self._deliver(
            client_id, InitialResultMessage(message.cq_name, result, now)
        )
        return subscription

    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    # -- refresh ------------------------------------------------------------------

    def refresh_all(self) -> int:
        """Recompute and ship every subscription; returns message count."""
        sent = 0
        shared: Dict[Tuple[str, Protocol, Timestamp], "object"] = {}
        cache = (
            DeltaBatchCache(self.db, self.metrics) if self.share_deltas else None
        )
        for subscription in self._subscriptions.values():
            if self.share_evaluation and subscription.protocol is Protocol.DRA_DELTA:
                if self._refresh_shared_dra(subscription, shared, cache):
                    sent += 1
            elif self._refresh_one(subscription, cache):
                sent += 1
        return sent

    def _prepared(self, subscription: Subscription) -> PreparedCQ:
        """The subscription's cached compiled plan (shared by SQL)."""
        return self.plans.get(subscription.sql_key, subscription.query)

    def _deltas_for(
        self,
        subscription: Subscription,
        cache: Optional[DeltaBatchCache],
        now: Timestamp,
    ):
        """The subscription's consolidated refresh window, shared with
        every other subscription on the same (table, window) when the
        per-cycle delta-batch cache is enabled."""
        table_names = set(subscription.query.table_names)
        if cache is not None:
            return cache.deltas(table_names, subscription.last_ts, now)
        return deltas_since(
            [self.db.table(name) for name in table_names],
            subscription.last_ts,
        )

    def _refresh_shared_dra(
        self,
        subscription: Subscription,
        shared: Dict[Tuple[str, Protocol, Timestamp], "object"],
        cache: Optional[DeltaBatchCache] = None,
    ) -> bool:
        """DRA refresh with one evaluation per (query, window) group."""
        now = self.db.now()
        key = (
            subscription.sql_key,
            subscription.protocol,
            subscription.last_ts,
        )
        result = shared.get(key)
        if result is None:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                ts=now,
                metrics=self.metrics,
                prepared=self._prepared(subscription),
            )
            shared[key] = result
        subscription.last_ts = now
        if result.delta.is_empty():
            return False
        subscription.previous_result = result.delta.apply_to(
            subscription.previous_result
        )
        self._deliver(
            subscription.client_id,
            DeltaMessage(subscription.cq_name, result.delta, now),
        )
        return True

    def handle_fetch(self, client_id: str, message: FetchMessage) -> bool:
        """Ship a lazy subscription's accumulated delta; returns True
        if anything was pending."""
        subscription = self._subscriptions.get((client_id, message.cq_name))
        if subscription is None:
            raise RegistrationError(
                f"no subscription {message.cq_name!r} for client {client_id!r}"
            )
        pending = subscription.pending_delta
        if pending is None or pending.is_empty():
            return False
        subscription.pending_delta = None
        subscription.previous_result = pending.apply_to(
            subscription.previous_result
        )
        self._deliver(
            client_id,
            DeltaMessage(subscription.cq_name, pending, self.db.now()),
        )
        return True

    def _refresh_one(
        self,
        subscription: Subscription,
        cache: Optional[DeltaBatchCache] = None,
    ) -> bool:
        now = self.db.now()
        if subscription.protocol is Protocol.DRA_LAZY:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                ts=now,
                metrics=self.metrics,
                prepared=self._prepared(subscription),
            )
            subscription.last_ts = now
            if not result.has_changes():
                return False
            if subscription.pending_delta is None:
                subscription.pending_delta = result.delta
            else:
                subscription.pending_delta = subscription.pending_delta.compose(
                    result.delta
                )
            if subscription.pending_delta.is_empty():
                subscription.pending_delta = None
                return False
            self._deliver(
                subscription.client_id,
                DeltaAvailableMessage(
                    subscription.cq_name,
                    now,
                    len(subscription.pending_delta),
                    delta_wire_size(subscription.pending_delta),
                ),
            )
            return True
        if subscription.protocol is Protocol.DRA_DELTA:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                previous=subscription.previous_result,
                ts=now,
                metrics=self.metrics,
                prepared=self._prepared(subscription),
            )
            subscription.last_ts = now
            if not result.has_changes():
                return False
            subscription.previous_result = result.complete_result()
            self._deliver(
                subscription.client_id,
                DeltaMessage(subscription.cq_name, result.delta, now),
            )
            return True

        new_result = self.db.query(subscription.query, self.metrics)
        if subscription.protocol is Protocol.REEVAL_DELTA:
            delta = diff(subscription.previous_result, new_result, now)
            subscription.last_ts = now
            if delta.is_empty():
                return False
            subscription.previous_result = new_result
            self._deliver(
                subscription.client_id,
                DeltaMessage(subscription.cq_name, delta, now),
            )
            return True

        # REEVAL_FULL ships unconditionally: without a retained diff
        # there is no way to know nothing changed.
        subscription.last_ts = now
        subscription.previous_result = new_result
        self._deliver(
            subscription.client_id,
            FullResultMessage(subscription.cq_name, new_result, now),
        )
        return True

    def __repr__(self) -> str:
        return (
            f"CQServer({self.name!r}, {len(self._subscriptions)} subscriptions, "
            f"{len(self._clients)} clients)"
        )
