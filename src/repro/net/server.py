"""The CQ server: hosts base data, computes refreshes, ships messages.

Each client subscription carries a *protocol* choosing how refreshes
are computed and shipped:

* DRA_DELTA — differential re-evaluation, ship only the result delta
  (the paper's design: "each server only generates delta relations
  when communicating with the clients");
* REEVAL_DELTA — complete re-evaluation + Diff, ship the delta (the
  Propagate instantiation: same traffic as DRA, recompute cost);
* REEVAL_FULL — complete re-evaluation, ship the entire result every
  time (the naive pre-CQ workflow: re-issue the query, get everything).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError, RegistrationError
from repro.metrics import Metrics
from repro.obs.stats import CQStats, TeeMetrics
from repro.obs.trace import Tracer
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.relational.sql import parse_query
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.capture import deltas_since
from repro.delta.diff import diff
from repro.dra.algorithm import dra_execute
from repro.dra.predindex import PredicateIndex
from repro.dra.prepared import PlanCache, PreparedCQ
from repro.core.gc import ActiveDeltaZones
from repro.core.scheduler import DeltaBatchCache
from repro.net.digest import relation_digest
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    ResyncMessage,
    delta_wire_size,
)
from repro.net.simnet import SimulatedNetwork


class Protocol(enum.Enum):
    DRA_DELTA = "dra_delta"
    DRA_LAZY = "dra_lazy"
    REEVAL_DELTA = "reeval_delta"
    REEVAL_FULL = "reeval_full"


class Subscription:
    """One client's registration of one continual query."""

    __slots__ = (
        "client_id",
        "cq_name",
        "query",
        "sql_key",
        "protocol",
        "last_ts",
        "previous_result",
        "pending_delta",
    )

    def __init__(
        self,
        client_id: str,
        cq_name: str,
        query: SPJQuery,
        protocol: Protocol,
        last_ts: Timestamp,
        previous_result: Relation,
    ):
        self.client_id = client_id
        self.cq_name = cq_name
        self.query = query
        # Canonical SQL, rendered once: the key under which this
        # subscription shares evaluation groups and prepared plans with
        # identical subscriptions from other clients.
        self.sql_key = query.to_sql()
        self.protocol = protocol
        self.last_ts = last_ts
        # Retained server-side copy of the last shipped result state
        # (Section 3.3: "the copy is maintained at the site where the
        # differential query refresh is carried out").
        self.previous_result = previous_result
        # DRA_LAZY only: deltas accumulated since the client's last
        # fetch, composed so repeated changes to one tuple net out.
        self.pending_delta = None


class SharedGroup:
    """All subscriptions sharing one canonical SQL text.

    The group owns the fan-out unit of work: one predicate-index entry
    (``sub_id`` = ``sql_key``), one maintained result, one DRA
    evaluation per refresh cycle. ``result`` is only ever *replaced*
    (``delta.apply_to`` returns a fresh relation), never mutated in
    place, so member subscriptions may alias it as their retained copy
    and lazily-degraded snapshots stay coherent.
    """

    __slots__ = ("sql_key", "query", "members", "result", "last_ts")

    def __init__(
        self,
        sql_key: str,
        query: SPJQuery,
        result: Relation,
        last_ts: Timestamp,
    ):
        self.sql_key = sql_key
        self.query = query
        #: Subscription keys ``(client_id, cq_name)`` in the group.
        self.members: Set[Tuple[str, str]] = set()
        #: The maintained result at ``last_ts`` — Q(state at last_ts).
        self.result = result
        self.last_ts = last_ts

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.query.table_names)))


class CQServer:
    """Hosts the database and serves continual-query subscriptions.

    With ``share_evaluation`` (the Section 5.2 "extracting common
    subexpressions" refinement applied at subscription granularity),
    DRA subscriptions with the same query text and refresh window are
    evaluated once per refresh cycle and the resulting delta is shipped
    to every subscriber — making server compute per cycle independent
    of the subscriber count (experiment E3b).

    Independently of full-evaluation sharing, ``share_deltas`` (on by
    default) routes every subscription's delta consolidation through a
    per-cycle :class:`~repro.core.scheduler.DeltaBatchCache`: even
    subscriptions with *different* queries share one update-log pass
    per (table, window) — observable as ``delta_batches_reused`` in
    the server metrics. The consolidated batches are identical to the
    private reads, so refresh results are unchanged.
    """

    def __init__(
        self,
        db: Database,
        network: SimulatedNetwork,
        name: str = "server",
        metrics: Optional[Metrics] = None,
        share_evaluation: bool = False,
        share_deltas: bool = True,
        audit_interval: int = 0,
        tracer: Optional[Tracer] = None,
        fanout: bool = False,
        columnar: bool = False,
    ):
        self.db = db
        self.network = network
        #: Columnar term evaluation (DESIGN.md §11): refreshes run the
        #: struct-of-arrays kernel pipelines instead of the per-row
        #: interpreter; deltas shipped to clients are identical.
        self.columnar = columnar
        self.name = name
        self.metrics = metrics if metrics is not None else Metrics()
        #: Observability (DESIGN.md §9): spans around each
        #: subscription's refresh and each wire delivery, plus per-CQ
        #: cumulative cost attribution in ``stats``.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.stats = CQStats()
        # Installed around one subscription's refresh: a scoped
        # TeeMetrics that also charges self.metrics, feeding stats.
        self._scoped_metrics: Optional[TeeMetrics] = None
        self.share_evaluation = share_evaluation
        self.share_deltas = share_deltas
        #: Sampled self-audit: every ``audit_interval``-th differential
        #: refresh also runs a full re-evaluation and compares digests,
        #: counting (and healing) any divergence between the maintained
        #: copy and the ground truth. 0 disables the audit.
        self.audit_interval = audit_interval
        self._refreshes_since_audit = 0
        #: Prepared plans keyed by canonical query SQL: identical
        #: subscriptions from different clients share one compiled
        #: plan, revalidated against the catalog on every use.
        self.plans = PlanCache(db, self.metrics)
        #: Per-subscription active delta zones (paper Section 5.4): one
        #: boundary per (client, cq) pinning the update-log suffix a
        #: connected client may still need for differential replay.
        #: :meth:`collect_garbage` prunes up to the oldest boundary.
        self.zones = ActiveDeltaZones(db)
        self._clients: Dict[str, "object"] = {}
        self._subscriptions: Dict[Tuple[str, str], Subscription] = {}
        #: Predicate-index fan-out (DESIGN.md §10): subscriptions group
        #: by ``sql_key``; one index entry per group routes each cycle's
        #: consolidated batch to the affected groups, each of which
        #: evaluates once and ships the delta to every member — server
        #: compute per cycle scales with affected *templates*, not
        #: subscribers. Detached members are skipped (their zones keep
        #: the replay window); deregistering the last member drops the
        #: group and its index entry.
        self.fanout_index: Optional[PredicateIndex] = (
            PredicateIndex(self.metrics) if fanout else None
        )
        self._groups: Dict[str, SharedGroup] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, client) -> None:
        """Connect a client endpoint (an object with .name/.receive)."""
        self._clients[client.name] = client
        client.server = self

    def detach(self, client_id: str) -> None:
        """Disconnect a client endpoint; its subscriptions survive for
        a later reconnect, but deliveries to it stop."""
        self._clients.pop(client_id, None)

    def _metrics(self) -> Metrics:
        """The bag the refresh machinery charges: the per-subscription
        tee while a refresh is scoped, the shared bag otherwise."""
        scoped = self._scoped_metrics
        return scoped if scoped is not None else self.metrics

    def _deliver(self, client_id: str, message: Message) -> bool:
        """Ship one message; returns False when the network lost it."""
        client = self._clients.get(client_id)
        if client is None:
            raise NetworkError(f"no attached client {client_id!r}")
        size = message.wire_size()
        with self.tracer.span(
            "wire.send",
            client=client_id,
            msg=type(message).__name__,
            bytes=size,
        ) as span:
            duration = self.network.send(
                self.name, client_id, size, self._metrics()
            )
            if duration is None:
                span.set(dropped=True)
                return False
            client.receive(message)
        cq_name = getattr(message, "cq_name", None)
        if cq_name is not None and self._scoped_metrics is None:
            # Outside a scoped refresh (fetch / resync / replay) the
            # per-CQ byte attribution is charged here directly.
            self.stats.record(
                cq_name,
                {Metrics.BYTES_SENT: size, Metrics.MESSAGES_SENT: 1},
            )
        return True

    # -- GC zones ----------------------------------------------------------

    @staticmethod
    def _zone(client_id: str, cq_name: str) -> str:
        return f"{client_id}:{cq_name}"

    def _note_refresh(self, subscription: Subscription, delivered: bool) -> None:
        """Advance the subscription's zone after a refresh.

        Session endpoints (real sockets) set ``defer_zone_advance``:
        their boundary only moves when the client *acknowledges* having
        applied a refresh, so the replay window survives in-flight
        loss. In-process clients apply synchronously, so a successful
        delivery (or an empty window) advances immediately.
        """
        client = self._clients.get(subscription.client_id)
        if client is not None and getattr(client, "defer_zone_advance", False):
            return
        if delivered:
            self.zones.try_advance(
                self._zone(subscription.client_id, subscription.cq_name),
                subscription.last_ts,
            )

    def advance_zone(self, client_id: str, cq_name: str, ts: Timestamp) -> bool:
        """Move a subscription's replay boundary (client acked ``ts``)."""
        return self.zones.try_advance(self._zone(client_id, cq_name), ts)

    def release_zones(self, client_id: str) -> None:
        """Stop GC-protecting a client's replay windows (disconnect):
        its subscriptions survive, but the update-log suffix behind its
        last acknowledged refresh may now be retired."""
        for (cid, cq_name) in self._subscriptions:
            if cid == client_id:
                self.zones.remove(self._zone(cid, cq_name))

    def pin_zones(self, client_id: str, applied: Dict[str, Timestamp]) -> None:
        """(Re-)register a reconnecting client's replay boundaries at
        its last-applied timestamps."""
        for (cid, cq_name), subscription in self._subscriptions.items():
            if cid != client_id:
                continue
            ts = applied.get(cq_name, subscription.last_ts)
            self.zones.register(
                self._zone(cid, cq_name),
                tuple(subscription.query.table_names),
                ts,
            )

    def collect_garbage(self, include_unwatched: bool = False) -> Dict[str, int]:
        """Prune update logs up to the oldest subscription boundary."""
        return self.zones.collect(include_unwatched=include_unwatched)

    # -- registration -----------------------------------------------------------

    def handle_register(
        self,
        client_id: str,
        message: RegisterMessage,
        protocol: Optional[Protocol] = None,
    ) -> Subscription:
        """Install a subscription and ship the initial result.

        The protocol comes from the explicit argument (in-process
        path), the message's ``protocol`` field (wire path), or
        defaults to DRA_DELTA.
        """
        key = (client_id, message.cq_name)
        if key in self._subscriptions:
            raise RegistrationError(
                f"client {client_id!r} already registered {message.cq_name!r}"
            )
        if protocol is None:
            protocol = (
                Protocol(message.protocol)
                if message.protocol
                else Protocol.DRA_DELTA
            )
        query = parse_query(message.sql)
        if not isinstance(query, SPJQuery):
            raise RegistrationError(
                "the client-server protocol serves SPJ queries; aggregate "
                "CQs are managed by CQManager"
            )
        if protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY):
            # Compile before E_0: auto-created join indexes serve the
            # initial evaluation and every later differential refresh.
            self.plans.get(query.to_sql(), query)
        now = self.db.now()
        group = None
        if self.fanout_index is not None:
            result, group = self._join_group(query, now)
        else:
            result = self.db.query(query, self.metrics)
        subscription = Subscription(
            client_id, message.cq_name, query, protocol, now, result
        )
        self._subscriptions[key] = subscription
        if group is not None:
            group.members.add(key)
        self.zones.register(
            self._zone(client_id, message.cq_name),
            tuple(query.table_names),
            now,
        )
        if self.db.wal is not None:
            from repro.storage.wal import KIND_SUB_REGISTER

            self.db.wal.log_event(
                KIND_SUB_REGISTER,
                client=client_id,
                cq=message.cq_name,
                sql=subscription.sql_key,
                protocol=protocol.value,
                ts=now,
            )
        self._deliver(
            client_id,
            InitialResultMessage(
                message.cq_name, result, now, relation_digest(result)
            ),
        )
        return subscription

    def deregister(self, client_id: str, cq_name: str) -> None:
        """Drop a subscription, its GC-protected zone, and its shared
        ``sql_key`` group membership — the last member leaving also
        drops the group and its predicate-index entry, so no later
        batch is ever routed (or fanned out) to a dead subscriber."""
        subscription = self._subscriptions.pop((client_id, cq_name), None)
        if subscription is None:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            )
        self.zones.remove(self._zone(client_id, cq_name))
        self._leave_group(subscription, (client_id, cq_name))
        if self.db.wal is not None:
            from repro.storage.wal import KIND_SUB_DEREGISTER

            self.db.wal.log_event(
                KIND_SUB_DEREGISTER, client=client_id, cq=cq_name
            )

    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    def subscriptions_for(self, client_id: str) -> List[Subscription]:
        return [
            s for (cid, __), s in self._subscriptions.items() if cid == client_id
        ]

    # -- shared materialization groups -------------------------------------

    def _join_group(
        self, query: SPJQuery, now: Timestamp
    ) -> Tuple[Relation, "SharedGroup"]:
        """The shared group (and its current result) for one query.

        The first subscription of a template pays the full E_0 and
        installs the group's predicate-index entry; every later one
        reuses the maintained group result — advanced differentially to
        ``now`` first — instead of re-running the query.
        """
        sql_key = query.to_sql()
        group = self._groups.get(sql_key)
        if group is None:
            result = self.db.query(query, self.metrics)
            group = SharedGroup(sql_key, query, result, now)
            self._groups[sql_key] = group
            scopes = {
                ref.alias: self.db.table(ref.table).schema
                for ref in query.relations
            }
            self.fanout_index.add(sql_key, query, scopes)
            self.metrics.count(Metrics.SHARED_GROUPS)
        else:
            self._advance_group(group, now)
            self.metrics.count(Metrics.SHARED_GROUP_HITS)
        return group.result, group

    def _leave_group(
        self, subscription: Subscription, key: Tuple[str, str]
    ) -> None:
        if self.fanout_index is None:
            return
        group = self._groups.get(subscription.sql_key)
        if group is None:
            return
        group.members.discard(key)
        if not group.members:
            del self._groups[subscription.sql_key]
            self.fanout_index.remove(subscription.sql_key)

    def rebuild_groups(self) -> int:
        """Re-seed shared groups and the fan-out index after recovery.

        WAL replay rebuilds subscriptions but not the in-memory shared
        materialization groups or their predicate-index entries (both
        are derived state). Re-derive them: one group per distinct DRA
        ``sql_key``, its result evaluated fresh at ``now`` — exactly the
        state a clean registration sequence would have produced.
        Returns the number of groups created."""
        if self.fanout_index is None:
            return 0
        created = 0
        now = self.db.now()
        for key, subscription in sorted(self._subscriptions.items()):
            if subscription.protocol not in (
                Protocol.DRA_DELTA,
                Protocol.DRA_LAZY,
            ):
                continue
            group = self._groups.get(subscription.sql_key)
            if group is None:
                before = len(self._groups)
                result, group = self._join_group(subscription.query, now)
                created += len(self._groups) - before
            group.members.add(key)
        return created

    def _advance_group(self, group: SharedGroup, now: Timestamp) -> None:
        """Bring ``group.result`` forward to Q(state at ``now``)."""
        if group.last_ts >= now:
            return
        deltas = deltas_since(
            [self.db.table(name) for name in group.tables], group.last_ts
        )
        if deltas:
            result = dra_execute(
                group.query,
                self.db,
                deltas=deltas,
                previous=group.result,
                ts=now,
                metrics=self._metrics(),
                prepared=self.plans.get(group.sql_key, group.query),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            if result.has_changes():
                group.result = result.delta.apply_to(group.result)
        group.last_ts = now

    def _window(
        self,
        tables: Tuple[str, ...],
        since: Timestamp,
        cache: Optional[DeltaBatchCache],
        now: Timestamp,
    ):
        if cache is not None:
            return cache.deltas(set(tables), since, now)
        return deltas_since([self.db.table(name) for name in tables], since)

    def _refresh_fanout(self) -> int:
        """One predicate-index pass decides which ``sql_key`` groups see
        relevant entries this cycle; unaffected groups advance without
        evaluating anything (the Section 5.2 relevance theorem makes
        their result deltas provably empty), affected groups evaluate
        once and fan the delta out to every member. Members whose
        window diverged from the group's (a reconnect replay realigned
        them mid-cycle) fall back to the per-subscription path and
        rejoin the group next cycle. Detached members are skipped, not
        raised on — their zones hold the replay window for reconnect.
        """
        sent = 0
        now = self.db.now()
        cache = (
            DeltaBatchCache(self.db, self.metrics, self.tracer)
            if self.share_deltas
            else None
        )
        routes: Dict[Tuple[Tuple[str, ...], Timestamp], Set[str]] = {}
        handled: Set[Tuple[str, str]] = set()
        for sql_key in list(self._groups):
            group = self._groups[sql_key]
            members = [
                self._subscriptions[key]
                for key in sorted(group.members)
                if key in self._subscriptions
            ]
            sharable = [
                s
                for s in members
                if s.protocol in (Protocol.DRA_DELTA, Protocol.DRA_LAZY)
                and s.last_ts == group.last_ts
            ]
            since = group.last_ts
            route_key = (group.tables, since)
            routed = routes.get(route_key)
            if routed is None:
                routed = self.fanout_index.match_batch(
                    self._window(group.tables, since, cache, now)
                )
                routes[route_key] = routed
            if sql_key not in routed:
                group.last_ts = now
                for s in sharable:
                    s.last_ts = now
                    self._note_refresh(s, True)
                    handled.add((s.client_id, s.cq_name))
                continue
            result = dra_execute(
                group.query,
                self.db,
                deltas=self._window(group.tables, since, cache, now),
                previous=group.result,
                ts=now,
                metrics=self.metrics,
                prepared=self.plans.get(sql_key, group.query),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            if result.has_changes():
                group.result = result.delta.apply_to(group.result)
            group.last_ts = now
            if len(sharable) > 1:
                self.metrics.count(
                    Metrics.SHARED_GROUP_HITS, len(sharable) - 1
                )
            for s in sharable:
                handled.add((s.client_id, s.cq_name))
                s.last_ts = now
                if s.protocol is Protocol.DRA_DELTA:
                    s.previous_result = group.result
                    if result.delta.is_empty():
                        self._note_refresh(s, True)
                        continue
                    if s.client_id not in self._clients:
                        self._note_refresh(s, False)
                        continue
                    delivered = self._deliver(
                        s.client_id,
                        DeltaMessage(
                            s.cq_name,
                            result.delta,
                            now,
                            relation_digest(group.result),
                        ),
                    )
                    self._note_refresh(s, delivered)
                    if delivered:
                        sent += 1
                else:  # DRA_LAZY: accumulate, announce, apply on fetch.
                    if result.delta.is_empty():
                        continue
                    if s.pending_delta is None:
                        s.pending_delta = result.delta
                    else:
                        s.pending_delta = s.pending_delta.compose(result.delta)
                    if s.pending_delta.is_empty():
                        s.pending_delta = None
                        continue
                    if s.client_id not in self._clients:
                        continue
                    delivered = self._deliver(
                        s.client_id,
                        DeltaAvailableMessage(
                            s.cq_name,
                            now,
                            len(s.pending_delta),
                            delta_wire_size(s.pending_delta),
                        ),
                    )
                    if delivered:
                        sent += 1
        # Everyone else — REEVAL baselines, diverged windows — refreshes
        # on the per-subscription path with scoped cost attribution.
        for key, subscription in list(self._subscriptions.items()):
            if key in handled:
                continue
            scoped = TeeMetrics(self.metrics)
            self._scoped_metrics = scoped
            delivered = False
            try:
                delivered = self._refresh_one(subscription, cache)
            finally:
                self._scoped_metrics = None
                self.stats.record(
                    subscription.cq_name,
                    {
                        name: value
                        for name, value in scoped.snapshot().items()
                        if value
                    },
                )
            if delivered:
                sent += 1
        return sent

    # -- refresh ------------------------------------------------------------------

    def refresh_all(self) -> int:
        """Recompute and ship every subscription; returns message count."""
        if self.fanout_index is not None:
            return self._refresh_fanout()
        sent = 0
        shared: Dict[Tuple[str, Protocol, Timestamp], "object"] = {}
        cache = (
            DeltaBatchCache(self.db, self.metrics, self.tracer)
            if self.share_deltas
            else None
        )
        for subscription in self._subscriptions.values():
            # Scope counter charges to this subscription's refresh:
            # the tee still charges the shared bag, the scoped copy
            # feeds the per-CQ attribution table.
            scoped = TeeMetrics(self.metrics)
            self._scoped_metrics = scoped
            delivered = False
            span = self.tracer.span(
                "sub.refresh",
                client=subscription.client_id,
                cq=subscription.cq_name,
                protocol=subscription.protocol.value,
            )
            try:
                with span:
                    if (
                        self.share_evaluation
                        and subscription.protocol is Protocol.DRA_DELTA
                    ):
                        delivered = self._refresh_shared_dra(
                            subscription, shared, cache
                        )
                    else:
                        delivered = self._refresh_one(subscription, cache)
                    span.set(
                        delivered=delivered,
                        **{
                            name: value
                            for name, value in scoped.snapshot().items()
                            if value
                        },
                    )
            finally:
                self._scoped_metrics = None
                self.stats.record(
                    subscription.cq_name,
                    {
                        name: value
                        for name, value in scoped.snapshot().items()
                        if value
                    },
                )
            if delivered:
                sent += 1
        return sent

    def _prepared(self, subscription: Subscription) -> PreparedCQ:
        """The subscription's cached compiled plan (shared by SQL)."""
        return self.plans.get(subscription.sql_key, subscription.query)

    def _deltas_for(
        self,
        subscription: Subscription,
        cache: Optional[DeltaBatchCache],
        now: Timestamp,
    ):
        """The subscription's consolidated refresh window, shared with
        every other subscription on the same (table, window) when the
        per-cycle delta-batch cache is enabled."""
        table_names = set(subscription.query.table_names)
        if cache is not None:
            return cache.deltas(table_names, subscription.last_ts, now)
        return deltas_since(
            [self.db.table(name) for name in table_names],
            subscription.last_ts,
        )

    def _refresh_shared_dra(
        self,
        subscription: Subscription,
        shared: Dict[Tuple[str, Protocol, Timestamp], "object"],
        cache: Optional[DeltaBatchCache] = None,
    ) -> bool:
        """DRA refresh with one evaluation per (query, window) group."""
        now = self.db.now()
        key = (
            subscription.sql_key,
            subscription.protocol,
            subscription.last_ts,
        )
        result = shared.get(key)
        if result is None:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                ts=now,
                metrics=self._metrics(),
                prepared=self._prepared(subscription),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            shared[key] = result
        subscription.last_ts = now
        if result.delta.is_empty():
            self._note_refresh(subscription, True)
            return False
        subscription.previous_result = result.delta.apply_to(
            subscription.previous_result
        )
        self._maybe_audit(subscription)
        delivered = self._deliver(
            subscription.client_id,
            DeltaMessage(
                subscription.cq_name,
                result.delta,
                now,
                relation_digest(subscription.previous_result),
            ),
        )
        self._note_refresh(subscription, delivered)
        return delivered

    def _maybe_audit(self, subscription: Subscription) -> None:
        """Sampled self-verification of the maintained retained copy.

        Every ``audit_interval``-th differential refresh re-runs the
        query from scratch and compares digests. A divergence means the
        incremental path drifted from ground truth (the failure class
        digests exist to catch); it is counted and the retained copy is
        healed to the re-evaluated result, so the *next* delta the
        client applies will digest-mismatch and trigger its resync.
        """
        if not self.audit_interval:
            return
        self._refreshes_since_audit += 1
        if self._refreshes_since_audit < self.audit_interval:
            return
        self._refreshes_since_audit = 0
        self._metrics().count(Metrics.AUDITS)
        truth = self.db.query(subscription.query)
        if relation_digest(truth) != relation_digest(
            subscription.previous_result
        ):
            self._metrics().count(Metrics.AUDIT_DIVERGENCES)
            subscription.previous_result = truth

    def handle_fetch(self, client_id: str, message: FetchMessage) -> bool:
        """Ship a lazy subscription's accumulated delta; returns True
        if anything was pending."""
        subscription = self._subscriptions.get((client_id, message.cq_name))
        if subscription is None:
            raise RegistrationError(
                f"no subscription {message.cq_name!r} for client {client_id!r}"
            )
        pending = subscription.pending_delta
        if pending is None or pending.is_empty():
            return False
        subscription.pending_delta = None
        subscription.previous_result = pending.apply_to(
            subscription.previous_result
        )
        delivered = self._deliver(
            client_id,
            DeltaMessage(
                subscription.cq_name,
                pending,
                subscription.last_ts,
                relation_digest(subscription.previous_result),
            ),
        )
        self._note_refresh(subscription, delivered)
        return delivered

    def handle_resync(self, client_id: str, message: ResyncMessage) -> bool:
        """Re-ship the retained result copy to a client whose cache is
        unusable (e.g. a delta raced a client restart). No recompute:
        the server's Section 3.3 copy is exactly the last shipped
        state."""
        subscription = self._subscriptions.get((client_id, message.cq_name))
        if subscription is None:
            return False
        self.metrics.count(Metrics.RESYNCS)
        return self._deliver(
            client_id,
            FullResultMessage(
                subscription.cq_name,
                subscription.previous_result,
                subscription.last_ts,
                relation_digest(subscription.previous_result),
            ),
        )

    # -- reconnect replay --------------------------------------------------

    def replay(self, client_id: str, cq_name: str, since_ts: Timestamp) -> bool:
        """Resume a reconnected client differentially (Section 5.4).

        The client last applied a refresh at ``since_ts``; everything
        newer is its missed window. While the window is still inside
        the table's active delta zone, the resume is a single
        DeltaMessage consolidated from the update logs — full-result
        bytes never cross the wire. When garbage collection has pruned
        past the client's horizon, the only sound answer is a complete
        result (counted as ``replay_fallbacks``).

        Returns True for a differential resume, False for a fallback.
        """
        subscription = self._subscriptions.get((client_id, cq_name))
        if subscription is None:
            raise RegistrationError(
                f"no subscription {cq_name!r} for client {client_id!r}"
            )
        now = self.db.now()
        tables = [
            self.db.table(name) for name in set(subscription.query.table_names)
        ]
        window_intact = all(
            table.log.pruned_through <= since_ts for table in tables
        )
        if subscription.protocol is Protocol.REEVAL_FULL or not window_intact:
            result = self.db.query(subscription.query, self.metrics)
            subscription.previous_result = result
            subscription.pending_delta = None
            subscription.last_ts = now
            if subscription.protocol is not Protocol.REEVAL_FULL:
                self.metrics.count(Metrics.REPLAY_FALLBACKS)
            self.zones.register(
                self._zone(client_id, cq_name),
                tuple(subscription.query.table_names),
                since_ts,
            )
            self._deliver(
                client_id,
                FullResultMessage(
                    cq_name, result, now, relation_digest(result)
                ),
            )
            return False
        # Realign the server's retained copy to state(now) over its own
        # (narrower) window first: previous_result is at last_ts, with
        # any un-fetched lazy delta still pending on top of it.
        current = subscription.previous_result
        if (
            subscription.pending_delta is not None
            and not subscription.pending_delta.is_empty()
        ):
            current = subscription.pending_delta.apply_to(current)
            subscription.pending_delta = None
        own_window = deltas_since(tables, subscription.last_ts)
        if own_window:
            advanced = dra_execute(
                subscription.query,
                self.db,
                deltas=own_window,
                previous=current,
                ts=now,
                metrics=self.metrics,
                prepared=self._prepared(subscription),
                columnar=self.columnar,
            )
            current = advanced.complete_result()
        subscription.previous_result = current
        subscription.last_ts = now
        # The client's replay: one consolidated delta over its whole
        # missed window, applicable directly to its cached copy.
        replayed = dra_execute(
            subscription.query,
            self.db,
            deltas=deltas_since(tables, since_ts),
            ts=now,
            metrics=self.metrics,
            prepared=self._prepared(subscription),
            columnar=self.columnar,
        )
        self.metrics.count(Metrics.REPLAYS)
        self.zones.register(
            self._zone(client_id, cq_name),
            tuple(subscription.query.table_names),
            since_ts,
        )
        if not replayed.delta.is_empty():
            # The post-apply state of the *client's* copy is the same
            # realigned current result the server now retains.
            self._deliver(
                client_id,
                DeltaMessage(
                    cq_name,
                    replayed.delta,
                    now,
                    relation_digest(subscription.previous_result),
                ),
            )
        return True

    def _refresh_one(
        self,
        subscription: Subscription,
        cache: Optional[DeltaBatchCache] = None,
    ) -> bool:
        now = self.db.now()
        if subscription.protocol is Protocol.DRA_LAZY:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                ts=now,
                metrics=self._metrics(),
                prepared=self._prepared(subscription),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            subscription.last_ts = now
            if not result.has_changes():
                return False
            if subscription.pending_delta is None:
                subscription.pending_delta = result.delta
            else:
                subscription.pending_delta = subscription.pending_delta.compose(
                    result.delta
                )
            if subscription.pending_delta.is_empty():
                subscription.pending_delta = None
                return False
            return self._deliver(
                subscription.client_id,
                DeltaAvailableMessage(
                    subscription.cq_name,
                    now,
                    len(subscription.pending_delta),
                    delta_wire_size(subscription.pending_delta),
                ),
            )
        if subscription.protocol is Protocol.DRA_DELTA:
            deltas = self._deltas_for(subscription, cache, now)
            result = dra_execute(
                subscription.query,
                self.db,
                deltas=deltas,
                previous=subscription.previous_result,
                ts=now,
                metrics=self._metrics(),
                prepared=self._prepared(subscription),
                tracer=self.tracer,
                columnar=self.columnar,
            )
            subscription.last_ts = now
            if not result.has_changes():
                self._note_refresh(subscription, True)
                return False
            subscription.previous_result = result.complete_result()
            self._maybe_audit(subscription)
            delivered = self._deliver(
                subscription.client_id,
                DeltaMessage(
                    subscription.cq_name,
                    result.delta,
                    now,
                    relation_digest(subscription.previous_result),
                ),
            )
            self._note_refresh(subscription, delivered)
            return delivered

        new_result = self.db.query(subscription.query, self._metrics())
        if subscription.protocol is Protocol.REEVAL_DELTA:
            delta = diff(subscription.previous_result, new_result, now)
            subscription.last_ts = now
            if delta.is_empty():
                self._note_refresh(subscription, True)
                return False
            subscription.previous_result = new_result
            delivered = self._deliver(
                subscription.client_id,
                DeltaMessage(
                    subscription.cq_name,
                    delta,
                    now,
                    relation_digest(new_result),
                ),
            )
            self._note_refresh(subscription, delivered)
            return delivered

        # REEVAL_FULL ships unconditionally: without a retained diff
        # there is no way to know nothing changed.
        subscription.last_ts = now
        subscription.previous_result = new_result
        delivered = self._deliver(
            subscription.client_id,
            FullResultMessage(
                subscription.cq_name, new_result, now, relation_digest(new_result)
            ),
        )
        self._note_refresh(subscription, delivered)
        return delivered

    # -- introspection -----------------------------------------------------

    def describe(self) -> List[Dict[str, object]]:
        """One status record per subscription (for ops tooling)."""
        out = []
        for (client_id, cq_name), sub in self._subscriptions.items():
            pending = sub.pending_delta
            cost = self.stats.counters(cq_name)
            out.append(
                {
                    "client": client_id,
                    "cq": cq_name,
                    "protocol": sub.protocol.value,
                    "last_ts": sub.last_ts,
                    "result_rows": len(sub.previous_result),
                    "pending_entries": 0 if pending is None else len(pending),
                    "zone": self.zones.boundary(self._zone(client_id, cq_name)),
                    # Cumulative per-CQ cost attribution (DESIGN.md §9),
                    # aggregated across clients subscribed to the CQ.
                    "rows_scanned": cost.get(Metrics.ROWS_SCANNED, 0),
                    "delta_rows_read": cost.get(Metrics.DELTA_ROWS_READ, 0),
                    "bytes_sent": cost.get(Metrics.BYTES_SENT, 0),
                    # Columnar kernel attribution (DESIGN.md §11).
                    "kernel_calls": cost.get(Metrics.KERNEL_CALLS, 0),
                    "rows_per_kernel_call": (
                        round(
                            cost.get(Metrics.KERNEL_ROWS, 0)
                            / cost[Metrics.KERNEL_CALLS],
                            3,
                        )
                        if cost.get(Metrics.KERNEL_CALLS)
                        else 0
                    ),
                    # Fan-out group membership (DESIGN.md §10); the
                    # global routing counters live in the metrics bag.
                    "sql_group_size": (
                        len(self._groups[sub.sql_key].members)
                        if self.fanout_index is not None
                        and sub.sql_key in self._groups
                        else None
                    ),
                }
            )
        return out

    def status_report(self) -> str:
        """Subscriptions plus connection counters as a text report."""
        from repro.bench.harness import format_table

        report = format_table(
            self.describe(),
            columns=[
                "client",
                "cq",
                "protocol",
                "last_ts",
                "result_rows",
                "pending_entries",
                "zone",
            ],
            title=(
                f"CQServer {self.name!r}: {len(self._subscriptions)} "
                f"subscriptions, now={self.db.now()}"
            ),
        )
        m = self.metrics
        report += (
            f"\nconnections: reconnects={m.get(Metrics.RECONNECTS)} "
            f"heartbeats_missed={m.get(Metrics.HEARTBEATS_MISSED)} "
            f"replays={m.get(Metrics.REPLAYS)} "
            f"replay_fallbacks={m.get(Metrics.REPLAY_FALLBACKS)} "
            f"resyncs={m.get(Metrics.RESYNCS)}"
            f"\ntransport: bytes_encoded={m.get(Metrics.BYTES_ENCODED)} "
            f"bytes_sent={m.get(Metrics.BYTES_SENT)} "
            f"messages_dropped={m.get(Metrics.MESSAGES_DROPPED)} "
            f"backpressure_degrades={m.get(Metrics.BACKPRESSURE_DEGRADES)}"
            f"\ndurability: wal_appends={m.get(Metrics.WAL_APPENDS)} "
            f"wal_recovered={m.get(Metrics.WAL_RECOVERED)} "
            f"wal_torn_truncations={m.get(Metrics.WAL_TORN_TRUNCATIONS)} "
            f"digest_mismatches={m.get(Metrics.DIGEST_MISMATCHES)} "
            f"audits={m.get(Metrics.AUDITS)} "
            f"audit_divergences={m.get(Metrics.AUDIT_DIVERGENCES)} "
            f"codec_errors={m.get(Metrics.CODEC_ERRORS)}"
        )
        calls = m.get(Metrics.KERNEL_CALLS)
        if calls:
            report += (
                f"\nkernels: calls={calls} "
                f"rows={m.get(Metrics.KERNEL_ROWS)} "
                f"rows_per_call={m.get(Metrics.KERNEL_ROWS) / calls:.1f}"
            )
        if self.fanout_index is not None:
            info = self.fanout_index.describe()
            report += (
                f"\nfanout: groups={len(self._groups)} "
                f"indexed={info['subscriptions']} "
                f"eq={info['eq_entries']} "
                f"interval={info['interval_entries']} "
                f"scan={info['scan_entries']} stale={info['stale']} "
                f"probes={m.get(Metrics.PREDINDEX_PROBES)} "
                f"matches={m.get(Metrics.PREDINDEX_MATCHES)} "
                f"shared_groups={m.get(Metrics.SHARED_GROUPS)} "
                f"group_hits={m.get(Metrics.SHARED_GROUP_HITS)}"
            )
        return report

    def __repr__(self) -> str:
        return (
            f"CQServer({self.name!r}, {len(self._subscriptions)} subscriptions, "
            f"{len(self._clients)} clients)"
        )
