"""Lightweight operation counters, shared across subsystems.

The paper's performance arguments (Section 5.1) are about work *not*
done: base rows never scanned, bytes never shipped. Wall-clock time in
Python is noisy and implementation-biased, so the benchmark harness
reports deterministic operation counts alongside timings. Any engine
entry point accepts an optional :class:`Metrics` and charges counters
to it.

Counters are thread-safe: the shared-delta refresh scheduler
(:mod:`repro.core.scheduler`) runs independent CQ refreshes on a
thread pool, and every worker charges the same :class:`Metrics`.
``count`` takes an internal lock, so totals stay exact under
contention; alternatively give each worker its own instance and
:meth:`merge` them afterwards.

Besides counters, a :class:`Metrics` holds named :class:`Histogram`
distributions (power-of-two buckets) via :meth:`observe` — the refresh
scheduler records per-CQ refresh latency there.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple


class Histogram:
    """A power-of-two-bucketed distribution of non-negative samples.

    Bucket ``e`` counts samples with ``2**(e-1) < value <= 2**e``
    (bucket 0 holds values <= 1). Exact ``count``/``total``/``min``/
    ``max`` ride along, so means are exact and percentiles are bucket
    upper bounds — plenty for latency reporting, cheap to merge.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        exp = 0
        bound = 1.0
        while value > bound:
            exp += 1
            bound *= 2.0
        self._buckets[exp] = self._buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The bucket upper bound covering the ``p``-th percentile,
        clamped to the observed ``max`` so the estimate never exceeds a
        value that was actually seen. ``percentile(0)`` is ``min``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            return 0.0
        if p == 0:
            return float(self.min if self.min is not None else 0.0)
        observed_max = float(self.max if self.max is not None else 0.0)
        target = self.count * p / 100.0
        seen = 0
        for exp in sorted(self._buckets):
            seen += self._buckets[exp]
            if seen >= target:
                return min(float(2**exp), observed_max)
        return observed_max

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
                self.max = bound if self.max is None else max(self.max, bound)
        for exp, n in other._buckets.items():
            self._buckets[exp] = self._buckets.get(exp, 0) + n

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    def buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound_exponent, count)`` pairs, ascending."""
        return sorted(self._buckets.items())

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.1f}, "
            f"p95<={self.percentile(95):.0f}, max={self.max})"
        )


class Metrics:
    """A named bag of monotonically increasing counters."""

    __slots__ = ("_counters", "_histograms", "_lock")

    # Canonical counter names used across the engine. Free-form names
    # are also allowed; these constants just prevent typos.
    ROWS_SCANNED = "rows_scanned"
    INDEX_PROBES = "index_probes"
    ROWS_EMITTED = "rows_emitted"
    DELTA_ROWS_READ = "delta_rows_read"
    TERMS_EVALUATED = "terms_evaluated"
    BYTES_SENT = "bytes_sent"
    MESSAGES_SENT = "messages_sent"
    PREDICATE_EVALS = "predicate_evals"
    EXECUTIONS = "executions"
    EXECUTIONS_SKIPPED = "executions_skipped"
    # Shared-delta refresh scheduler (Section 5.2/5.4 sharing layer).
    DELTA_BATCHES_COMPUTED = "delta_batches_computed"
    DELTA_BATCHES_REUSED = "delta_batches_reused"
    GROUPS_SKIPPED = "groups_skipped"
    CQ_REFRESHES = "cq_refreshes"
    # Prepared-plan compilation layer (registration-time compile).
    PREDICATE_PLANS = "predicate_plans"
    PLANS_PREPARED = "plans_prepared"
    PLAN_CACHE_HITS = "plan_cache_hits"
    PLAN_CACHE_INVALIDATIONS = "plan_cache_invalidations"
    # Base-operand probes that degraded to a transient scan because no
    # maintained index covered the probe positions.
    BASE_SCANS = "base_scans"
    # Transport layer (wire codec, sessions, reconnect replay).
    BYTES_ENCODED = "bytes_encoded"
    MESSAGES_DROPPED = "messages_dropped"
    RECONNECTS = "reconnects"
    HEARTBEATS_MISSED = "heartbeats_missed"
    REPLAY_FALLBACKS = "replay_fallbacks"
    REPLAYS = "replays"
    BACKPRESSURE_DEGRADES = "backpressure_degrades"
    RESYNCS = "resyncs"
    # Predicate-index fan-out layer (repro.dra.predindex): candidate
    # entries inspected while routing a batch, subscriptions routed,
    # signature recompiles forced by schema changes, and shared
    # materialization groups (created / joined beyond the first member).
    PREDINDEX_PROBES = "predindex_probes"
    PREDINDEX_MATCHES = "predindex_matches"
    PREDINDEX_INVALIDATIONS = "predindex_invalidations"
    SHARED_GROUPS = "shared_groups"
    SHARED_GROUP_HITS = "shared_group_hits"
    # Columnar kernel execution layer (repro.dra.kernels): kernel
    # invocations and rows swept per invocation. rows/calls is the
    # batch-efficiency signal the cost tables derive.
    KERNEL_CALLS = "kernel_calls"
    KERNEL_ROWS = "kernel_rows"
    # Durability and self-verification layer (WAL, digests, audits).
    WAL_APPENDS = "wal_appends"
    WAL_RECOVERED = "wal_recovered"
    WAL_TORN_TRUNCATIONS = "wal_torn_truncations"
    DIGEST_MISMATCHES = "digest_mismatches"
    AUDITS = "audits"
    AUDIT_DIVERGENCES = "audit_divergences"
    CODEC_ERRORS = "codec_errors"
    # Sharded cluster layer (repro.cluster): scatter cycles sent vs
    # skipped by router-side relevance, cross-shard merges and the
    # conflicts/residual drops they resolved, and shard recovery via
    # delta replay vs baseline fallback.
    SCATTERS = "cluster_scatters"
    SCATTER_SKIPPED = "cluster_scatter_skipped"
    CLUSTER_MERGES = "cluster_merges"
    MERGE_CONFLICTS = "cluster_merge_conflicts"
    RESIDUAL_DROPS = "cluster_residual_drops"
    SHARD_REPLAYS = "cluster_shard_replays"
    SHARD_FALLBACKS = "cluster_shard_fallbacks"
    # Cluster fault tolerance: hosts suspected by the health state
    # machine, request retries and deadline misses, replica promotions
    # (zero-downtime failover), and replacement replicas seeded after a
    # host left a placement group.
    SUSPECTS = "cluster_suspects"
    SCATTER_RETRIES = "cluster_scatter_retries"
    SCATTER_TIMEOUTS = "cluster_scatter_timeouts"
    FAILOVERS = "cluster_failovers"
    REREPLICATIONS = "cluster_rereplications"
    # Overlapped scatter/gather transport: replies that could not be
    # paired with an in-flight request (late answers of timed-out
    # attempts, seqless frames) and torn connections failed over
    # immediately because the process behind the pipe was gone.
    STALE_REPLIES = "cluster_stale_replies"
    SCATTER_FAILFASTS = "cluster_scatter_failfasts"
    # Histogram names.
    REFRESH_LATENCY_US = "refresh_latency_us"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __len__(self) -> int:
        return len(self._counters)

    def __bool__(self) -> bool:
        # Always truthy: engine code guards counter charging with a bare
        # `if metrics:`, which must hold even before the first count —
        # and regardless of how many counters this instance has seen.
        # Per-worker instances handed out by the parallel refresh path
        # rely on this exactly like the long-lived shared one.
        return True

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, int]:
        """An independent copy of the current counter values."""
        with self._lock:
            return dict(self._counters)

    def merge(self, other: "Metrics") -> None:
        """Add all of ``other``'s counters and histograms into this one."""
        counters = other.snapshot()
        with other._lock:
            histograms = {
                name: hist.copy() for name, hist in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, hist in histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = hist
                else:
                    mine.merge(hist)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter increases since an earlier :meth:`snapshot`."""
        out = {}
        for name, value in self.snapshot().items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record a sample in histogram ``name`` (creating it empty)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (an empty one if nothing was observed)."""
        with self._lock:
            hist = self._histograms.get(name)
            return hist.copy() if hist is not None else Histogram()

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return {name: h.copy() for name, h in self._histograms.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Metrics({inner})"
