"""Lightweight operation counters, shared across subsystems.

The paper's performance arguments (Section 5.1) are about work *not*
done: base rows never scanned, bytes never shipped. Wall-clock time in
Python is noisy and implementation-biased, so the benchmark harness
reports deterministic operation counts alongside timings. Any engine
entry point accepts an optional :class:`Metrics` and charges counters
to it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Metrics:
    """A named bag of monotonically increasing counters."""

    __slots__ = ("_counters",)

    # Canonical counter names used across the engine. Free-form names
    # are also allowed; these constants just prevent typos.
    ROWS_SCANNED = "rows_scanned"
    INDEX_PROBES = "index_probes"
    ROWS_EMITTED = "rows_emitted"
    DELTA_ROWS_READ = "delta_rows_read"
    TERMS_EVALUATED = "terms_evaluated"
    BYTES_SENT = "bytes_sent"
    MESSAGES_SENT = "messages_sent"
    PREDICATE_EVALS = "predicate_evals"
    EXECUTIONS = "executions"
    EXECUTIONS_SKIPPED = "executions_skipped"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def __bool__(self) -> bool:
        # Always truthy: engine code guards counter charging with a bare
        # `if metrics:`, which must hold even before the first count.
        return True

    def reset(self) -> None:
        self._counters.clear()

    def snapshot(self) -> Dict[str, int]:
        """An independent copy of the current counter values."""
        return dict(self._counters)

    def merge(self, other: "Metrics") -> None:
        """Add all of ``other``'s counters into this one."""
        for name, value in other._counters.items():
            self.count(name, value)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter increases since an earlier :meth:`snapshot`."""
        out = {}
        for name, value in self._counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Metrics({inner})"
