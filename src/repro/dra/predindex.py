"""Predicate-index fan-out: route one delta batch to affected CQs.

At production scale most registered continual queries are the *same*
query template with different constants (``WHERE symbol = 'X'`` for a
million values of X). Per-subscription refresh asks every subscription
to probe its own plan against the batch — O(subscribers) work per
cycle even when almost none of them are affected. The paper's
Section 5.2 relevance test gives the sound skip condition: an update
batch cannot change a CQ's result unless some delta entry's old or new
side satisfies the CQ's *alias-local* predicate ("select before join"
— the seed filter of every truth-table term). This module turns that
per-CQ test into a shared index over *all* subscriptions' local
predicates, so one pass over the consolidated batch yields exactly the
affected subscription set:

* equality atoms (``col = const``) become hash-bucket entries keyed by
  (column position, constant) — the Kara et al. free-access-pattern
  shape: compile the template once, index by the free constant;
* range atoms (``col < const`` etc.) on one column merge into a single
  interval per (subscription, alias) held in an :class:`IntervalIndex`
  (exact stabbing over two sorted bound arrays);
* everything else (disjunctions, negations, column-to-column locals)
  falls back to a scan bucket carrying the compiled local predicate —
  still one compiled closure per subscription, never a plan probe.

Each indexed atom keeps the *rest* of its alias-local conjunction as a
compiled residual, so a bucket hit is confirmed against the full local
predicate and the match set is exact — the Hypothesis suite in
``tests/dra/test_predindex_property.py`` holds it equal to the naive
:func:`repro.dra.relevance.relevant_entry_counts` oracle.

Staleness mirrors :class:`~repro.dra.prepared.PlanCache`: signatures
record the schema object they compiled against; a batch carrying a
different schema triggers recompilation, and a subscription whose
predicate no longer compiles (a column dropped by a schema change) is
quarantined — reported via :meth:`PredicateIndex.stale`, never routed
wrongly.
"""

from __future__ import annotations

import bisect
import threading
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.binding import SingleRowBinder
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.planning import plan_predicate
from repro.relational.predicates import (
    Comparison,
    CompiledPredicate,
    Predicate,
    conjunction,
)
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaRelation

# Mirror of an op when the literal sits on the left: ``5 < v`` is
# ``v > 5``.
_MIRROR = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

# Entry keys are (sub_id, alias): one subscription contributes one
# signature per alias (self-joins index the same table twice).
EntryKey = Tuple[str, str]


def _value_fits(column_type: AttributeType, value: Any) -> bool:
    """True when ``value`` orders/hashes consistently against column
    values — the guard that keeps index comparisons type-safe without
    compiling the atom."""
    if column_type is None:
        return False
    if column_type.is_numeric():
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if column_type is AttributeType.STR:
        return isinstance(value, str)
    if column_type is AttributeType.BOOL:
        return isinstance(value, bool)
    return False


def _atom_of(
    conjunct: Predicate, schema: Schema, alias: str
) -> Optional[Tuple[int, str, Any]]:
    """``(position, op, constant)`` when ``conjunct`` is an indexable
    column-vs-literal comparison, else None.

    ``!=`` atoms are not indexable (they match almost everything) and
    null literals never match under None-is-False semantics; both fall
    through to the residual/scan path.
    """
    if not isinstance(conjunct, Comparison):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        ref, value = left, right.value
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        ref, value = right, left.value
        op = _MIRROR.get(op, op)
    else:
        return None
    if op not in _MIRROR or value is None:
        return None
    if ref.qualifier is not None and ref.qualifier != alias:
        return None
    if ref.name not in schema:
        return None
    position = schema.position(ref.name)
    if not _value_fits(schema.attributes[position].type, value):
        return None
    return position, op, value


def _merge_bounds(
    atoms: Sequence[Tuple[str, Any]],
) -> Optional[Tuple[Optional[Tuple[Any, int]], Optional[Tuple[Any, int]]]]:
    """Intersect one column's range atoms into ``(low_key, high_key)``.

    Bound keys encode inclusivity so plain tuple order is containment
    order: a lower bound is ``(value, 0)`` inclusive / ``(value, 1)``
    exclusive (larger key = tighter); an upper bound is ``(value, 1)``
    inclusive / ``(value, 0)`` exclusive (smaller key = tighter). None
    means unbounded. Returns None when the intersection is empty — the
    conjunction is unsatisfiable and the alias can never match.
    """
    low: Optional[Tuple[Any, int]] = None
    high: Optional[Tuple[Any, int]] = None
    for op, value in atoms:
        if op in (">", ">="):
            key = (value, 0 if op == ">=" else 1)
            if low is None or key > low:
                low = key
        else:
            key = (value, 1 if op == "<=" else 0)
            if high is None or key < high:
                high = key
    if low is not None and high is not None:
        if low[0] > high[0]:
            return None
        if low[0] == high[0] and (low[1] == 1 or high[1] == 0):
            return None
    return low, high


class _Signature:
    """One subscription's compiled local predicate for one alias."""

    __slots__ = ("kind", "position", "value", "low", "high", "residual", "compiled")

    def __init__(
        self,
        kind: str,
        position: Optional[int],
        value: Any,
        low: Optional[Tuple[Any, int]],
        high: Optional[Tuple[Any, int]],
        residual: Optional[CompiledPredicate],
        compiled: Optional[CompiledPredicate],
    ):
        #: "eq" | "interval" | "scan" | "never"
        self.kind = kind
        self.position = position
        self.value = value
        self.low = low
        self.high = high
        #: The rest of the local conjunction, compiled (None = nothing
        #: left to check beyond the indexed atom).
        self.residual = residual
        #: The full local conjunction, compiled (None = TruePredicate);
        #: used by targeted per-subscription checks.
        self.compiled = compiled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Signature({self.kind}, pos={self.position})"


def compile_signature(
    alias: str, schema: Schema, conjuncts: Sequence[Predicate]
) -> _Signature:
    """Split one alias's local conjunct list into an indexed atom plus
    a compiled residual.

    Preference order: an equality atom (hash bucket) beats ranges (the
    bucket is the narrower filter); range atoms on the most-constrained
    column merge into one exact interval; anything else scans. Raises
    whatever predicate compilation raises when the conjuncts no longer
    fit ``schema`` — callers quarantine the subscription.
    """
    binder = SingleRowBinder(schema, alias)
    full = conjunction(list(conjuncts))
    compiled = None if not conjuncts else full.compile(binder)
    if not conjuncts:
        return _Signature("scan", None, None, None, None, None, None)

    eq_atom = None
    bounds: Dict[int, List[Tuple[str, Any]]] = {}
    bound_conjuncts: Dict[int, List[Predicate]] = {}
    for conjunct in conjuncts:
        atom = _atom_of(conjunct, schema, alias)
        if atom is None:
            continue
        position, op, value = atom
        if op == "=":
            if eq_atom is None:
                eq_atom = (position, value, conjunct)
        else:
            bounds.setdefault(position, []).append((op, value))
            bound_conjuncts.setdefault(position, []).append(conjunct)

    if eq_atom is not None:
        position, value, key_conjunct = eq_atom
        rest = [c for c in conjuncts if c is not key_conjunct]
        residual = conjunction(rest).compile(binder) if rest else None
        return _Signature("eq", position, value, None, None, residual, compiled)

    if bounds:
        position = max(bounds, key=lambda p: (len(bounds[p]), -p))
        merged = _merge_bounds(bounds[position])
        if merged is None:
            # The interval is empty: the local conjunction (which
            # includes these bounds) rejects every row of this alias.
            return _Signature("never", None, None, None, None, None, compiled)
        covered = set(map(id, bound_conjuncts[position]))
        rest = [c for c in conjuncts if id(c) not in covered]
        residual = conjunction(rest).compile(binder) if rest else None
        low, high = merged
        return _Signature(
            "interval", position, None, low, high, residual, compiled
        )

    return _Signature("scan", None, None, None, None, None, compiled)


class IntervalIndex:
    """Exact interval stabbing over two sorted bound arrays.

    ``stab(v)`` intersects the entries whose lower bound admits ``v``
    (a prefix of the low-sorted array plus the unbounded-low set) with
    those whose upper bound admits ``v`` (a suffix of the high-sorted
    array plus the unbounded-high set), walking the smaller side and
    confirming the other bound per candidate — candidates inspected,
    not intervals stored, is the unit the probe counter charges.
    """

    __slots__ = ("_entries", "_dirty", "_low_keys", "_low_ids", "_open_low",
                 "_high_keys", "_high_ids", "_open_high")

    def __init__(self) -> None:
        # entry_key -> (low_key, high_key); None bound = unbounded.
        self._entries: Dict[
            EntryKey, Tuple[Optional[Tuple[Any, int]], Optional[Tuple[Any, int]]]
        ] = {}
        self._dirty = True
        self._low_keys: List[Tuple[Any, int]] = []
        self._low_ids: List[EntryKey] = []
        self._open_low: List[EntryKey] = []
        self._high_keys: List[Tuple[Any, int]] = []
        self._high_ids: List[EntryKey] = []
        self._open_high: List[EntryKey] = []

    def add(
        self,
        key: EntryKey,
        low: Optional[Tuple[Any, int]],
        high: Optional[Tuple[Any, int]],
    ) -> None:
        self._entries[key] = (low, high)
        self._dirty = True

    def remove(self, key: EntryKey) -> None:
        if self._entries.pop(key, None) is not None:
            self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def _rebuild(self) -> None:
        lows = sorted(
            ((low, key) for key, (low, __) in self._entries.items() if low is not None),
        )
        highs = sorted(
            ((high, key) for key, (__, high) in self._entries.items() if high is not None),
        )
        self._low_keys = [bound for bound, __ in lows]
        self._low_ids = [key for __, key in lows]
        self._open_low = [
            key for key, (low, __) in self._entries.items() if low is None
        ]
        self._high_keys = [bound for bound, __ in highs]
        self._high_ids = [key for __, key in highs]
        self._open_high = [
            key for key, (__, high) in self._entries.items() if high is None
        ]
        self._dirty = False

    def _contains(self, key: EntryKey, value: Any) -> bool:
        low, high = self._entries[key]
        if low is not None and not low <= (value, 0):
            return False
        if high is not None and not high >= (value, 1):
            return False
        return True

    def stab(self, value: Any) -> Tuple[List[EntryKey], int]:
        """``(matching entry keys, candidates inspected)`` for one
        probe value."""
        if self._dirty:
            self._rebuild()
        # Lower bound (low, f) admits value iff (low, f) <= (value, 0);
        # upper bound (high, f) admits value iff (high, f) >= (value, 1).
        n_low = bisect.bisect_right(self._low_keys, (value, 0))
        n_high_start = bisect.bisect_left(self._high_keys, (value, 1))
        low_side = n_low + len(self._open_low)
        high_side = (len(self._high_keys) - n_high_start) + len(self._open_high)
        if low_side <= high_side:
            candidates = self._low_ids[:n_low] + self._open_low
        else:
            candidates = self._high_ids[n_high_start:] + self._open_high
        matches = [key for key in candidates if self._contains(key, value)]
        return matches, len(candidates)


class _Entry:
    """One (subscription, alias) occupant of a table index."""

    __slots__ = ("sub_id", "alias", "signature")

    def __init__(self, sub_id: str, alias: str, signature: _Signature):
        self.sub_id = sub_id
        self.alias = alias
        self.signature = signature


class _TableIndex:
    """All signatures over one base table, bucketed by shape."""

    __slots__ = ("schema", "eq", "intervals", "scans", "members")

    def __init__(self, schema: Schema):
        self.schema = schema
        # position -> constant -> {entry_key: _Entry}
        self.eq: Dict[int, Dict[Any, Dict[EntryKey, _Entry]]] = {}
        # position -> (IntervalIndex, {entry_key: _Entry})
        self.intervals: Dict[int, Tuple[IntervalIndex, Dict[EntryKey, _Entry]]] = {}
        self.scans: Dict[EntryKey, _Entry] = {}
        # Every entry key installed here (for removal and rebuilds).
        self.members: Dict[EntryKey, _Entry] = {}

    def install(self, key: EntryKey, entry: _Entry) -> None:
        sig = entry.signature
        self.members[key] = entry
        if sig.kind == "eq":
            bucket = self.eq.setdefault(sig.position, {}).setdefault(
                sig.value, {}
            )
            bucket[key] = entry
        elif sig.kind == "interval":
            index, payloads = self.intervals.setdefault(
                sig.position, (IntervalIndex(), {})
            )
            index.add(key, sig.low, sig.high)
            payloads[key] = entry
        elif sig.kind == "scan":
            self.scans[key] = entry
        # "never": tracked in members only — the alias matches nothing.

    def uninstall(self, key: EntryKey) -> None:
        entry = self.members.pop(key, None)
        if entry is None:
            return
        sig = entry.signature
        if sig.kind == "eq":
            by_value = self.eq.get(sig.position)
            if by_value is not None:
                bucket = by_value.get(sig.value)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del by_value[sig.value]
                if not by_value:
                    del self.eq[sig.position]
        elif sig.kind == "interval":
            pair = self.intervals.get(sig.position)
            if pair is not None:
                index, payloads = pair
                index.remove(key)
                payloads.pop(key, None)
                if not payloads:
                    del self.intervals[sig.position]
        elif sig.kind == "scan":
            self.scans.pop(key, None)

    def match_row(self, row: Tuple, matched: Set[str]) -> int:
        """Fold one entry side into ``matched``; returns candidates
        probed."""
        probes = 0
        for position, by_value in self.eq.items():
            value = row[position]
            if value is None:
                continue
            bucket = by_value.get(value)
            if not bucket:
                continue
            for entry in bucket.values():
                if entry.sub_id in matched:
                    continue
                probes += 1
                residual = entry.signature.residual
                if residual is None or residual(row):
                    matched.add(entry.sub_id)
        for position, (index, payloads) in self.intervals.items():
            value = row[position]
            if value is None:
                continue
            hits, inspected = index.stab(value)
            probes += inspected
            for key in hits:
                entry = payloads[key]
                if entry.sub_id in matched:
                    continue
                residual = entry.signature.residual
                if residual is None or residual(row):
                    matched.add(entry.sub_id)
        for entry in self.scans.values():
            if entry.sub_id in matched:
                continue
            probes += 1
            compiled = entry.signature.compiled
            if compiled is None or compiled(row):
                matched.add(entry.sub_id)
        return probes


class _SubEntry:
    """Everything needed to (re)compile one subscription's signatures."""

    __slots__ = ("query", "table_for_alias", "local", "schemas")

    def __init__(
        self,
        query: SPJQuery,
        table_for_alias: Dict[str, str],
        local: Dict[str, List[Predicate]],
        schemas: Dict[str, Schema],
    ):
        self.query = query
        self.table_for_alias = table_for_alias
        #: Alias -> local conjunct list (the planner's decomposition).
        self.local = local
        #: Alias -> schema the signature compiled against.
        self.schemas = schemas


class PredicateIndex:
    """Routes consolidated delta batches to affected subscriptions.

    ``sub_id`` is whatever granularity the caller fans out at: the
    manager indexes CQ names, the server indexes ``sql_key`` groups so
    probe counts scale with distinct templates, not subscribers.
    Thread-safe (one reentrant lock; matching may trigger recompiles).
    """

    def __init__(self, metrics: Optional[Metrics] = None):
        self.metrics = metrics
        self._lock = threading.RLock()
        self._subs: Dict[str, _SubEntry] = {}
        self._tables: Dict[str, _TableIndex] = {}
        #: Subscriptions whose predicates stopped compiling after a
        #: schema change; they match nothing until re-registered.
        self._stale: Set[str] = set()

    # -- registration ------------------------------------------------------

    def add(
        self, sub_id: str, query: SPJQuery, scopes: Mapping[str, Schema]
    ) -> None:
        """Index one subscription's alias-local predicates.

        ``scopes`` maps each query alias to its table's *live* schema.
        Re-adding an existing ``sub_id`` replaces its entries.
        """
        with self._lock:
            if sub_id in self._subs:
                self.remove(sub_id)
            plan = plan_predicate(query.predicate, scopes)
            table_for_alias = {
                ref.alias: ref.table for ref in query.relations
            }
            entry = _SubEntry(
                query,
                table_for_alias,
                {alias: list(plan.local.get(alias, [])) for alias in scopes},
                dict(scopes),
            )
            self._subs[sub_id] = entry
            for alias, table_name in table_for_alias.items():
                tindex = self._tables.get(table_name)
                if tindex is None:
                    tindex = self._tables[table_name] = _TableIndex(
                        scopes[alias]
                    )
                elif tindex.schema is not scopes[alias]:
                    self._rebuild_table(table_name, scopes[alias])
                    tindex = self._tables[table_name]
                signature = compile_signature(
                    alias, tindex.schema, entry.local[alias]
                )
                tindex.install((sub_id, alias), _Entry(sub_id, alias, signature))

    def remove(self, sub_id: str) -> bool:
        """Drop every index entry of one subscription."""
        with self._lock:
            entry = self._subs.pop(sub_id, None)
            self._stale.discard(sub_id)
            if entry is None:
                return False
            for alias, table_name in entry.table_for_alias.items():
                tindex = self._tables.get(table_name)
                if tindex is None:
                    continue
                tindex.uninstall((sub_id, alias))
                if not tindex.members:
                    del self._tables[table_name]
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def __contains__(self, sub_id: str) -> bool:
        with self._lock:
            return sub_id in self._subs

    def tables(self) -> List[str]:
        """Base tables with at least one indexed subscription."""
        with self._lock:
            return list(self._tables)

    def stale(self) -> Set[str]:
        """Subscriptions quarantined by a schema change (their
        predicates no longer compile; they are never routed)."""
        with self._lock:
            return set(self._stale)

    # -- staleness ---------------------------------------------------------

    def _rebuild_table(self, table_name: str, schema: Schema) -> None:
        """Recompile every signature on ``table_name`` against a new
        schema object. Subscriptions whose predicates no longer compile
        (e.g. the column was dropped) are quarantined, mirroring
        PlanCache invalidation at re-prepare time."""
        old = self._tables.get(table_name)
        fresh = _TableIndex(schema)
        if old is not None:
            if self.metrics:
                self.metrics.count(Metrics.PREDINDEX_INVALIDATIONS)
            for (sub_id, alias) in list(old.members):
                entry = self._subs.get(sub_id)
                if entry is None or sub_id in self._stale:
                    continue
                try:
                    signature = compile_signature(
                        alias, schema, entry.local[alias]
                    )
                except Exception:
                    self._quarantine(sub_id, keep_table=table_name)
                    continue
                entry.schemas[alias] = schema
                fresh.install((sub_id, alias), _Entry(sub_id, alias, signature))
        self._tables[table_name] = fresh

    def _quarantine(self, sub_id: str, keep_table: str) -> None:
        """Pull a no-longer-compilable subscription out of every table
        index (``keep_table`` is mid-rebuild; its old index is being
        discarded wholesale)."""
        entry = self._subs.get(sub_id)
        if entry is None:
            return
        self._stale.add(sub_id)
        for alias, table_name in entry.table_for_alias.items():
            if table_name == keep_table:
                continue
            tindex = self._tables.get(table_name)
            if tindex is not None:
                tindex.uninstall((sub_id, alias))

    def _fresh_index(self, table_name: str, schema: Schema) -> Optional[_TableIndex]:
        tindex = self._tables.get(table_name)
        if tindex is None:
            return None
        if tindex.schema is not schema:
            self._rebuild_table(table_name, schema)
            tindex = self._tables[table_name]
        return tindex

    # -- matching ----------------------------------------------------------

    def match_batch(
        self, deltas: Mapping[str, DeltaRelation]
    ) -> Set[str]:
        """The exact set of subscriptions with at least one relevant
        entry side in ``deltas`` — equal, by construction and by the
        property suite, to running the Section 5.2 relevance test per
        subscription."""
        matched: Set[str] = set()
        probes = 0
        with self._lock:
            for table_name, delta in deltas.items():
                if delta.is_empty():
                    continue
                tindex = self._fresh_index(table_name, delta.schema)
                if tindex is None or not tindex.members:
                    continue
                for entry in delta:
                    for side in (entry.old, entry.new):
                        if side is None:
                            continue
                        probes += tindex.match_row(side, matched)
        if self.metrics:
            if probes:
                self.metrics.count(Metrics.PREDINDEX_PROBES, probes)
            if matched:
                self.metrics.count(Metrics.PREDINDEX_MATCHES, len(matched))
        return matched

    def matches(
        self, sub_id: str, deltas: Mapping[str, DeltaRelation]
    ) -> bool:
        """Targeted relevance check for one subscription (used outside
        batched polls, where building the global match set would charge
        every subscription for one CQ's question)."""
        with self._lock:
            entry = self._subs.get(sub_id)
            if entry is None or sub_id in self._stale:
                return False
            probes = 0
            hit = False
            for alias, table_name in entry.table_for_alias.items():
                delta = deltas.get(table_name)
                if delta is None or delta.is_empty():
                    continue
                tindex = self._fresh_index(table_name, delta.schema)
                if tindex is None or sub_id in self._stale:
                    continue
                member = tindex.members.get((sub_id, alias))
                if member is None:
                    continue
                signature = member.signature
                if signature.kind == "never":
                    continue
                compiled = signature.compiled
                for delta_entry in delta:
                    for side in (delta_entry.old, delta_entry.new):
                        if side is None:
                            continue
                        probes += 1
                        if compiled is None or compiled(side):
                            hit = True
                            break
                    if hit:
                        break
                if hit:
                    break
        if self.metrics:
            if probes:
                self.metrics.count(Metrics.PREDINDEX_PROBES, probes)
            if hit:
                self.metrics.count(Metrics.PREDINDEX_MATCHES)
        return hit

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, int]:
        """Structure sizes (for status reports and the fan-out bench)."""
        with self._lock:
            eq_entries = sum(
                len(bucket)
                for tindex in self._tables.values()
                for by_value in tindex.eq.values()
                for bucket in by_value.values()
            )
            interval_entries = sum(
                len(payloads)
                for tindex in self._tables.values()
                for __, payloads in tindex.intervals.values()
            )
            scan_entries = sum(
                len(tindex.scans) for tindex in self._tables.values()
            )
            return {
                "subscriptions": len(self._subs),
                "tables": len(self._tables),
                "eq_entries": eq_entries,
                "interval_entries": interval_entries,
                "scan_entries": scan_entries,
                "stale": len(self._stale),
            }

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"PredicateIndex({info['subscriptions']} subs over "
            f"{info['tables']} tables: {info['eq_entries']} eq, "
            f"{info['interval_entries']} interval, "
            f"{info['scan_entries']} scan)"
        )
