"""Algorithm 1 step 1: the truth table of delta substitutions.

For a CQ over relations R_1..R_n of which k have changed since the
last execution, DRA builds a truth table whose rows are the binary
substitution vectors over the changed relations. Each non-zero row
yields one SPJ term in which ΔR_i replaces R_i wherever the row has a
1; unchanged relations never need substitution because their delta is
empty and any term containing an empty operand vanishes.

The sum of the 2^k − 1 non-zero terms (with base operands bound to the
relation contents *at the last execution*, Algorithm 1 input (ii)) is
exactly Q(S_new) − Q(S_old); see :mod:`repro.dra.terms`.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterator, List, Sequence, Tuple


class TruthTable:
    """The non-zero substitution vectors for a set of changed operands."""

    __slots__ = ("aliases", "changed", "_rows")

    def __init__(self, aliases: Sequence[str], changed: Sequence[str]):
        self.aliases = tuple(aliases)
        changed_set = set(changed)
        unknown = changed_set - set(aliases)
        if unknown:
            raise ValueError(f"changed aliases not in query: {sorted(unknown)}")
        # Preserve query order for deterministic term enumeration.
        self.changed = tuple(a for a in self.aliases if a in changed_set)
        self._rows: Tuple[FrozenSet[str], ...] = ()

    @property
    def term_count(self) -> int:
        """2^k − 1 for k changed relations (paper: p = 2^k rows, minus
        the all-zero row which reproduces the previous result)."""
        return (1 << len(self.changed)) - 1

    def rows(self) -> Iterator[FrozenSet[str]]:
        """Yield each non-empty subset of changed aliases.

        Ordered smallest-first (single substitutions, then pairs, ...),
        matching the intuition that low-order terms dominate the work.
        """
        for size in range(1, len(self.changed) + 1):
            for subset in combinations(self.changed, size):
                yield frozenset(subset)

    def rows_tuple(self) -> Tuple[FrozenSet[str], ...]:
        """The :meth:`rows` enumeration, materialized and cached — a
        prepared CQ keeps the table itself per changed-set, so repeated
        refreshes with the same changed operands re-enumerate nothing."""
        if not self._rows:
            self._rows = tuple(self.rows())
        return self._rows

    def as_binary_rows(self) -> List[Tuple[int, ...]]:
        """The table in the paper's binary form, one column per changed
        relation (in query order), excluding the all-zero row."""
        out = []
        for subset in self.rows():
            out.append(tuple(1 if a in subset else 0 for a in self.changed))
        return out

    def __repr__(self) -> str:
        return (
            f"TruthTable(changed={list(self.changed)}, "
            f"{self.term_count} terms)"
        )
