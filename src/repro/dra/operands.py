"""Term operands: signed delta seeds and probe-able base relations.

A term of the truth-table expansion joins two kinds of operands:

* :class:`DeltaOperand` — the differential relation of a changed table,
  viewed as a signed set: each entry contributes its old side with
  weight −1 and its new side with weight +1 (after local-predicate
  filtering, the paper's "Select before Join" refinement);
* :class:`BaseOperand` — a table at its *old* state (Algorithm 1 input
  (ii): base contents as of the last execution), which is only ever
  probed through hash indexes or, lacking a suitable index, scanned
  once into a transient hash table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics import Metrics
from repro.relational.predicates import CompiledPredicate
from repro.relational.relation import Tid, Values
from repro.storage.table import Table
from repro.delta.differential import DeltaRelation
from repro.delta.views import OldStateIndex, OldStateView

# One signed row of a delta operand.
SignedRow = Tuple[Tid, Values, int]  # (tid, values, weight ±1)

# A flat local-predicate spec: ((position, op, constant), ...) —
# see repro.relational.predicates.comparison_specs. Specs let the
# batch filters below run as plain comprehensions instead of calling
# a compiled predicate closure once per row.
FilterSpec = Tuple[Tuple[int, object, object], ...]


def _spec_filter(rows, spec: FilterSpec):
    """Filter ``(tid, values)`` pairs by a comparison spec, inline.

    Arity 1 and 2 (the overwhelmingly common local predicates) get
    dedicated comprehensions; longer conjunctions fall back to a loop
    that is still free of per-row closure calls.
    """
    if len(spec) == 1:
        ((p, op, c),) = spec
        return [(t, v) for t, v in rows if (x := v[p]) is not None and op(x, c)]
    if len(spec) == 2:
        (p1, o1, c1), (p2, o2, c2) = spec
        return [
            (t, v)
            for t, v in rows
            if (x := v[p1]) is not None
            and o1(x, c1)
            and (y := v[p2]) is not None
            and o2(y, c2)
        ]
    out = []
    append = out.append
    for t, v in rows:
        for p, op, c in spec:
            x = v[p]
            if x is None or not op(x, c):
                break
        else:
            append((t, v))
    return out


class DeltaOperand:
    """The signed, locally filtered rows of one changed operand.

    Stored struct-of-arrays from the start — parallel ``(tids, values,
    weights)`` columns built in one pass over the delta — so the
    columnar seed kernel adopts them zero-copy. The row evaluator's
    ``rows`` view is derived lazily (one zip) only when a term actually
    evaluates through the row path.
    """

    __slots__ = ("alias", "_tids", "_vals", "_weights", "_rows", "_indexes")

    def __init__(
        self,
        alias: str,
        delta: DeltaRelation,
        local_predicate: Optional[CompiledPredicate],
        metrics: Optional[Metrics] = None,
        filter_spec: Optional[FilterSpec] = None,
    ):
        self.alias = alias
        tids: List[Tid] = []
        vals: List[Values] = []
        weights: List[int] = []
        ta, va, wa = tids.append, vals.append, weights.append
        # Old side weighs −1, new side +1, in entry order — the Z-set
        # reading of the consolidated delta (DeltaRelation.signed_rows),
        # inlined here with the local predicate fused in.
        if local_predicate is None:
            for entry in delta:
                old = entry.old
                if old is not None:
                    ta(entry.tid); va(old); wa(-1)
                new = entry.new
                if new is not None:
                    ta(entry.tid); va(new); wa(+1)
        elif filter_spec is not None and len(filter_spec) == 1:
            ((p, op, c),) = filter_spec
            for entry in delta:
                old = entry.old
                if old is not None and (x := old[p]) is not None and op(x, c):
                    ta(entry.tid); va(old); wa(-1)
                new = entry.new
                if new is not None and (x := new[p]) is not None and op(x, c):
                    ta(entry.tid); va(new); wa(+1)
        else:
            for entry in delta:
                old = entry.old
                if old is not None and local_predicate(old):
                    ta(entry.tid); va(old); wa(-1)
                new = entry.new
                if new is not None and local_predicate(new):
                    ta(entry.tid); va(new); wa(+1)
        if metrics:
            # Hoisted out of the loop: one flush per operand, not one
            # count per delta entry.
            metrics.count(Metrics.DELTA_ROWS_READ, len(delta))
        self._tids = tids
        self._vals = vals
        self._weights = weights
        self._rows: Optional[List[SignedRow]] = None
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[SignedRow]]] = {}

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def rows(self) -> List[SignedRow]:
        """Row view ``[(tid, values, weight), ...]`` of the columns,
        zipped once on first use (the row evaluator's seed input)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = list(zip(self._tids, self._vals, self._weights))
        return rows

    def columns(self) -> Tuple[List[Tid], List[Values], List[int]]:
        """The signed rows as struct-of-arrays ``(tids, values,
        weights)`` columns — the native representation, shared
        zero-copy with every term's seed batch (read-only by kernel
        contract)."""
        return self._tids, self._vals, self._weights

    def index_on(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple, List[SignedRow]]:
        """Transient hash index of the signed rows on ``positions``,
        built once per operand per position tuple (several truth-table
        terms attach the same operand over the same join edges)."""
        buckets = self._indexes.get(positions)
        if buckets is None:
            buckets = {}
            setdefault = buckets.setdefault
            for tid, values, weight in zip(self._tids, self._vals, self._weights):
                key = tuple(values[p] for p in positions)
                setdefault(key, []).append((tid, values, weight))
            self._indexes[positions] = buckets
        return buckets


class BaseOperand:
    """One unsubstituted operand: the table at its old state.

    ``delta`` is the table's consolidated delta since the last
    execution (empty for unchanged tables); probes and scans answer in
    the *old* state by overlaying it on the live relation.
    """

    __slots__ = (
        "alias",
        "table",
        "delta",
        "local_predicate",
        "filter_spec",
        "_old_view",
        "_index_cache",
        "_scan_cache",
        "metrics",
    )

    def __init__(
        self,
        alias: str,
        table: Table,
        delta: Optional[DeltaRelation],
        local_predicate: Optional[CompiledPredicate],
        metrics: Optional[Metrics] = None,
        filter_spec: Optional[FilterSpec] = None,
    ):
        self.alias = alias
        self.table = table
        self.delta = delta
        self.local_predicate = local_predicate
        self.filter_spec = filter_spec
        self._old_view = OldStateView(
            table.current, delta if delta is not None else DeltaRelation(table.schema)
        )
        self._index_cache: Dict[Tuple[int, ...], object] = {}
        self._scan_cache: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple[Tid, Values]]]] = {}
        self.metrics = metrics

    def probe(
        self, positions: Tuple[int, ...], key: Tuple
    ) -> List[Tuple[Tid, Values]]:
        """Old-state rows matching ``key`` on ``positions`` that satisfy
        the operand's local predicate."""
        source = self._probe_source(positions)
        matches = source.get(key, []) if isinstance(source, dict) else source.lookup(
            key, self.metrics
        )
        if self.local_predicate is None:
            return list(matches)
        return [(tid, values) for tid, values in matches if self.local_predicate(values)]

    def probe_batch(
        self, positions: Tuple[int, ...], keys
    ) -> Dict[Tuple, List[Tuple[Tid, Values]]]:
        """Batched :meth:`probe`: ``{key: matches}`` for the (distinct)
        ``keys`` with at least one locally-passing old-state match.

        The columnar attach kernels probe once per distinct join key of
        the whole batch; matches here come grouped so fan-out rows are
        replicated by C-level list extension, never re-probed.
        """
        source = self._probe_source(positions)
        local = self.local_predicate
        spec = self.filter_spec
        if isinstance(source, dict):
            get = source.get
            if local is None:
                return {k: m for k in keys if (m := get(k))}
            if spec is not None:
                return {
                    k: fm
                    for k in keys
                    if (m := get(k)) and (fm := _spec_filter(m, spec))
                }
            return {
                k: fm
                for k in keys
                if (m := get(k))
                and (fm := [(t, v) for t, v in m if local(v)])
            }
        if local is None:
            return source.lookup_batch(keys, self.metrics)
        if spec is not None and len(spec) == 1:
            # The hot case — single-comparison local predicate over an
            # indexed, unchanged operand: fuse bucket iteration, value
            # fetch, and predicate into one comprehension per key, with
            # zero per-row Python calls (bucket/row gets are C-level).
            maps = source.fast_maps()
            if maps is not None:
                buckets_get, rows_get = maps
                ((p, op, c),) = spec
                out: Dict[Tuple, List[Tuple[Tid, Values]]] = {}
                probes = 0
                for k in keys:
                    probes += 1
                    b = buckets_get(k)
                    if b and (
                        m := [
                            (t, v)
                            for t in b
                            if (v := rows_get(t)) is not None
                            and (x := v[p]) is not None
                            and op(x, c)
                        ]
                    ):
                        out[k] = m
                if self.metrics and probes:
                    self.metrics.count(Metrics.INDEX_PROBES, probes)
                return out
        matched = source.lookup_batch(keys, self.metrics)
        if spec is not None:
            return {
                k: fm
                for k, m in matched.items()
                if (fm := _spec_filter(m, spec))
            }
        return {
            k: fm
            for k, m in matched.items()
            if (fm := [(t, v) for t, v in m if local(v)])
        }

    def _probe_source(self, positions: Tuple[int, ...]):
        """An index-like object answering lookups on ``positions``.

        Prefers a maintained table index (wrapped for old-state
        answers); otherwise builds — once per operand per execution —
        a transient hash table by scanning the old state.
        """
        positions = tuple(positions)
        cached = self._index_cache.get(positions)
        if cached is not None:
            return cached
        index = self.table.index_for(positions)
        if index is not None and index.positions == positions:
            wrapped = OldStateIndex(
                index,
                self.delta if self.delta is not None else DeltaRelation(self.table.schema),
                self.table.current,
            )
            self._index_cache[positions] = wrapped
            return wrapped
        scan = self._scan_cache.get(positions)
        if scan is None:
            scan = {}
            scanned = 0
            for row in self._old_view:
                scanned += 1
                key = tuple(row.values[p] for p in positions)
                scan.setdefault(key, []).append((row.tid, row.values))
            if self.metrics:
                # Hoisted: one flush per scan, not one count per row.
                self.metrics.count(Metrics.BASE_SCANS)
                if scanned:
                    self.metrics.count(Metrics.ROWS_SCANNED, scanned)
            self._scan_cache[positions] = scan
        return scan

    def scan(self) -> List[Tuple[Tid, Values]]:
        """Full old-state scan (cartesian fallback), locally filtered."""
        out = []
        scanned = 0
        local = self.local_predicate
        spec = self.filter_spec
        if local is not None and spec is not None:
            rows = [(row.tid, row.values) for row in self._old_view]
            scanned = len(rows)
            out = _spec_filter(rows, spec)
        else:
            for row in self._old_view:
                scanned += 1
                if local is None or local(row.values):
                    out.append((row.tid, row.values))
        if self.metrics:
            self.metrics.count(Metrics.BASE_SCANS)
            if scanned:
                self.metrics.count(Metrics.ROWS_SCANNED, scanned)
        return out

    def old_size(self) -> int:
        return len(self._old_view)
