"""Term operands: signed delta seeds and probe-able base relations.

A term of the truth-table expansion joins two kinds of operands:

* :class:`DeltaOperand` — the differential relation of a changed table,
  viewed as a signed set: each entry contributes its old side with
  weight −1 and its new side with weight +1 (after local-predicate
  filtering, the paper's "Select before Join" refinement);
* :class:`BaseOperand` — a table at its *old* state (Algorithm 1 input
  (ii): base contents as of the last execution), which is only ever
  probed through hash indexes or, lacking a suitable index, scanned
  once into a transient hash table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics import Metrics
from repro.relational.predicates import CompiledPredicate
from repro.relational.relation import Tid, Values
from repro.storage.table import Table
from repro.delta.differential import DeltaRelation
from repro.delta.views import OldStateIndex, OldStateView

# One signed row of a delta operand.
SignedRow = Tuple[Tid, Values, int]  # (tid, values, weight ±1)


class DeltaOperand:
    """The signed, locally filtered rows of one changed operand."""

    __slots__ = ("alias", "rows", "_indexes")

    def __init__(
        self,
        alias: str,
        delta: DeltaRelation,
        local_predicate: Optional[CompiledPredicate],
        metrics: Optional[Metrics] = None,
    ):
        self.alias = alias
        rows: List[SignedRow] = []
        for entry in delta:
            if metrics:
                metrics.count(Metrics.DELTA_ROWS_READ)
            if entry.old is not None and (
                local_predicate is None or local_predicate(entry.old)
            ):
                rows.append((entry.tid, entry.old, -1))
            if entry.new is not None and (
                local_predicate is None or local_predicate(entry.new)
            ):
                rows.append((entry.tid, entry.new, +1))
        self.rows = rows
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[SignedRow]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def index_on(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple, List[SignedRow]]:
        """Transient hash index of the signed rows on ``positions``,
        built once per operand per position tuple (several truth-table
        terms attach the same operand over the same join edges)."""
        buckets = self._indexes.get(positions)
        if buckets is None:
            buckets = {}
            for tid, values, weight in self.rows:
                key = tuple(values[p] for p in positions)
                buckets.setdefault(key, []).append((tid, values, weight))
            self._indexes[positions] = buckets
        return buckets


class BaseOperand:
    """One unsubstituted operand: the table at its old state.

    ``delta`` is the table's consolidated delta since the last
    execution (empty for unchanged tables); probes and scans answer in
    the *old* state by overlaying it on the live relation.
    """

    __slots__ = (
        "alias",
        "table",
        "delta",
        "local_predicate",
        "_old_view",
        "_index_cache",
        "_scan_cache",
        "metrics",
    )

    def __init__(
        self,
        alias: str,
        table: Table,
        delta: Optional[DeltaRelation],
        local_predicate: Optional[CompiledPredicate],
        metrics: Optional[Metrics] = None,
    ):
        self.alias = alias
        self.table = table
        self.delta = delta
        self.local_predicate = local_predicate
        self._old_view = OldStateView(
            table.current, delta if delta is not None else DeltaRelation(table.schema)
        )
        self._index_cache: Dict[Tuple[int, ...], object] = {}
        self._scan_cache: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple[Tid, Values]]]] = {}
        self.metrics = metrics

    def probe(
        self, positions: Tuple[int, ...], key: Tuple
    ) -> List[Tuple[Tid, Values]]:
        """Old-state rows matching ``key`` on ``positions`` that satisfy
        the operand's local predicate."""
        source = self._probe_source(positions)
        matches = source.get(key, []) if isinstance(source, dict) else source.lookup(
            key, self.metrics
        )
        if self.local_predicate is None:
            return list(matches)
        return [(tid, values) for tid, values in matches if self.local_predicate(values)]

    def _probe_source(self, positions: Tuple[int, ...]):
        """An index-like object answering lookups on ``positions``.

        Prefers a maintained table index (wrapped for old-state
        answers); otherwise builds — once per operand per execution —
        a transient hash table by scanning the old state.
        """
        positions = tuple(positions)
        cached = self._index_cache.get(positions)
        if cached is not None:
            return cached
        index = self.table.index_for(positions)
        if index is not None and index.positions == positions:
            wrapped = OldStateIndex(
                index,
                self.delta if self.delta is not None else DeltaRelation(self.table.schema),
                self.table.current,
            )
            self._index_cache[positions] = wrapped
            return wrapped
        scan = self._scan_cache.get(positions)
        if scan is None:
            scan = {}
            if self.metrics:
                self.metrics.count(Metrics.BASE_SCANS)
            for row in self._old_view:
                if self.metrics:
                    self.metrics.count(Metrics.ROWS_SCANNED)
                key = tuple(row.values[p] for p in positions)
                scan.setdefault(key, []).append((row.tid, row.values))
            self._scan_cache[positions] = scan
        return scan

    def scan(self) -> List[Tuple[Tid, Values]]:
        """Full old-state scan (cartesian fallback), locally filtered."""
        out = []
        if self.metrics:
            self.metrics.count(Metrics.BASE_SCANS)
        for row in self._old_view:
            if self.metrics:
                self.metrics.count(Metrics.ROWS_SCANNED)
            if self.local_predicate is None or self.local_predicate(row.values):
                out.append((row.tid, row.values))
        return out

    def old_size(self) -> int:
        return len(self._old_view)
