"""Algorithm 1 steps 3-4: union of term results and result assembly.

Step 3 sums the weighted candidates of all terms by (result tid,
projected values). In exact arithmetic every surviving weight is ±1:
−1 entries are rows leaving the result, +1 entries are rows entering
it; a tid carrying both is an in-place modification. Step 4 assembles
what the user asked for — differential only, complete result, or
deletion notifications — from that result delta and the previous
execution's result (Algorithm 1 input (v)).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.relational.relation import Relation, Tid, Values
from repro.relational.schema import Schema
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.terms import Entry


class WeightInvariantError(ReproError):
    """A summed weight fell outside {−1, 0, +1}.

    With tid-keyed set semantics this cannot happen for a correct
    expansion; raising loudly turns any algebra bug into a test
    failure instead of a silently wrong result.
    """


def accumulate(
    term_results: Iterable[List[Entry]],
) -> Dict[Tuple[Tid, Values], int]:
    """Sum weighted, projected candidates across terms (step 3).

    Terms arrive already projected — each candidate is a flat
    ``(result tid, output values, weight)`` triple produced by the
    term's prepared plan — so step 3 is a pure signed sum.
    """
    weights: Dict[Tuple[Tid, Values], int] = {}
    get = weights.get
    for entries in term_results:
        for ctid, values, weight in entries:
            key = (ctid, values)
            total = get(key, 0) + weight
            if total:
                weights[key] = total
            else:
                weights.pop(key, None)
    return weights


def to_delta(
    weights: Dict[Tuple[Tid, Values], int],
    schema: Schema,
    ts: Timestamp,
) -> DeltaRelation:
    """Classify net weights into insert/delete/modify delta entries."""
    old_side: Dict[Tid, Values] = {}
    new_side: Dict[Tid, Values] = {}
    for (ctid, values), weight in weights.items():
        if weight == 1:
            new_side[ctid] = values
        elif weight == -1:
            old_side[ctid] = values
        else:
            raise WeightInvariantError(
                f"weight {weight} for result tid {ctid!r}; expected ±1"
            )
    if len(old_side) + len(new_side) != len(weights):
        # A tid landed twice on the same side and one insert silently
        # overwrote the other; re-walk to name the offender.
        seen_old: set = set()
        seen_new: set = set()
        for (ctid, _values), weight in weights.items():
            side, seen = (
                ("new", seen_new) if weight == 1 else ("old", seen_old)
            )
            if ctid in seen:
                raise WeightInvariantError(
                    f"two {side}-side rows for result tid {ctid!r}"
                )
            seen.add(ctid)
    # The side dicts are tid-keyed, so entry tids are unique by
    # construction: build the consolidated mapping directly and skip
    # DeltaRelation's per-entry duplicate check.
    entries: Dict[Tid, DeltaEntry] = {}
    pop_new = new_side.pop
    for ctid, values in old_side.items():
        new_values = pop_new(ctid, None)
        if new_values == values:
            continue  # defensive; zero-sum pairs were dropped earlier
        entries[ctid] = DeltaEntry(ctid, values, new_values, ts)
    for ctid, values in new_side.items():
        entries[ctid] = DeltaEntry(ctid, None, values, ts)
    return DeltaRelation.from_consolidated(schema, entries)


class TermTrace:
    """Explain record for one truth-table term."""

    __slots__ = ("substituted", "seed_alias", "seed_rows", "candidates")

    def __init__(
        self,
        substituted: frozenset,
        seed_alias: str,
        seed_rows: int,
        candidates: int,
    ):
        self.substituted = substituted
        self.seed_alias = seed_alias
        self.seed_rows = seed_rows
        self.candidates = candidates

    def __repr__(self) -> str:
        subs = ",".join(sorted(self.substituted))
        return (
            f"TermTrace(Δ{{{subs}}}, seed={self.seed_alias}"
            f"[{self.seed_rows} rows], {self.candidates} candidates)"
        )


class DRAResult:
    """The outcome of one differential re-evaluation (step 4 views).

    ``delta`` is ΔQ — the net change to the query result since the last
    execution. The assembly helpers realize the paper's three delivery
    options without re-running anything.
    """

    __slots__ = (
        "delta",
        "schema",
        "previous",
        "ts",
        "changed_aliases",
        "terms_evaluated",
        "skipped",
        "traces",
    )

    def __init__(
        self,
        delta: DeltaRelation,
        schema: Schema,
        previous: Optional[Relation],
        ts: Timestamp,
        changed_aliases: Tuple[str, ...] = (),
        terms_evaluated: int = 0,
        skipped: bool = False,
        traces: Optional[List[TermTrace]] = None,
    ):
        self.delta = delta
        self.schema = schema
        self.previous = previous
        self.ts = ts
        self.changed_aliases = changed_aliases
        self.terms_evaluated = terms_evaluated
        #: True when the execution was skipped as irrelevant (§5.2).
        self.skipped = skipped
        #: Per-term explain records (populated with explain=True).
        self.traces = traces

    def explain(self) -> str:
        """Human-readable account of this execution's truth table."""
        lines = [
            f"DRA execution at ts={self.ts}: "
            f"{len(self.changed_aliases)} changed operand(s) "
            f"{list(self.changed_aliases)}, "
            f"{self.terms_evaluated} term(s)"
        ]
        if self.skipped:
            lines.append("  skipped: all updates irrelevant (Section 5.2)")
        for trace in self.traces or ():
            lines.append(f"  {trace!r}")
        lines.append(f"  result delta: {self.delta!r}")
        return "\n".join(lines)

    def differential_result(self) -> DeltaRelation:
        """Only what changed since the last execution."""
        return self.delta

    def insertions(self) -> Relation:
        """Rows that entered the result (includes modified new sides)."""
        return self.delta.insertions()

    def deletions(self) -> Relation:
        """Rows that left the result (includes modified old sides) —
        the paper's deleted-tuple notification."""
        return self.delta.deletions()

    def complete_result(self) -> Relation:
        """E_i(Q) ∪ insertions − deletions, per the paper's formula.

        Requires the previous complete result to have been retained
        (Section 3.3's trade-off: without it, only differential
        notification is possible).
        """
        if self.previous is None:
            raise ReproError(
                "complete_result needs the previous execution's result; "
                "this CQ was registered for differential-only delivery"
            )
        return self.delta.apply_to(self.previous)

    def has_changes(self) -> bool:
        return not self.delta.is_empty()

    def __repr__(self) -> str:
        return (
            f"DRAResult({self.delta!r}, ts={self.ts}, "
            f"terms={self.terms_evaluated}, skipped={self.skipped})"
        )
