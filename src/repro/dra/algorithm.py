"""The Differential Re-evaluation Algorithm (paper Algorithm 1).

Given (i) the SPJ definition of a continual query, (ii) access to the
base relations, (iii) the differential relations of the changed
operands, (iv) the timestamp of the last execution, and (v) the
previous result, :func:`dra_execute` produces the current execution's
result differentially:

1. build the truth table over the changed operand relations;
2. for each non-zero row, evaluate the SPJ term with ΔR_i substituted
   at the 1-positions (seeded at deltas, probing base relations);
3. union (signed-sum) the term results;
4. assemble the user-facing result (differential / complete /
   deletions) via :class:`repro.dra.assembly.DRAResult`.

Inputs (iii)/(iv) interact exactly as the paper describes: the deltas
handed to the algorithm are consolidated from each table's update log
*restricted to timestamps after the last execution* — the "proper
timestamp predicate" the CQ manager appends.

Planning and compilation happen once, not per refresh: pass a
``prepared`` plan (see :func:`repro.dra.prepared.prepare_cq`) to skip
scope/plan/predicate/projection derivation entirely — the manager and
server cache one per CQ. Without it, the query is prepared on the fly
(the one-shot path for baselines and demos), which leaves results
identical and only costs the compile.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import QueryError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.capture import deltas_since
from repro.delta.differential import DeltaRelation
from repro.dra.assembly import DRAResult, TermTrace, accumulate, to_delta
from repro.dra.kernels import KernelStats
from repro.dra.operands import BaseOperand, DeltaOperand
from repro.dra.prepared import PreparedCQ, prepare_cq
from repro.dra.terms import evaluate_term


def dra_execute(
    query: SPJQuery,
    db: Database,
    deltas: Optional[Mapping[str, DeltaRelation]] = None,
    since: Optional[Timestamp] = None,
    previous: Optional[Relation] = None,
    ts: Optional[Timestamp] = None,
    metrics: Optional[Metrics] = None,
    explain: bool = False,
    prepared: Optional[PreparedCQ] = None,
    tracer=None,
    columnar: bool = False,
) -> DRAResult:
    """Differentially re-evaluate ``query`` against ``db``.

    Either pass consolidated per-table ``deltas`` directly (keys are
    table names) or a ``since`` timestamp from which they are read out
    of the tables' update logs. ``previous`` is the retained result of
    the last execution — optional; without it only differential
    delivery is available. ``ts`` stamps the produced delta entries
    (defaults to the database's current time). ``prepared`` must have
    been compiled from an equivalent query over the same catalog (the
    caller — typically a plan cache — is responsible for staleness);
    omitted, the query is prepared here, once, for this execution.
    ``tracer`` (a :class:`repro.obs.trace.Tracer`) wraps each evaluated
    truth-table term in a ``dra.term`` span. With ``columnar=True``,
    terms execute as compiled struct-of-arrays kernel pipelines
    (:mod:`repro.dra.kernels`) instead of the per-row interpreter —
    identical results, batch-at-a-time work.
    """
    if prepared is None:
        prepared = prepare_cq(query, db, metrics=metrics, auto_index=False)
    if deltas is None:
        if since is None:
            raise QueryError("dra_execute needs either deltas or since=")
        deltas = deltas_since(
            [db.table(name) for name in set(query.table_names)], since
        )
    if ts is None:
        ts = db.now()

    out_schema = prepared.out_schema

    # Constant conjuncts gate the whole query: if any is false the
    # result is empty at every execution, so the delta is empty too.
    if prepared.never_matches:
        return DRAResult(
            DeltaRelation(out_schema), out_schema, previous, ts, (), 0
        )

    # Build operands once; they are shared by all truth-table terms.
    compiled_local = prepared.compiled_local
    delta_operands: Dict[str, DeltaOperand] = {}
    base_operands: Dict[str, BaseOperand] = {}
    changed = []
    local_specs = prepared.local_specs
    for ref in query.relations:
        table = db.table(ref.table)
        table_delta = deltas.get(ref.table)
        local = compiled_local[ref.alias]
        spec = local_specs.get(ref.alias)
        if table_delta is not None and not table_delta.is_empty():
            operand = DeltaOperand(
                ref.alias, table_delta, local, metrics, filter_spec=spec
            )
            # Local filtering may empty the operand: every change to
            # this relation is irrelevant to the query (Section 5.2),
            # and σ_local(R_old) == σ_local(R_new), so the alias can be
            # treated as unchanged.
            if len(operand):
                delta_operands[ref.alias] = operand
                changed.append(ref.alias)
        base_operands[ref.alias] = BaseOperand(
            ref.alias, table, table_delta, local, metrics, filter_spec=spec
        )

    if not changed:
        # Irrelevant-update fast path: nothing to re-evaluate.
        if metrics:
            metrics.count(Metrics.EXECUTIONS_SKIPPED)
        return DRAResult(
            DeltaRelation(out_schema), out_schema, previous, ts, (), 0, skipped=True
        )

    changed_key = tuple(changed)
    traces: Optional[list] = [] if explain else None

    # Guard the per-term span plumbing so the hot loop stays unchanged
    # when tracing is off (the overwhelmingly common case).
    trace_terms = tracer is not None and tracer.enabled

    def run_terms():
        for row in prepared.truth_rows(changed_key):
            seed = min(row, key=lambda a: len(delta_operands[a]))
            if trace_terms:
                with tracer.span(
                    "dra.term", row=",".join(row), seed=seed
                ) as span:
                    entries = evaluate_term(
                        prepared.term_plan(row, seed),
                        delta_operands,
                        base_operands,
                        metrics,
                    )
                    span.set(
                        seed_rows=len(delta_operands[seed]),
                        entries=len(entries),
                    )
            else:
                entries = evaluate_term(
                    prepared.term_plan(row, seed),
                    delta_operands,
                    base_operands,
                    metrics,
                )
            if traces is not None:
                traces.append(
                    TermTrace(
                        row, seed, len(delta_operands[seed]), len(entries)
                    )
                )
            yield entries

    def run_terms_columnar():
        """Step 2+3 in one pass: each term's kernel pipeline sums its
        weighted candidates straight into the shared weights dict.
        Kernel counters accumulate locally and flush once."""
        weights: Dict = {}
        stats = KernelStats()
        for row in prepared.truth_rows(changed_key):
            seed = min(row, key=lambda a: len(delta_operands[a]))
            kernel = prepared.term_kernel(row, seed)
            if metrics:
                metrics.count(Metrics.TERMS_EVALUATED)
            if trace_terms:
                with tracer.span(
                    "dra.term", row=",".join(row), seed=seed
                ) as span:
                    produced = kernel.execute(
                        delta_operands, base_operands, weights, stats, tracer
                    )
                    span.set(
                        seed_rows=len(delta_operands[seed]),
                        entries=produced,
                    )
            else:
                produced = kernel.execute(
                    delta_operands, base_operands, weights, stats
                )
            if traces is not None:
                traces.append(
                    TermTrace(row, seed, len(delta_operands[seed]), produced)
                )
        if metrics and stats.calls:
            metrics.count(Metrics.KERNEL_CALLS, stats.calls)
            metrics.count(Metrics.KERNEL_ROWS, stats.rows)
        return weights

    weights = run_terms_columnar() if columnar else accumulate(run_terms())
    delta = to_delta(weights, out_schema, ts)
    if metrics:
        metrics.count(Metrics.EXECUTIONS)
    return DRAResult(
        delta,
        out_schema,
        previous,
        ts,
        changed_key,
        prepared.truth_table(changed_key).term_count,
        traces=traces,
    )
