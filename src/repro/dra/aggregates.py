"""Differential maintenance of aggregate continual queries.

The paper's epsilon examples are aggregates ("SELECT SUM(amount) FROM
CheckingAccounts", Sections 3.2 and 5.3): rather than rescanning the
base relation at every trigger check, the new aggregate is computed
from the old one plus the differential relation. This module maintains
any :class:`~repro.relational.aggregates.AggregateQuery` (global or
grouped) that way: DRA produces the SPJ core's result delta, and the
delta's old sides are removed from / new sides added to per-group
accumulators.

SUM/COUNT/AVG updates are O(|Δ|); MIN/MAX may rescan their distinct
value multiset when the extremum is deleted (the classic
non-distributive case — see the E5 benchmark).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.metrics import Metrics
from repro.relational.aggregates import Accumulator, AggregateQuery
from repro.relational.evaluate import evaluate_spj, spj_output_schema
from repro.relational.relation import Relation, Values
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.algorithm import dra_execute

GroupKey = Tuple[Any, ...]


class DifferentialAggregate:
    """Incrementally maintained state of one aggregate query."""

    def __init__(self, query: AggregateQuery, db: Database):
        self.query = query
        self.db = db
        scopes = {
            ref.alias: db.table(ref.table).schema
            for ref in query.core.relations
        }
        self.core_schema = spj_output_schema(query.core, scopes)
        self.schema = query.output_schema(self.core_schema)
        self._group_positions = [
            self.core_schema.position(ref.name) for ref in query.group_by
        ]
        self._arg_positions: List[Optional[int]] = [
            self.core_schema.position(spec.ref.name) if spec.ref is not None else None
            for spec in query.aggregates
        ]
        self._groups: Dict[GroupKey, List[Accumulator]] = {}
        self._row_counts: Dict[GroupKey, int] = {}
        self.result = Relation(self.schema)
        self._initialized = False
        if query.having is not None:
            from repro.relational.binding import SingleRowBinder

            self._having = query.having.compile(SingleRowBinder(self.schema))
        else:
            self._having = None

    @property
    def initialized(self) -> bool:
        return self._initialized

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, metrics: Optional[Metrics] = None) -> Relation:
        """First (complete) evaluation; subsequent updates are differential."""
        core_rows = evaluate_spj(self.query.core, self.db.relation, metrics)
        self._groups.clear()
        self._row_counts.clear()
        for row in core_rows:
            self._add_row(row.values)
        self._initialized = True
        self.result = self._materialize()
        return self.result.copy()

    def update(
        self,
        deltas: Mapping[str, DeltaRelation],
        ts: Timestamp,
        metrics: Optional[Metrics] = None,
        prepared=None,
        columnar: bool = False,
    ) -> DeltaRelation:
        """Fold the base-table deltas in; returns the aggregate delta.

        ``prepared`` is an optional pre-compiled plan for the SPJ core
        (see :func:`repro.dra.prepared.prepare_cq`) — the manager hands
        its cached one through so the core's differential never
        replans. ``columnar`` selects the struct-of-arrays kernel
        evaluator for the core differential (DESIGN.md §11).
        """
        if not self._initialized:
            raise ReproError("call initialize() before update()")
        core_delta = dra_execute(
            self.query.core,
            self.db,
            deltas=deltas,
            ts=ts,
            metrics=metrics,
            prepared=prepared,
            columnar=columnar,
        ).delta

        touched: Dict[GroupKey, Optional[Values]] = {}
        for entry in core_delta:
            if entry.old is not None:
                self._snapshot(touched, self._key_of(entry.old))
            if entry.new is not None:
                self._snapshot(touched, self._key_of(entry.new))
        for entry in core_delta:
            if entry.old is not None:
                self._remove_row(entry.old)
            if entry.new is not None:
                self._add_row(entry.new)

        entries = []
        for key, old_values in touched.items():
            new_values = self._visible_row(key)
            if old_values == new_values:
                continue
            entries.append(DeltaEntry(key, old_values, new_values, ts))
            if new_values is None:
                self.result.remove(key)
            else:
                self.result.add(key, new_values)
        return DeltaRelation(self.schema, entries)

    def current(self) -> Relation:
        """The maintained aggregate result (copy)."""
        return self.result.copy()

    # -- internals -----------------------------------------------------------

    def _key_of(self, core_values: Values) -> GroupKey:
        return tuple(core_values[p] for p in self._group_positions)

    def _snapshot(
        self, touched: Dict[GroupKey, Optional[Values]], key: GroupKey
    ) -> None:
        if key not in touched:
            touched[key] = self._visible_row(key)

    def _visible_row(self, key: GroupKey) -> Optional[Values]:
        """The group's output row after the HAVING filter (None if the
        group is absent or filtered out)."""
        row = self._group_row(key)
        if row is None:
            return None
        if self._having is not None and not self._having(row):
            return None
        return row

    def _group_row(self, key: GroupKey) -> Optional[Values]:
        """The current aggregate output row for ``key`` (None if absent).

        A grouped query has no row for an empty group; a global query
        always has its single row (with empty-input aggregate values).
        """
        accs = self._groups.get(key)
        if accs is None or (self._row_counts.get(key, 0) == 0 and self.query.group_by):
            if self.query.group_by:
                return None
            accs = accs or [s.make_accumulator() for s in self.query.aggregates]
        return key + tuple(acc.result() for acc in accs)

    def _add_row(self, core_values: Values) -> None:
        key = self._key_of(core_values)
        accs = self._groups.get(key)
        if accs is None:
            accs = [spec.make_accumulator() for spec in self.query.aggregates]
            self._groups[key] = accs
            self._row_counts[key] = 0
        for acc, pos in zip(accs, self._arg_positions):
            acc.add(core_values[pos] if pos is not None else None)
        self._row_counts[key] += 1

    def _remove_row(self, core_values: Values) -> None:
        key = self._key_of(core_values)
        accs = self._groups.get(key)
        if accs is None or self._row_counts.get(key, 0) <= 0:
            raise ReproError(
                f"aggregate state underflow for group {key!r}: removal of a "
                "row that was never added (delta/initialization mismatch)"
            )
        for acc, pos in zip(accs, self._arg_positions):
            acc.remove(core_values[pos] if pos is not None else None)
        self._row_counts[key] -= 1
        if self._row_counts[key] == 0 and self.query.group_by:
            del self._groups[key]
            del self._row_counts[key]

    def _materialize(self) -> Relation:
        out = Relation(self.schema)
        if not self.query.group_by:
            row = self._visible_row(())
            if row is not None:
                out.add((), row)
            return out
        for key in self._groups:
            row = self._visible_row(key)
            if row is not None:
                out.add(key, row)
        return out
