"""Algorithm 1 step 2: evaluating one truth-table term.

A term substitutes ΔR_i for R_i at the positions its truth-table row
marks with 1 and keeps the old base contents elsewhere. Evaluation is
*seeded at the deltas*: the smallest substituted operand's signed rows
form the initial partial results, and every further operand is attached
either by probing (base operands, via old-state hash indexes) or by a
transient hash lookup / cross product (delta operands). Base relations
are never iterated unless the join graph is disconnected or no index
fits — which the metrics make visible.

Each partial carries a weight: the product of its delta rows' signs
(+1 for new sides, −1 for old sides; base rows are +1). Summing
weighted, projected partials over all terms yields exactly
Q(S_new) − Q(S_old) in signed-set algebra.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.metrics import Metrics
from repro.relational.planning import PredicatePlan
from repro.relational.predicates import CompiledPredicate
from repro.relational.relation import Tid, Values
from repro.dra.operands import BaseOperand, DeltaOperand

# (tids per alias, values per alias, weight)
Partial = Tuple[Dict[str, Tid], Dict[str, Values], int]


def evaluate_term(
    substituted: FrozenSet[str],
    aliases: Sequence[str],
    delta_operands: Dict[str, DeltaOperand],
    base_operands: Dict[str, BaseOperand],
    plan: PredicatePlan,
    residual_compiled: Dict[int, CompiledPredicate],
    metrics: Optional[Metrics] = None,
) -> List[Partial]:
    """All weighted candidate rows of one term."""
    if metrics:
        metrics.count(Metrics.TERMS_EVALUATED)

    # Seed with the smallest substituted delta operand.
    seed_alias = min(substituted, key=lambda a: len(delta_operands[a]))
    partials: List[Partial] = [
        ({seed_alias: tid}, {seed_alias: values}, weight)
        for tid, values, weight in delta_operands[seed_alias].rows
    ]
    bound: Set[str] = {seed_alias}
    applied: Set[int] = set()
    partials = _apply_residuals(partials, plan, bound, applied, residual_compiled)

    remaining = [a for a in aliases if a != seed_alias]
    while remaining and partials:
        alias = _pick_next(remaining, substituted, bound, plan)
        remaining.remove(alias)
        edges = plan.edges_between(bound, alias)
        if alias in substituted:
            partials = _attach_delta(
                partials, alias, delta_operands[alias], edges
            )
        else:
            partials = _attach_base(
                partials, alias, base_operands[alias], edges
            )
        bound.add(alias)
        partials = _apply_residuals(partials, plan, bound, applied, residual_compiled)

    # Remaining aliases with no partials left: term contributes nothing.
    return partials


def _pick_next(
    remaining: List[str],
    substituted: FrozenSet[str],
    bound: Set[str],
    plan: PredicatePlan,
) -> str:
    """Attachment order: connected deltas, connected bases, then
    unconnected deltas (small cross products) before unconnected bases."""

    def priority(alias: str) -> int:
        connected = bool(plan.edges_between(bound, alias))
        is_delta = alias in substituted
        if connected and is_delta:
            return 0
        if connected:
            return 1
        if is_delta:
            return 2
        return 3

    return min(remaining, key=lambda a: (priority(a), remaining.index(a)))


def _attach_delta(
    partials: List[Partial],
    alias: str,
    operand: DeltaOperand,
    edges,
) -> List[Partial]:
    out: List[Partial] = []
    if edges:
        positions = tuple(e.position_for(alias) for e in edges)
        buckets = operand.index_on(positions)
        key_sources = [
            (e.other(alias), e.position_for(e.other(alias))) for e in edges
        ]
        for tids, vals, weight in partials:
            key = tuple(vals[a][p] for a, p in key_sources)
            for tid, values, w in buckets.get(key, ()):
                new_tids = dict(tids)
                new_tids[alias] = tid
                new_vals = dict(vals)
                new_vals[alias] = values
                out.append((new_tids, new_vals, weight * w))
    else:
        rows = operand.rows
        for tids, vals, weight in partials:
            for tid, values, w in rows:
                new_tids = dict(tids)
                new_tids[alias] = tid
                new_vals = dict(vals)
                new_vals[alias] = values
                out.append((new_tids, new_vals, weight * w))
    return out


def _attach_base(
    partials: List[Partial],
    alias: str,
    operand: BaseOperand,
    edges,
) -> List[Partial]:
    out: List[Partial] = []
    if edges:
        positions = tuple(e.position_for(alias) for e in edges)
        key_sources = [
            (e.other(alias), e.position_for(e.other(alias))) for e in edges
        ]
        for tids, vals, weight in partials:
            key = tuple(vals[a][p] for a, p in key_sources)
            for tid, values in operand.probe(positions, key):
                new_tids = dict(tids)
                new_tids[alias] = tid
                new_vals = dict(vals)
                new_vals[alias] = values
                out.append((new_tids, new_vals, weight))
    else:
        rows = operand.scan()
        for tids, vals, weight in partials:
            for tid, values in rows:
                new_tids = dict(tids)
                new_tids[alias] = tid
                new_vals = dict(vals)
                new_vals[alias] = values
                out.append((new_tids, new_vals, weight))
    return out


def _apply_residuals(
    partials: List[Partial],
    plan: PredicatePlan,
    bound: Set[str],
    applied: Set[int],
    residual_compiled: Dict[int, CompiledPredicate],
) -> List[Partial]:
    for index, __ in plan.residual_ready(bound, applied):
        compiled = residual_compiled.get(index)
        applied.add(index)
        if compiled is None:  # constant conjunct, gated by the driver
            continue
        partials = [
            (tids, vals, weight)
            for tids, vals, weight in partials
            if compiled(vals)
        ]
    return partials
