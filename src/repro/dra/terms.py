"""Algorithm 1 step 2: evaluating one truth-table term.

A term substitutes ΔR_i for R_i at the positions its truth-table row
marks with 1 and keeps the old base contents elsewhere. Evaluation is
*seeded at the deltas*: the seed operand's signed rows form the initial
partial results, and every further operand is attached either by
probing (base operands, via old-state hash indexes) or by a transient
hash lookup / cross product (delta operands). Base relations are never
iterated unless the join graph is disconnected or no index fits —
which the metrics make visible (``base_scans``).

The attachment order, join-key positions, residual predicates, and
projection all come pre-resolved from a
:class:`~repro.dra.prepared.TermPlan`: a partial here is a flat
``(tids, values, weight)`` triple of tuples indexed by attachment slot
and extended functionally — attaching a row is two tuple appends, with
no per-row dict copies anywhere in the innermost join loop.

Each partial carries a weight: the product of its delta rows' signs
(+1 for new sides, −1 for old sides; base rows are +1). Summing
weighted, projected partials over all terms yields exactly
Q(S_new) − Q(S_old) in signed-set algebra.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics import Metrics
from repro.relational.predicates import CompiledPredicate
from repro.relational.relation import Tid, Values
from repro.dra.operands import BaseOperand, DeltaOperand

# A partial result mid-attachment: slot-indexed flat tuples.
Partial = Tuple[Tuple[Tid, ...], Tuple[Values, ...], int]
# A finished, projected candidate: (result tid, output values, weight).
Entry = Tuple[Tid, Values, int]


def evaluate_term(
    plan,
    delta_operands: Dict[str, DeltaOperand],
    base_operands: Dict[str, BaseOperand],
    metrics: Optional[Metrics] = None,
) -> List[Entry]:
    """All weighted, projected candidate rows of one term.

    ``plan`` is the term's :class:`~repro.dra.prepared.TermPlan`; the
    operand dicts are this execution's delta seeds and old-state base
    views.
    """
    if metrics:
        metrics.count(Metrics.TERMS_EVALUATED)

    partials: List[Partial] = [
        ((tid,), (values,), weight)
        for tid, values, weight in delta_operands[plan.seed].rows
    ]
    partials = _apply_residuals(partials, plan.seed_residuals)

    for step in plan.steps:
        # Short-circuit the whole term as soon as any stage empties:
        # attaching to or filtering an empty partial set can only
        # produce an empty set.
        if not partials:
            return []
        if step.is_delta:
            partials = _attach_delta(partials, delta_operands[step.alias], step)
        else:
            partials = _attach_base(partials, base_operands[step.alias], step)
        partials = _apply_residuals(partials, step.residuals)

    if not partials:
        return []
    return _project(partials, plan)


def _project(partials: Sequence[Partial], plan) -> List[Entry]:
    project = plan.project
    perm = plan.tid_perm
    if perm is None:
        return [(tids[0], project(vals), w) for tids, vals, w in partials]
    return [
        (tuple(tids[i] for i in perm), project(vals), w)
        for tids, vals, w in partials
    ]


def _attach_delta(
    partials: List[Partial],
    operand: DeltaOperand,
    step,
) -> List[Partial]:
    out: List[Partial] = []
    append = out.append
    if step.key_positions:
        lookup = operand.index_on(step.key_positions).get
        sources = step.key_sources
        if len(sources) == 1:
            (s, p), = sources
            for tids, vals, weight in partials:
                bucket = lookup((vals[s][p],))
                if bucket:
                    for tid, values, w in bucket:
                        append((tids + (tid,), vals + (values,), weight * w))
        else:
            for tids, vals, weight in partials:
                bucket = lookup(tuple(vals[s][p] for s, p in sources))
                if bucket:
                    for tid, values, w in bucket:
                        append((tids + (tid,), vals + (values,), weight * w))
    else:
        rows = operand.rows
        for tids, vals, weight in partials:
            for tid, values, w in rows:
                append((tids + (tid,), vals + (values,), weight * w))
    return out


def _attach_base(
    partials: List[Partial],
    operand: BaseOperand,
    step,
) -> List[Partial]:
    out: List[Partial] = []
    append = out.append
    if step.key_positions:
        positions = step.key_positions
        sources = step.key_sources
        probe = operand.probe
        if len(sources) == 1:
            (s, p), = sources
            for tids, vals, weight in partials:
                for tid, values in probe(positions, (vals[s][p],)):
                    append((tids + (tid,), vals + (values,), weight))
        else:
            for tids, vals, weight in partials:
                key = tuple(vals[s][p] for s, p in sources)
                for tid, values in probe(positions, key):
                    append((tids + (tid,), vals + (values,), weight))
    else:
        rows = operand.scan()
        for tids, vals, weight in partials:
            for tid, values in rows:
                append((tids + (tid,), vals + (values,), weight))
    return out


def _apply_residuals(
    partials: List[Partial],
    residuals: Tuple[CompiledPredicate, ...],
) -> List[Partial]:
    for compiled in residuals:
        if not partials:
            break
        partials = [p for p in partials if compiled(p[1])]
    return partials
