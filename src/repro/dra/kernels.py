"""Columnar Z-set kernels: batch evaluation of truth-table terms.

The row evaluator (:mod:`repro.dra.terms`) interprets one partial at a
time: every attach is two tuple appends per output row, every residual
a per-row closure call, every projection a per-row generator. That is
the textbook interpreted-IVM shape DBToaster and DBSP showed you can
beat by an order of magnitude — not with different algebra but by
compiling the maintenance program into per-update *kernels* that sweep
whole batches.

This module is that compilation step for the DRA. A term's data lives
in a :class:`ColumnBatch` — struct-of-arrays: one tid column and one
values column per attachment slot plus a signed-weight vector — and a
:class:`TermKernel` (compiled once per ``(substituted set, seed)`` from
the existing :class:`~repro.dra.prepared.TermPlan`, memoized on the
prepared CQ) executes a flat list of kernel calls:

* **seed** — the delta operand's signed rows, exposed zero-copy as the
  batch's first slot (:meth:`repro.dra.operands.DeltaOperand.columns`);
* **filter** — batched residual application. Comparison conjuncts over
  column refs and literals specialize to single- or two-column index
  selectors (``[i for i, row in enumerate(col) if ...]``); anything
  else falls back to the row-compiled predicate over zipped slot
  columns. A stage that keeps everything returns the batch unchanged;
* **attach** — hash-join probe building output columns by index-gather:
  one ``gather`` list of source row indexes drives
  ``[col[i] for i in gather]`` per existing column, and the attached
  slot's columns are appended fresh. Base probes memoize per *distinct*
  key within the call, so fan-out joins pay one probe per key instead
  of one per row;
* **accumulate** — fused projection + signed sum straight into the
  execution-wide weights dict: projection columns are gathered by
  ``(slot, position)`` and zipped into output tuples, composite result
  tids by zipping permuted tid columns.

Any stage that empties the batch short-circuits the term. Kernel-level
observability is accumulated locally (one
``kernel_calls``/``kernel_rows`` flush per execution, never per row)
and each kernel call gets a ``dra.kernel`` span when tracing is on.

Columnar output is bit-identical to the row evaluator by construction
(same operand indexes, same NULL semantics, same weights algebra);
``tests/dra/test_kernels_property.py`` holds that equivalence under
randomized schemas, updates, and plans.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import Comparison, _SWAPPED as _SWAP
from repro.relational.relation import Tid, Values

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

# Kernel kinds, used for span/debug labels.
SEED = "seed"
FILTER = "filter"
ATTACH_DELTA = "attach_delta"
ATTACH_BASE = "attach_base"
ACCUMULATE = "accumulate"


class ColumnBatch:
    """Struct-of-arrays partials of one term evaluation.

    ``tids[slot]`` / ``vals[slot]`` are parallel per-slot columns (one
    tid, one values tuple per row), ``weights`` the signed-weight
    vector. Columns are append-only and shared freely between batches:
    kernels build new outer lists but never mutate a column in place,
    which is what lets the seed kernel expose the delta operand's
    cached columns zero-copy.
    """

    __slots__ = ("tids", "vals", "weights")

    def __init__(
        self,
        tids: List[List[Tid]],
        vals: List[List[Values]],
        weights: List[int],
    ):
        self.tids = tids
        self.vals = vals
        self.weights = weights

    def __len__(self) -> int:
        return len(self.weights)

    def __repr__(self) -> str:
        return (
            f"ColumnBatch({len(self.tids)} slots, {len(self.weights)} rows)"
        )


class KernelStats:
    """Local accumulator for kernel observability — one metrics flush
    per execution instead of one count per kernel call (let alone per
    row)."""

    __slots__ = ("calls", "rows")

    def __init__(self):
        self.calls = 0
        self.rows = 0

    def add(self, calls: int, rows: int) -> None:
        self.calls += calls
        self.rows += rows


# A kernel: (batch, delta_operands, base_operands) -> batch. The seed
# kernel ignores its (None) input batch.
Kernel = Callable[
    [Optional[ColumnBatch], Dict[str, Any], Dict[str, Any]], ColumnBatch
]


def _make_seed(alias: str) -> Kernel:
    def kernel(batch, delta_operands, base_operands):
        tids, vals, weights = delta_operands[alias].columns()
        return ColumnBatch([tids], [vals], weights)

    return kernel


def _classify(expr, plan):
    """``("col", slot, position)`` / ``("lit", value)`` / None."""
    if isinstance(expr, ColumnRef):
        return ("col",) + plan.resolve(expr)
    if isinstance(expr, Literal):
        return ("lit", expr.value)
    return None


def _make_selector(pred, row_compiled, plan) -> Callable[[ColumnBatch], List[int]]:
    """A whole-batch selector returning the kept row indexes.

    Comparisons over column refs/literals specialize to direct column
    sweeps with SQL NULL semantics (NULL compares false); everything
    else runs the row-compiled predicate over zipped slot columns —
    the zipped tuple-of-rows *is* the slot-indexed env the closure was
    compiled against.
    """
    if isinstance(pred, Comparison) and pred.op in _OPS:
        op = _OPS[pred.op]
        left = _classify(pred.left, plan)
        right = _classify(pred.right, plan)
        if left and right:
            if left[0] == "col" and right[0] == "lit":
                __, s, p = left
                const = right[1]

                def select(batch, _s=s, _p=p, _c=const, _op=op):
                    if _c is None:
                        return []
                    return [
                        i
                        for i, row in enumerate(batch.vals[_s])
                        if (v := row[_p]) is not None and _op(v, _c)
                    ]

                return select
            if left[0] == "lit" and right[0] == "col":
                const = left[1]
                __, s, p = right

                def select(batch, _s=s, _p=p, _c=const, _op=op):
                    if _c is None:
                        return []
                    return [
                        i
                        for i, row in enumerate(batch.vals[_s])
                        if (v := row[_p]) is not None and _op(_c, v)
                    ]

                return select
            if left[0] == "col" and right[0] == "col":
                __, s1, p1 = left
                __, s2, p2 = right

                if s1 == s2:

                    def select(batch, _s=s1, _p1=p1, _p2=p2, _op=op):
                        return [
                            i
                            for i, row in enumerate(batch.vals[_s])
                            if (a := row[_p1]) is not None
                            and (b := row[_p2]) is not None
                            and _op(a, b)
                        ]

                else:

                    def select(batch, _s1=s1, _p1=p1, _s2=s2, _p2=p2, _op=op):
                        return [
                            i
                            for i, (ra, rb) in enumerate(
                                zip(batch.vals[_s1], batch.vals[_s2])
                            )
                            if (a := ra[_p1]) is not None
                            and (b := rb[_p2]) is not None
                            and _op(a, b)
                        ]

                return select

    def select(batch, _pred=row_compiled):
        return [i for i, env in enumerate(zip(*batch.vals)) if _pred(env)]

    return select


def _make_filter(pred, row_compiled, plan) -> Kernel:
    selector = _make_selector(pred, row_compiled, plan)

    def kernel(batch, delta_operands, base_operands):
        keep = selector(batch)
        if len(keep) == len(batch.weights):
            return batch
        weights = batch.weights
        return ColumnBatch(
            [[c[i] for i in keep] for c in batch.tids],
            [[c[i] for i in keep] for c in batch.vals],
            [weights[i] for i in keep],
        )

    return kernel


def _make_grouper(
    sources: Tuple[Tuple[int, int], ...]
) -> Callable[[ColumnBatch], Dict[Tuple, List[int]]]:
    """One-pass ``{join key: [row indexes]}`` grouping of a batch.

    Fuses key extraction with grouping (no intermediate key list); keys
    stay tuples because probe sources are keyed by tuples.
    """
    if len(sources) == 1:
        ((s, p),) = sources

        def group(batch, _s=s, _p=p):
            groups: Dict[Tuple, List[int]] = {}
            get = groups.get
            for i, row in enumerate(batch.vals[_s]):
                key = (row[_p],)
                lst = get(key)
                if lst is None:
                    groups[key] = [i]
                else:
                    lst.append(i)
            return groups

    else:
        slots = tuple(s for s, __ in sources)
        poss = tuple(p for __, p in sources)

        def group(batch, _slots=slots, _poss=poss):
            groups: Dict[Tuple, List[int]] = {}
            get = groups.get
            cols = [batch.vals[s] for s in _slots]
            for i, rows in enumerate(zip(*cols)):
                key = tuple(row[p] for row, p in zip(rows, _poss))
                lst = get(key)
                if lst is None:
                    groups[key] = [i]
                else:
                    lst.append(i)
            return groups

    return group


def _extend(
    batch: ColumnBatch,
    gather: List[int],
    new_tids: List[Tid],
    new_vals: List[Values],
    out_weights: List[int],
) -> ColumnBatch:
    """Index-gather the existing columns through ``gather`` and append
    the freshly attached slot."""
    tids = [[c[i] for i in gather] for c in batch.tids]
    vals = [[c[i] for i in gather] for c in batch.vals]
    tids.append(new_tids)
    vals.append(new_vals)
    return ColumnBatch(tids, vals, out_weights)


def _make_attach_delta(step) -> Kernel:
    alias = step.alias
    positions = step.key_positions
    if positions:
        grouper = _make_grouper(step.key_sources)

        def kernel(batch, delta_operands, base_operands):
            buckets = delta_operands[alias].index_on(positions)
            bucket_get = buckets.get
            src_w = batch.weights
            gather: List[int] = []
            new_tids: List[Tid] = []
            new_vals: List[Values] = []
            out_w: List[int] = []
            ge, te, ve, we = (
                gather.extend,
                new_tids.extend,
                new_vals.extend,
                out_w.extend,
            )
            # Group-by-key: the per-output-row work is list extension
            # and repetition at C speed, one Python iteration per
            # (distinct key, bucket row) pair instead of per output row.
            for key, idxs in grouper(batch).items():
                bucket = bucket_get(key)
                if not bucket:
                    continue
                n = len(idxs)
                w_g = [src_w[i] for i in idxs]
                for tid, values, w in bucket:
                    ge(idxs)
                    te([tid] * n)
                    ve([values] * n)
                    we([w0 * w for w0 in w_g] if w != 1 else w_g)
            return _extend(batch, gather, new_tids, new_vals, out_w)

    else:

        def kernel(batch, delta_operands, base_operands):
            rows = delta_operands[alias].rows
            gather: List[int] = []
            new_tids: List[Tid] = []
            new_vals: List[Values] = []
            out_w: List[int] = []
            if rows:
                n = len(rows)
                row_tids = [t for t, __, __ in rows]
                row_vals = [v for __, v, __ in rows]
                row_ws = [w for __, __, w in rows]
                for i, w0 in enumerate(batch.weights):
                    gather.extend([i] * n)
                    new_tids.extend(row_tids)
                    new_vals.extend(row_vals)
                    out_w.extend(
                        row_ws if w0 == 1 else [w0 * w for w in row_ws]
                    )
            return _extend(batch, gather, new_tids, new_vals, out_w)

    return kernel


def _make_attach_base(step) -> Kernel:
    alias = step.alias
    positions = step.key_positions
    if positions:
        grouper = _make_grouper(step.key_sources)

        def kernel(batch, delta_operands, base_operands):
            groups = grouper(batch)
            # One probe per distinct key of the whole batch: fan-out
            # joins (many partials sharing a key) pay |keys| probes,
            # not |rows|.
            matches_for = base_operands[alias].probe_batch(
                positions, groups.keys()
            )
            if not matches_for:
                return _extend(batch, [], [], [], [])
            src_w = batch.weights
            gather: List[int] = []
            new_tids: List[Tid] = []
            new_vals: List[Values] = []
            out_w: List[int] = []
            ge, te, ve, we = (
                gather.extend,
                new_tids.extend,
                new_vals.extend,
                out_w.extend,
            )
            get = matches_for.get
            for key, idxs in groups.items():
                matches = get(key)
                if not matches:
                    continue
                n = len(idxs)
                w_g = [src_w[i] for i in idxs]
                for tid, values in matches:
                    ge(idxs)
                    te([tid] * n)
                    ve([values] * n)
                    we(w_g)
            return _extend(batch, gather, new_tids, new_vals, out_w)

    else:

        def kernel(batch, delta_operands, base_operands):
            rows = base_operands[alias].scan()
            gather: List[int] = []
            new_tids: List[Tid] = []
            new_vals: List[Values] = []
            out_w: List[int] = []
            if rows:
                n = len(rows)
                row_tids = [t for t, __ in rows]
                row_vals = [v for __, v in rows]
                for i, w0 in enumerate(batch.weights):
                    gather.extend([i] * n)
                    new_tids.extend(row_tids)
                    new_vals.extend(row_vals)
                    out_w.extend([w0] * n)
            return _extend(batch, gather, new_tids, new_vals, out_w)

    return kernel


def _fuse_step_residuals(step, plan):
    """Classify a base attach's residuals for fusion into the attach.

    Returns ``(pair, match_pre)`` when every residual of the step is a
    simple comparison involving the newly attached slot:

    * ``pair`` — at most one cross-slot comparison ``(batch_slot,
      batch_pos, match_pos, op)``, oriented so it reads
      ``op(batch_value, match_value)`` and evaluated per (batch row,
      probe match) pair during attachment;
    * ``match_pre`` — ``(match_pos, op, const)`` prefilters that depend
      on the attached rows alone, applied once per distinct join key.

    Returns ``None`` when any residual falls outside those shapes (or a
    second cross-slot comparison appears); the compiler then keeps the
    plain attach followed by filter stages.
    """
    new_slot = plan.slots[step.alias]
    pair = None
    match_pre = []
    for pred in step.residual_preds:
        if not (isinstance(pred, Comparison) and pred.op in _OPS):
            return None
        left = _classify(pred.left, plan)
        right = _classify(pred.right, plan)
        if not left or not right:
            return None
        op_name = pred.op
        if left[0] == "lit" and right[0] == "col":
            left, right, op_name = right, left, _SWAP[op_name]
        if left[0] == "col" and right[0] == "lit":
            if left[1] != new_slot or right[1] is None:
                return None  # batch-side or null literal: keep filter
            match_pre.append((left[2], _OPS[op_name], right[1]))
            continue
        if left[0] == "col" and right[0] == "col":
            if left[1] == new_slot and right[1] != new_slot:
                left, right, op_name = right, left, _SWAP[op_name]
            if left[1] == new_slot or right[1] != new_slot or pair is not None:
                return None
            pair = (left[1], left[2], right[2], _OPS[op_name])
            continue
        return None
    return pair, tuple(match_pre)


def _prefilter_matches(matches, pre):
    """Apply ``(match_pos, op, const)`` prefilters to probe matches."""
    if len(pre) == 1:
        ((p, op, c),) = pre
        return [tv for tv in matches if (x := tv[1][p]) is not None and op(x, c)]
    out = matches
    for p, op, c in pre:
        out = [tv for tv in out if (x := tv[1][p]) is not None and op(x, c)]
    return out


def _make_attach_base_fused(step, plan, pair, match_pre) -> Kernel:
    """Base attach with the step's residuals fused into match selection.

    Rejected (row, match) pairs are never extended into the output
    columns, so the pre-residual fan-out is never materialized and the
    separate selector + compaction passes disappear. The pair condition
    iterates whichever side of each group is smaller and sweeps the
    other in a comprehension.
    """
    alias = step.alias
    positions = step.key_positions
    grouper = _make_grouper(step.key_sources)
    if pair is not None:
        b_slot, b_pos, m_pos, pair_op = pair

    def kernel(batch, delta_operands, base_operands):
        groups = grouper(batch)
        matches_for = base_operands[alias].probe_batch(
            positions, groups.keys()
        )
        src_w = batch.weights
        gather: List[int] = []
        new_tids: List[Tid] = []
        new_vals: List[Values] = []
        out_w: List[int] = []
        if matches_for:
            ge, te, ve, we = (
                gather.extend,
                new_tids.extend,
                new_vals.extend,
                out_w.extend,
            )
            get = matches_for.get
            bcol = batch.vals[b_slot] if pair is not None else None
            for key, idxs in groups.items():
                matches = get(key)
                if not matches:
                    continue
                if match_pre:
                    matches = _prefilter_matches(matches, match_pre)
                    if not matches:
                        continue
                if pair is None:
                    n = len(idxs)
                    w_g = [src_w[i] for i in idxs]
                    for tid, values in matches:
                        ge(idxs)
                        te([tid] * n)
                        ve([values] * n)
                        we(w_g)
                elif len(matches) <= len(idxs):
                    for tid, values in matches:
                        y = values[m_pos]
                        if y is None:
                            continue
                        sel = [
                            i
                            for i in idxs
                            if (x := bcol[i][b_pos]) is not None
                            and pair_op(x, y)
                        ]
                        if sel:
                            n = len(sel)
                            ge(sel)
                            te([tid] * n)
                            ve([values] * n)
                            we([src_w[i] for i in sel])
                else:
                    for i in idxs:
                        x = bcol[i][b_pos]
                        if x is None:
                            continue
                        sel = [
                            tv
                            for tv in matches
                            if (y := tv[1][m_pos]) is not None
                            and pair_op(x, y)
                        ]
                        if sel:
                            n = len(sel)
                            ge([i] * n)
                            te([tv[0] for tv in sel])
                            ve([tv[1] for tv in sel])
                            we([src_w[i]] * n)
        return _extend(batch, gather, new_tids, new_vals, out_w)

    return kernel


def _make_accumulate(plan):
    """Fused project + signed-sum into the execution-wide weights dict.

    Returns ``(batch, weights) -> rows accumulated``.
    """
    refs = plan.project_refs
    perm = plan.tid_perm
    row_project = plan.project

    def accumulate(batch: ColumnBatch, weights: Dict) -> int:
        n = len(batch.weights)
        if not n:
            return 0
        if refs is not None:
            if refs:
                cols = [[row[p] for row in batch.vals[s]] for s, p in refs]
                vals_iter = zip(*cols)
            else:
                vals_iter = iter([()] * n)
        else:
            vals_iter = (row_project(env) for env in zip(*batch.vals))
        if perm is None:
            tid_iter = iter(batch.tids[0])
        else:
            tid_iter = zip(*(batch.tids[i] for i in perm))
        get = weights.get
        pop = weights.pop
        # The inner zip materializes each (result tid, values) key
        # tuple at C level; no per-row unpack-and-repack in bytecode.
        for key, w in zip(zip(tid_iter, vals_iter), batch.weights):
            total = get(key, 0) + w
            if total:
                weights[key] = total
            else:
                pop(key, None)
        return n

    return accumulate


class TermKernel:
    """The compiled kernel pipeline of one truth-table term."""

    __slots__ = ("plan", "ops", "_accumulate")

    def __init__(self, plan, ops, accumulate_fn):
        self.plan = plan
        #: ``(kind, alias, kernel)`` triples, in execution order.
        self.ops = ops
        self._accumulate = accumulate_fn

    def execute(
        self,
        delta_operands: Dict[str, Any],
        base_operands: Dict[str, Any],
        weights: Dict,
        stats: Optional[KernelStats] = None,
        tracer=None,
    ) -> int:
        """Run the pipeline, accumulating into ``weights``; returns the
        number of candidate rows produced (pre-accumulation), exactly
        the row evaluator's ``len(entries)``."""
        trace = tracer is not None and tracer.enabled
        calls = 0
        rows = 0
        batch: Optional[ColumnBatch] = None
        for kind, alias, fn in self.ops:
            rows_in = len(batch.weights) if batch is not None else 0
            if trace:
                with tracer.span(
                    "dra.kernel", kernel=kind, alias=alias
                ) as span:
                    batch = fn(batch, delta_operands, base_operands)
                    span.set(rows_in=rows_in, rows_out=len(batch.weights))
            else:
                batch = fn(batch, delta_operands, base_operands)
            calls += 1
            # Rows swept by this call: the input batch (the seed sweeps
            # what it materializes).
            rows += rows_in if kind != SEED else len(batch.weights)
            if not batch.weights:
                if stats is not None:
                    stats.add(calls, rows)
                return 0
        produced = len(batch.weights)
        calls += 1
        rows += produced
        if trace:
            with tracer.span(
                "dra.kernel", kernel=ACCUMULATE, alias=self.plan.seed
            ) as span:
                self._accumulate(batch, weights)
                span.set(rows_in=produced, rows_out=produced)
        else:
            self._accumulate(batch, weights)
        if stats is not None:
            stats.add(calls, rows)
        return produced

    def __repr__(self) -> str:
        kinds = "→".join(kind for kind, __, __ in self.ops)
        return f"TermKernel({kinds}→{ACCUMULATE})"


def compile_term_kernel(plan) -> TermKernel:
    """Specialize the kernel pipeline of one term from its prepared
    :class:`~repro.dra.prepared.TermPlan`."""
    ops: List[Tuple[str, str, Kernel]] = [(SEED, plan.seed, _make_seed(plan.seed))]
    for compiled, pred in zip(plan.seed_residuals, plan.seed_residual_preds):
        ops.append((FILTER, plan.seed, _make_filter(pred, compiled, plan)))
    for step in plan.steps:
        if step.is_delta:
            ops.append((ATTACH_DELTA, step.alias, _make_attach_delta(step)))
        elif (
            step.residuals
            and step.key_positions
            and len(step.residuals) == len(step.residual_preds)
            and (fused := _fuse_step_residuals(step, plan)) is not None
        ):
            # All residuals of this step fuse into the attach: skip the
            # filter stages entirely.
            pair, match_pre = fused
            ops.append(
                (
                    ATTACH_BASE,
                    step.alias,
                    _make_attach_base_fused(step, plan, pair, match_pre),
                )
            )
            continue
        else:
            ops.append((ATTACH_BASE, step.alias, _make_attach_base(step)))
        for compiled, pred in zip(step.residuals, step.residual_preds):
            ops.append((FILTER, step.alias, _make_filter(pred, compiled, plan)))
    return TermKernel(plan, tuple(ops), _make_accumulate(plan))
