"""Irrelevant-update detection (paper Section 5.2).

"We should test the CQ condition based on the differential updates
before every execution. If the updates ... have no impact on the
previous query result set, we consider them as irrelevant updates to
the continual query" — in which case nothing is computed and nothing
is sent.

An update to operand relation R_i is *irrelevant* to a query when
neither its old nor its new side satisfies the query's local predicate
on R_i: such a tuple was outside the relevant slice of R_i before and
after, so no term of the expansion can produce a result change from it.
(This is a sound but conservative test: updates that pass it may still
produce no result change once join partners are considered — DRA then
returns an empty delta.)
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.relational.algebra import SPJQuery
from repro.relational.binding import SingleRowBinder
from repro.relational.planning import plan_predicate
from repro.relational.predicates import TruePredicate
from repro.relational.schema import Schema
from repro.delta.differential import DeltaRelation


def relevant_entry_counts(
    query: SPJQuery,
    scopes: Mapping[str, Schema],
    deltas: Mapping[str, DeltaRelation],
) -> Dict[str, Tuple[int, int]]:
    """Per alias: (relevant entries, total entries) of its delta."""
    plan = plan_predicate(query.predicate, scopes)
    out: Dict[str, Tuple[int, int]] = {}
    for ref in query.relations:
        delta = deltas.get(ref.table)
        if delta is None or delta.is_empty():
            continue
        local = plan.local_predicate(ref.alias)
        if isinstance(local, TruePredicate):
            out[ref.alias] = (len(delta), len(delta))
            continue
        compiled = local.compile(SingleRowBinder(delta.schema, ref.alias))
        relevant = 0
        for entry in delta:
            old_in = entry.old is not None and compiled(entry.old)
            new_in = entry.new is not None and compiled(entry.new)
            if old_in or new_in:
                relevant += 1
        out[ref.alias] = (relevant, len(delta))
    return out


def is_relevant(
    query: SPJQuery,
    scopes: Mapping[str, Schema],
    deltas: Mapping[str, DeltaRelation],
) -> bool:
    """True if at least one update could affect the query result."""
    counts = relevant_entry_counts(query, scopes, deltas)
    return any(relevant for relevant, __ in counts.values())
