"""Compile-once preparation of continual queries.

A continual query is registered once and re-evaluated on every trigger
firing — thousands of times over its lifetime (paper Section 3.1). The
interpreted :func:`~repro.dra.algorithm.dra_execute` re-derived the
predicate plan, the compiled local/residual predicates, the output
schema, and the projection on *every* firing; for small deltas that
planning overhead dominates the actual differential work. This module
moves all of it to registration time:

* :class:`PreparedCQ` — everything about one SPJ query that does not
  depend on which operands changed: scopes, output schema, the
  :class:`~repro.relational.planning.PredicatePlan`, per-alias compiled
  local predicates, the constant-conjunct gate, and memo tables for
  truth-table rows and per-term attachment plans;
* :class:`TermPlan` — the fully resolved evaluation recipe of one
  truth-table term given its substituted set and seed operand: the
  attachment order, each step's join-key positions and key sources as
  flat ``(slot, position)`` pairs, residual predicates compiled against
  slot-indexed environments, and the slot-based projection. Partial
  results become append-only tuple builds — no per-row dict copies;
* :func:`prepare_cq` — the entry point; optionally auto-creates
  missing single-column hash indexes on join columns so base operands
  probe instead of degrading to transient scans;
* :class:`PlanCache` — a keyed cache of prepared plans with staleness
  validation (table schema identity + index-set version), used by
  :class:`~repro.core.manager.CQManager` (keyed by CQ name) and
  :class:`~repro.net.server.CQServer` (keyed by query SQL).

The attachment order within a term depends only on (substituted set,
seed alias) — the seed itself is the only runtime decision, refined by
delta cardinalities at each firing — so term plans are memoized and
every compile amortizes to zero across refreshes.
"""

from __future__ import annotations

from threading import Lock
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import NoSuchTableError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.binding import EnvBinder, SingleRowBinder
from repro.relational.evaluate import expand_star, spj_output_schema
from repro.relational.expressions import Binder, ColumnRef, Compiled
from repro.relational.planning import PredicatePlan, plan_predicate
from repro.relational.predicates import (
    CompiledPredicate,
    TruePredicate,
    comparison_specs,
)
from repro.relational.schema import Schema
from repro.storage.database import Database
from repro.dra.truth_table import TruthTable


class SlotBinder(Binder):
    """Binds column refs against slot-indexed environments.

    A prepared term carries its partial rows as flat tuples in
    attachment order; the environment of a compiled predicate or
    projection is that tuple, and an accessor is two tuple indexes —
    ``env[slot][position]`` — with both resolved at prepare time.
    """

    def __init__(self, env_binder: EnvBinder, slots: Dict[str, int]):
        self._env = env_binder
        self._slots = dict(slots)

    def accessor(self, ref: ColumnRef) -> Compiled:
        alias, position = self._env.resolve(ref)
        slot = self._slots[alias]
        return lambda env: env[slot][position]

    def type_of(self, ref: ColumnRef):
        return self._env.type_of(ref)


class AttachStep:
    """One operand attachment in a term plan.

    ``key_positions`` are the join-key positions inside the attached
    relation (empty = cross product); ``key_sources`` are the matching
    ``(slot, position)`` pairs into the partial tuple built so far;
    ``residuals`` are the slot-compiled residual conjuncts that become
    fully bound once this operand is attached. ``residual_preds`` keeps
    the matching predicate ASTs (parallel to ``residuals``) so the
    columnar kernel compiler (:mod:`repro.dra.kernels`) can specialize
    whole-column selectors instead of calling the row closures.
    """

    __slots__ = (
        "alias",
        "is_delta",
        "key_positions",
        "key_sources",
        "residuals",
        "residual_preds",
    )

    def __init__(
        self,
        alias: str,
        is_delta: bool,
        key_positions: Tuple[int, ...],
        key_sources: Tuple[Tuple[int, int], ...],
        residuals: Tuple[CompiledPredicate, ...],
        residual_preds: Tuple = (),
    ):
        self.alias = alias
        self.is_delta = is_delta
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.residuals = residuals
        self.residual_preds = residual_preds

    def __repr__(self) -> str:
        kind = "Δ" if self.is_delta else "R"
        return f"AttachStep({kind}{self.alias}, keys={self.key_positions})"


class TermPlan:
    """The resolved evaluation recipe of one truth-table term.

    Beyond the row-path closures, the plan retains what the columnar
    compiler needs to specialize whole-batch kernels: the predicate
    ASTs of every residual stage, the final alias→slot layout plus the
    env binder (so a :class:`~repro.relational.expressions.ColumnRef`
    resolves to ``(slot, position)``), and — when every output column
    is a plain column reference, which SQL-parsed SPJ select lists
    guarantee — the projection as pure ``(slot, position)`` gathers.
    """

    __slots__ = (
        "seed",
        "seed_residuals",
        "seed_residual_preds",
        "steps",
        "project",
        "project_refs",
        "tid_perm",
        "slots",
        "_env_binder",
    )

    def __init__(
        self,
        seed: str,
        seed_residuals: Tuple[CompiledPredicate, ...],
        steps: Tuple[AttachStep, ...],
        project: Callable[[Tuple], Tuple],
        tid_perm: Optional[Tuple[int, ...]],
        seed_residual_preds: Tuple = (),
        project_refs: Optional[Tuple[Tuple[int, int], ...]] = None,
        slots: Optional[Dict[str, int]] = None,
        env_binder: Optional[EnvBinder] = None,
    ):
        self.seed = seed
        self.seed_residuals = seed_residuals
        self.seed_residual_preds = seed_residual_preds
        self.steps = steps
        self.project = project
        #: ``(slot, position)`` per output column when the projection is
        #: pure column refs, else ``None`` (columnar falls back to the
        #: row projection closure over zipped envs).
        self.project_refs = project_refs
        #: Slot permutation mapping query-alias order to slots, or
        #: ``None`` for single-relation queries (ctid = the base tid).
        self.tid_perm = tid_perm
        self.slots = slots or {seed: 0}
        self._env_binder = env_binder

    def resolve(self, ref: ColumnRef) -> Tuple[int, int]:
        """Resolve a column ref to ``(slot, position)`` in this plan's
        final slot layout (slots only grow during attachment, so the
        final layout is valid for every residual stage)."""
        alias, position = self._env_binder.resolve(ref)
        return self.slots[alias], position

    def __repr__(self) -> str:
        return f"TermPlan(seed={self.seed!r}, steps={list(self.steps)})"


def _pick_next(
    remaining: List[str],
    substituted: FrozenSet[str],
    bound: Set[str],
    plan: PredicatePlan,
) -> str:
    """Default attachment order: connected deltas, connected bases,
    then unconnected deltas (small cross products) before unconnected
    bases — identical to the interpreted evaluator's choice."""

    def priority(alias: str) -> int:
        connected = bool(plan.edges_between(bound, alias))
        is_delta = alias in substituted
        if connected and is_delta:
            return 0
        if connected:
            return 1
        if is_delta:
            return 2
        return 3

    return min(remaining, key=lambda a: (priority(a), remaining.index(a)))


class PreparedCQ:
    """A continual query compiled once, at registration time.

    Execution-invariant state only: nothing here depends on which
    tables changed or on delta contents. The per-term attachment plans
    and truth tables are memoized lazily (keyed by changed/substituted
    sets), so even the first few refreshes after registration finish
    populating every cache and later refreshes compile nothing at all.
    """

    __slots__ = (
        "query",
        "scopes",
        "out_schema",
        "plan",
        "never_matches",
        "compiled_local",
        "local_specs",
        "table_for_alias",
        "_schemas",
        "_index_versions",
        "_env_binder",
        "_term_plans",
        "_term_kernels",
        "_truth_tables",
    )

    def __init__(
        self,
        query: SPJQuery,
        scopes: Dict[str, Schema],
        out_schema: Schema,
        plan: PredicatePlan,
        never_matches: bool,
        compiled_local: Dict[str, Optional[CompiledPredicate]],
        table_for_alias: Dict[str, str],
        schemas: Dict[str, Schema],
        index_versions: Dict[str, int],
        local_specs: Optional[Dict[str, Optional[Tuple]]] = None,
    ):
        self.query = query
        self.scopes = scopes
        self.out_schema = out_schema
        self.plan = plan
        #: True when a constant conjunct is false: the result (and so
        #: every delta) is empty at every execution.
        self.never_matches = never_matches
        self.compiled_local = compiled_local
        #: Per-alias flat ``((position, op, constant), ...)`` specs for
        #: local predicates that are simple comparison conjunctions —
        #: what the batch probe filters inline instead of calling the
        #: compiled closure per row. ``None`` where not specializable.
        self.local_specs = local_specs or {}
        self.table_for_alias = table_for_alias
        self._schemas = schemas
        self._index_versions = index_versions
        self._env_binder = EnvBinder(scopes)
        self._term_plans: Dict[Tuple[FrozenSet[str], str], TermPlan] = {}
        self._term_kernels: Dict[Tuple[FrozenSet[str], str], object] = {}
        self._truth_tables: Dict[Tuple[str, ...], TruthTable] = {}

    # -- staleness ---------------------------------------------------------

    def is_valid(self, db: Database) -> bool:
        """True while the plan's schema/index assumptions still hold.

        A dropped table, a replaced schema object, or any index added
        to an operand table since preparation invalidates the plan (a
        new index can change probe strategies, so the safe reaction is
        to re-prepare).
        """
        for name, schema in self._schemas.items():
            try:
                table = db.table(name)
            except NoSuchTableError:
                return False
            if table.schema is not schema:
                return False
            if table.indexes.version != self._index_versions[name]:
                return False
        return True

    # -- truth table -------------------------------------------------------

    def truth_table(self, changed: Tuple[str, ...]) -> TruthTable:
        table = self._truth_tables.get(changed)
        if table is None:
            table = TruthTable(self.query.aliases, changed)
            self._truth_tables[changed] = table
        return table

    def truth_rows(self, changed: Tuple[str, ...]) -> Tuple[FrozenSet[str], ...]:
        return self.truth_table(changed).rows_tuple()

    # -- term plans --------------------------------------------------------

    def term_plan(self, substituted: FrozenSet[str], seed: str) -> TermPlan:
        """The attachment plan for one term, memoized by (substituted
        set, seed alias) — the only inputs the order depends on."""
        key = (substituted, seed)
        cached = self._term_plans.get(key)
        if cached is None:
            cached = self._build_term_plan(substituted, seed)
            self._term_plans[key] = cached
        return cached

    def term_kernel(self, substituted: FrozenSet[str], seed: str):
        """The columnar kernel pipeline for one term, memoized with the
        same key as :meth:`term_plan` (compiled lazily from it)."""
        key = (substituted, seed)
        cached = self._term_kernels.get(key)
        if cached is None:
            from repro.dra.kernels import compile_term_kernel

            cached = compile_term_kernel(self.term_plan(substituted, seed))
            self._term_kernels[key] = cached
        return cached

    def _build_term_plan(
        self, substituted: FrozenSet[str], seed: str
    ) -> TermPlan:
        plan = self.plan
        aliases = self.query.aliases
        slots: Dict[str, int] = {seed: 0}
        bound: Set[str] = {seed}
        applied: Set[int] = set()
        seed_residuals, seed_preds = self._ready_residuals(
            bound, applied, slots
        )

        steps: List[AttachStep] = []
        remaining = [a for a in aliases if a != seed]
        while remaining:
            alias = _pick_next(remaining, substituted, bound, plan)
            remaining.remove(alias)
            edges = plan.edges_between(bound, alias)
            key_positions = tuple(e.position_for(alias) for e in edges)
            key_sources = tuple(
                (slots[e.other(alias)], e.position_for(e.other(alias)))
                for e in edges
            )
            slots[alias] = len(slots)
            bound.add(alias)
            residuals, residual_preds = self._ready_residuals(
                bound, applied, slots
            )
            steps.append(
                AttachStep(
                    alias,
                    alias in substituted,
                    key_positions,
                    key_sources,
                    residuals,
                    residual_preds,
                )
            )

        project, project_refs = self._compile_projection(slots)
        tid_perm = (
            None
            if len(aliases) == 1
            else tuple(slots[alias] for alias in aliases)
        )
        return TermPlan(
            seed,
            seed_residuals,
            tuple(steps),
            project,
            tid_perm,
            seed_residual_preds=seed_preds,
            project_refs=project_refs,
            slots=slots,
            env_binder=self._env_binder,
        )

    def _ready_residuals(
        self, bound: Set[str], applied: Set[int], slots: Dict[str, int]
    ) -> Tuple[Tuple[CompiledPredicate, ...], Tuple]:
        """Residual conjuncts that became fully bound, compiled against
        the slot layout at this point of the attachment order, plus the
        matching predicate ASTs for the columnar compiler."""
        out = []
        preds = []
        binder = None
        for index, pred in self.plan.residual_ready(bound, applied):
            applied.add(index)
            if not self.plan.residual[index][1]:
                continue  # constant conjunct, gated by never_matches
            if binder is None:
                binder = SlotBinder(self._env_binder, slots)
            out.append(pred.compile(binder))
            preds.append(pred)
        return tuple(out), tuple(preds)

    def _compile_projection(
        self, slots: Dict[str, int]
    ) -> Tuple[Callable[[Tuple], Tuple], Optional[Tuple[Tuple[int, int], ...]]]:
        binder = SlotBinder(self._env_binder, slots)
        columns = expand_star(self.query, self.scopes)
        accessors = [column.ref.compile(binder) for column in columns]

        def project(env: Tuple) -> Tuple:
            return tuple(fn(env) for fn in accessors)

        refs: Optional[List[Tuple[int, int]]] = []
        for column in columns:
            if refs is None or not isinstance(column.ref, ColumnRef):
                refs = None
                break
            alias, position = self._env_binder.resolve(column.ref)
            refs.append((slots[alias], position))

        return project, (tuple(refs) if refs is not None else None)

    def __repr__(self) -> str:
        return (
            f"PreparedCQ({self.query.to_sql()!r}, "
            f"{len(self._term_plans)} term plans)"
        )


def prepare_cq(
    query: SPJQuery,
    db: Database,
    metrics: Optional[Metrics] = None,
    auto_index: bool = True,
) -> PreparedCQ:
    """Compile ``query`` against ``db``'s current catalog.

    With ``auto_index`` (the registration-time default), missing
    single-column hash indexes on join columns are created before the
    plan captures index versions, so base operands probe in O(1)
    instead of silently degrading to per-execution transient scans.
    One-shot callers (baselines, ``python -m repro``) prepare with
    ``auto_index=False`` and mutate nothing.
    """
    scopes = {ref.alias: db.table(ref.table).schema for ref in query.relations}
    out_schema = spj_output_schema(query, scopes)
    plan = plan_predicate(query.predicate, scopes, metrics)

    never_matches = False
    empty_binder = EnvBinder({})
    for pred, aliases in plan.residual:
        if not aliases and not pred.compile(empty_binder)({}):
            never_matches = True
            break

    compiled_local: Dict[str, Optional[CompiledPredicate]] = {}
    local_specs: Dict[str, Optional[Tuple]] = {}
    table_for_alias: Dict[str, str] = {}
    for ref in query.relations:
        table_for_alias[ref.alias] = ref.table
        local = plan.local_predicate(ref.alias)
        if isinstance(local, TruePredicate):
            compiled_local[ref.alias] = None
            local_specs[ref.alias] = None
        else:
            compiled_local[ref.alias] = local.compile(
                SingleRowBinder(scopes[ref.alias], ref.alias)
            )
            local_specs[ref.alias] = comparison_specs(
                local, scopes[ref.alias], ref.alias
            )

    if auto_index:
        for edge in plan.edges:
            for alias, position in (
                (edge.left_alias, edge.left_pos),
                (edge.right_alias, edge.right_pos),
            ):
                table = db.table(table_for_alias[alias])
                if table.indexes.best_for((position,)) is None:
                    table.create_index([table.schema.attributes[position].name])

    table_names = set(table_for_alias.values())
    schemas = {name: db.table(name).schema for name in table_names}
    index_versions = {
        name: db.table(name).indexes.version for name in table_names
    }
    if metrics:
        metrics.count(Metrics.PLANS_PREPARED)
    return PreparedCQ(
        query,
        scopes,
        out_schema,
        plan,
        never_matches,
        compiled_local,
        table_for_alias,
        schemas,
        index_versions,
        local_specs=local_specs,
    )


class PlanCache:
    """A keyed cache of prepared plans with staleness validation.

    The manager keys entries by CQ name (invalidated on deregister);
    the server keys them by query SQL so identical subscriptions share
    one plan. Every lookup revalidates against the live catalog —
    schema identity and index-set versions — and silently re-prepares
    on staleness, charging ``plan_cache_invalidations``.
    """

    def __init__(
        self,
        db: Database,
        metrics: Optional[Metrics] = None,
        auto_index: bool = True,
    ):
        self.db = db
        self.metrics = metrics
        self.auto_index = auto_index
        self._lock = Lock()
        self._plans: Dict[str, PreparedCQ] = {}

    def get(self, key: str, query: SPJQuery) -> PreparedCQ:
        """The cached plan for ``key``, re-prepared when stale."""
        with self._lock:
            prepared = self._plans.get(key)
            if prepared is not None:
                if prepared.is_valid(self.db):
                    if self.metrics:
                        self.metrics.count(Metrics.PLAN_CACHE_HITS)
                    return prepared
                del self._plans[key]
                if self.metrics:
                    self.metrics.count(Metrics.PLAN_CACHE_INVALIDATIONS)
            prepared = prepare_cq(
                query, self.db, metrics=self.metrics, auto_index=self.auto_index
            )
            self._plans[key] = prepared
            return prepared

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True when something was cached under ``key``."""
        with self._lock:
            found = self._plans.pop(key, None) is not None
        if found and self.metrics:
            self.metrics.count(Metrics.PLAN_CACHE_INVALIDATIONS)
        return found

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._plans

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self) -> str:
        return f"PlanCache({len(self)} plans)"
