"""The paper's differential operators: DiffSelect, DiffProj, DiffJoin.

These are the named differential forms of Section 4.2 ("we prove that
instantiation of Propagate for relational select, project, and join are
functionally equivalent to their differential forms: DiffSelect,
DiffProj and DiffJoin"). DiffSelect and DiffProj act directly on a
differential relation; DiffJoin is realized by the general truth-table
machinery specialized to two operands. The property-based test suite
checks each against its Propagate instantiation — the paper's
equivalence theorem, mechanically.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import QueryError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.binding import SingleRowBinder
from repro.relational.predicates import Predicate
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaEntry, DeltaRelation


def diff_select(
    delta: DeltaRelation,
    predicate: Predicate,
    metrics: Optional[Metrics] = None,
) -> DeltaRelation:
    """σ_F in differential form.

    For a modification both sides are tested, which is exactly the
    paper's Example 2 rewrite: F becomes
    ``F(old) ∧ F(new) → modify``, ``F(old) ∧ ¬F(new) → delete``,
    ``¬F(old) ∧ F(new) → insert``, else no entry.
    """
    compiled = predicate.compile(SingleRowBinder(delta.schema))
    entries = []
    for entry in delta:
        if metrics:
            metrics.count(Metrics.DELTA_ROWS_READ)
        old_in = entry.old is not None and compiled(entry.old)
        new_in = entry.new is not None and compiled(entry.new)
        if old_in and new_in:
            entries.append(entry)
        elif old_in:
            entries.append(DeltaEntry(entry.tid, entry.old, None, entry.ts))
        elif new_in:
            entries.append(DeltaEntry(entry.tid, None, entry.new, entry.ts))
    return DeltaRelation(delta.schema, entries)


def diff_project(
    delta: DeltaRelation,
    columns: Sequence[str],
    metrics: Optional[Metrics] = None,
) -> DeltaRelation:
    """π_X in differential form.

    Tids survive projection (they are the provenance key), so the only
    subtlety is a modification whose visible columns did not change —
    it projects to no entry at all.
    """
    positions = [delta.schema.position(name) for name in columns]
    out_schema = delta.schema.project(columns)
    entries = []
    for entry in delta:
        if metrics:
            metrics.count(Metrics.DELTA_ROWS_READ)
        old = (
            tuple(entry.old[p] for p in positions)
            if entry.old is not None
            else None
        )
        new = (
            tuple(entry.new[p] for p in positions)
            if entry.new is not None
            else None
        )
        if old == new:
            continue  # modification invisible after projection
        entries.append(DeltaEntry(entry.tid, old, new, entry.ts))
    return DeltaRelation(out_schema, entries)


def diff_join(
    query: SPJQuery,
    db: Database,
    deltas: Mapping[str, DeltaRelation],
    ts: Timestamp = 0,
    metrics: Optional[Metrics] = None,
) -> DeltaRelation:
    """⋈ in differential form, for a two-relation SPJ query.

    Expands to the three truth-table terms the paper's step 2 would
    build for two changed operands: ΔR ⋈ S, R ⋈ ΔS, ΔR ⋈ ΔS (signed),
    with base operands at their old state.
    """
    from repro.dra.algorithm import dra_execute

    if len(query.relations) != 2:
        raise QueryError("diff_join expects a query over exactly two relations")
    return dra_execute(query, db, deltas=deltas, ts=ts, metrics=metrics).delta
