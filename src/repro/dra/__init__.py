"""The Differential Re-evaluation Algorithm (paper Section 4).

See DESIGN.md S4. Entry points:

* :func:`dra_execute` — Algorithm 1 for SPJ queries;
* :func:`prepare_cq` / :class:`PreparedCQ` / :class:`PlanCache` — the
  registration-time compilation layer feeding ``dra_execute``'s
  ``prepared=`` fast path;
* :class:`DifferentialAggregate` — incremental aggregate maintenance;
* :func:`diff_select` / :func:`diff_project` / :func:`diff_join` — the
  paper's named differential operator forms;
* :func:`is_relevant` — Section 5.2's irrelevant-update pre-test;
* :class:`ColumnBatch` / :class:`TermKernel` — the columnar kernel
  layer behind ``dra_execute(columnar=True)``: struct-of-arrays
  batches swept by plan-specialized kernels;
* :class:`PredicateIndex` — the Section 5.2 relevance test turned into
  a shared attribute index over every subscription's local predicates,
  routing one consolidated delta batch to the affected subscriptions.
"""

from repro.dra.aggregates import DifferentialAggregate
from repro.dra.algorithm import dra_execute
from repro.dra.assembly import DRAResult, WeightInvariantError
from repro.dra.kernels import ColumnBatch, TermKernel, compile_term_kernel
from repro.dra.operators import diff_join, diff_project, diff_select
from repro.dra.predindex import IntervalIndex, PredicateIndex
from repro.dra.prepared import PlanCache, PreparedCQ, prepare_cq
from repro.dra.relevance import is_relevant, relevant_entry_counts
from repro.dra.truth_table import TruthTable

__all__ = [
    "ColumnBatch",
    "DRAResult",
    "DifferentialAggregate",
    "IntervalIndex",
    "PlanCache",
    "PredicateIndex",
    "PreparedCQ",
    "TermKernel",
    "TruthTable",
    "WeightInvariantError",
    "compile_term_kernel",
    "diff_join",
    "diff_project",
    "diff_select",
    "dra_execute",
    "is_relevant",
    "prepare_cq",
    "relevant_entry_counts",
]
