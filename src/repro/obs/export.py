"""Prometheus text exposition for :class:`~repro.metrics.Metrics`.

Counters become ``<ns>_<name>`` counter samples; histograms become the
standard cumulative ``_bucket{le="..."}`` series (power-of-two upper
bounds, plus ``+Inf``) with ``_sum`` and ``_count``. The output is the
text format every Prometheus scraper accepts; :func:`parse_prometheus_text`
is the inverse used by tests and the smoke bench to prove the exposition
round-trips without a real scraper in the loop.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.metrics import Metrics


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _render_labels(labels: Optional[Dict[str, str]], extra: str = "") -> str:
    """The ``{k="v",...}`` suffix for one sample (empty without labels).

    ``extra`` is a pre-rendered pair (histogram ``le``) appended after
    the shared labels so every series of one metric keeps a consistent
    label order.
    """
    pairs = [
        f'{_sanitize(key)}="{value}"'
        for key, value in sorted((labels or {}).items())
    ]
    if extra:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def prometheus_text(
    metrics: Metrics,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render ``metrics`` in the Prometheus text exposition format.

    ``labels`` are attached to every sample (e.g. ``{"shard": "2"}``
    renders ``repro_refreshes{shard="2"}``), which is how per-shard
    metric bags aggregate into one exposition without name collisions —
    histogram bucket series merge the shared labels with their ``le``.
    """
    ns = _sanitize(namespace)
    suffix = _render_labels(labels)
    lines = []
    for name, value in sorted(metrics.snapshot().items()):
        metric = f"{ns}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{suffix} {value}")
    # Derived batch-efficiency gauge (DESIGN.md §11): average rows
    # each columnar kernel invocation processed. Emitted whenever the
    # columnar evaluator has run; 0 calls would mean a meaningless
    # ratio, so it is simply absent then.
    calls = metrics.get(Metrics.KERNEL_CALLS)
    if calls:
        metric = f"{ns}_rows_per_kernel_call"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric}{suffix} {metrics.get(Metrics.KERNEL_ROWS) / calls:.3f}"
        )
    for name, hist in sorted(metrics.histograms().items()):
        metric = f"{ns}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for exp, count in hist.buckets():
            cumulative += count
            bucket = _render_labels(labels, extra=f'le="{float(2 ** exp)}"')
            lines.append(f"{metric}_bucket{bucket} {cumulative}")
        bucket = _render_labels(labels, extra='le="+Inf"')
        lines.append(f"{metric}_bucket{bucket} {hist.count}")
        lines.append(f"{metric}_sum{suffix} {hist.total}")
        lines.append(f"{metric}_count{suffix} {hist.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{metric: {labels: value}}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs (empty for
    plain counters). Raises ``ValueError`` on any malformed sample line,
    which is what makes it useful as a format check.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {raw!r}")
        value = float(value_part)  # raises ValueError if not a number
        labels: Tuple[Tuple[str, str], ...] = ()
        metric = name_part
        if "{" in name_part:
            metric, _, label_part = name_part.partition("{")
            if not label_part.endswith("}"):
                raise ValueError(f"malformed labels in line: {raw!r}")
            pairs = []
            for item in label_part[:-1].split(","):
                if not item:
                    continue
                key, eq, val = item.partition("=")
                if eq != "=" or len(val) < 2 or val[0] != '"' or val[-1] != '"':
                    raise ValueError(f"malformed label {item!r} in line: {raw!r}")
                pairs.append((key.strip(), val[1:-1]))
            labels = tuple(sorted(pairs))
        if not metric or not all(
            c.isalnum() or c in "_:" for c in metric
        ):
            raise ValueError(f"malformed metric name {metric!r} in line: {raw!r}")
        out.setdefault(metric, {})[labels] = value
    return out


def counter_value(
    parsed: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]],
    metric: str,
) -> Optional[float]:
    """The label-free sample for ``metric``, or ``None`` if absent."""
    samples = parsed.get(metric)
    if not samples:
        return None
    return samples.get(())
