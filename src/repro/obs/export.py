"""Prometheus text exposition for :class:`~repro.metrics.Metrics`.

Counters become ``<ns>_<name>`` counter samples; histograms become the
standard cumulative ``_bucket{le="..."}`` series (power-of-two upper
bounds, plus ``+Inf``) with ``_sum`` and ``_count``. The output is the
text format every Prometheus scraper accepts; :func:`parse_prometheus_text`
is the inverse used by tests and the smoke bench to prove the exposition
round-trips without a real scraper in the loop.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.metrics import Metrics


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(metrics: Metrics, namespace: str = "repro") -> str:
    """Render ``metrics`` in the Prometheus text exposition format."""
    ns = _sanitize(namespace)
    lines = []
    for name, value in sorted(metrics.snapshot().items()):
        metric = f"{ns}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    # Derived batch-efficiency gauge (DESIGN.md §11): average rows
    # each columnar kernel invocation processed. Emitted whenever the
    # columnar evaluator has run; 0 calls would mean a meaningless
    # ratio, so it is simply absent then.
    calls = metrics.get(Metrics.KERNEL_CALLS)
    if calls:
        metric = f"{ns}_rows_per_kernel_call"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {metrics.get(Metrics.KERNEL_ROWS) / calls:.3f}")
    for name, hist in sorted(metrics.histograms().items()):
        metric = f"{ns}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for exp, count in hist.buckets():
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{float(2 ** exp)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{metric: {labels: value}}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs (empty for
    plain counters). Raises ``ValueError`` on any malformed sample line,
    which is what makes it useful as a format check.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {raw!r}")
        value = float(value_part)  # raises ValueError if not a number
        labels: Tuple[Tuple[str, str], ...] = ()
        metric = name_part
        if "{" in name_part:
            metric, _, label_part = name_part.partition("{")
            if not label_part.endswith("}"):
                raise ValueError(f"malformed labels in line: {raw!r}")
            pairs = []
            for item in label_part[:-1].split(","):
                if not item:
                    continue
                key, eq, val = item.partition("=")
                if eq != "=" or len(val) < 2 or val[0] != '"' or val[-1] != '"':
                    raise ValueError(f"malformed label {item!r} in line: {raw!r}")
                pairs.append((key.strip(), val[1:-1]))
            labels = tuple(sorted(pairs))
        if not metric or not all(
            c.isalnum() or c in "_:" for c in metric
        ):
            raise ValueError(f"malformed metric name {metric!r} in line: {raw!r}")
        out.setdefault(metric, {})[labels] = value
    return out


def counter_value(
    parsed: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]],
    metric: str,
) -> Optional[float]:
    """The label-free sample for ``metric``, or ``None`` if absent."""
    samples = parsed.get(metric)
    if not samples:
        return None
    return samples.get(())
