"""Lightweight structured tracing for the refresh pipeline.

The paper's cost model is about work *not* done; the trace layer is
about *where* the remaining work goes. A :class:`Tracer` produces
:class:`Span` records around each stage of a refresh — trigger
evaluation, delta consolidation, DRA term evaluation, result
apply/notify, wire encode/send — each carrying per-CQ and per-table
attribution plus the operation counters charged during the stage.

Design constraints (all deliberate):

* dependency-free — no OpenTelemetry; a span is a plain dict record;
* deterministic in tests — the clock is injectable (any ``() ->
  float`` seconds source) and sampling is seeded, so traced test runs
  never read the wall clock and never flake on sampling;
* cheap when off — a disabled tracer hands out one shared no-op span,
  and an unsampled trace creates spans that record nothing;
* thread-aware — each thread keeps its own span stack, so the
  parallel refresh pool nests worker spans under their own per-CQ
  roots instead of interleaving into one trace.

Sampling is decided once per *trace* (at the root span) and inherited
by every child, so a sampled refresh is always complete.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    sampled = False
    name = None
    attrs: Dict[str, Any] = {}
    duration_us = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed stage of a trace.

    Use as a context manager: entering stamps the start time and makes
    this span the current parent on this thread; exiting stamps the end
    time, restores the parent, and (when sampled) records the span with
    the tracer. ``set`` attaches attributes (counters, row counts, CQ
    names); on an unsampled span it is a no-op.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        sampled: bool,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if sampled else {}

    def set(self, **attrs: Any) -> "Span":
        if self.sampled:
            self.attrs.update(attrs)
        return self

    @property
    def duration_us(self) -> Optional[float]:
        if self.start is None or self.end is None:
            return None
        return (self.end - self.start) * 1e6

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "dur_us": self.duration_us,
        }
        record.update(self.attrs)
        return record

    def __enter__(self) -> "Span":
        self.start = self.tracer.clock()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self.tracer.clock()
        if exc is not None and self.sampled:
            self.attrs.setdefault("error", repr(exc))
        self.tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, trace={self.trace_id}, attrs={self.attrs})"


class Tracer:
    """Creates, samples, and retains spans.

    ``sample_rate`` is the seeded per-trace sampling probability (1.0
    traces everything, 0.0 nothing); ``clock`` is any monotone
    ``() -> float`` seconds source (defaults to ``time.perf_counter``);
    ``sink`` is an optional object with ``write(dict)`` — e.g. a
    :class:`~repro.obs.sink.JsonlTraceSink` — that receives every
    finished sampled span. Finished spans are also retained in memory
    (bounded by ``max_spans``; overflow is counted in ``dropped``) for
    tests and ad-hoc inspection.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Any] = None,
        max_spans: int = 10_000,
        enabled: bool = True,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sample_rate = sample_rate
        self.clock = clock if clock is not None else time.perf_counter
        self.sink = sink
        self.max_spans = max_spans
        self.enabled = enabled
        self.dropped = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._next_id = 0
        self._spans: List[Dict[str, Any]] = []
        self._local = threading.local()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """A new span, child of this thread's current span (or a new
        root, with a fresh sampling decision, when there is none)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
            if parent is not None:
                trace_id = parent.trace_id
                parent_id = parent.span_id
                sampled = parent.sampled
            else:
                trace_id = span_id
                parent_id = None
                sampled = (
                    self.sample_rate >= 1.0
                    or self._rng.random() < self.sample_rate
                )
        return Span(self, name, trace_id, span_id, parent_id, sampled, attrs)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- retained spans ----------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished sampled spans (optionally filtered by name)."""
        with self._lock:
            records = list(self._spans)
        if name is not None:
            records = [r for r in records if r["name"] == name]
        return records

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all retained spans."""
        with self._lock:
            out = self._spans
            self._spans = []
        return out

    def reset(self) -> None:
        with self._lock:
            self._spans = []
            self.dropped = 0

    # -- internals ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; keep the stack coherent
            stack.remove(span)
        if not span.sampled:
            return
        record = span.to_dict()
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(record)
            else:
                self.dropped += 1
        if self.sink is not None:
            self.sink.write(record)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({state}, sample_rate={self.sample_rate}, "
            f"{len(self._spans)} spans)"
        )
