"""Observability: refresh-pipeline tracing, attribution, and export.

See DESIGN.md §9. The pieces:

* :mod:`repro.obs.trace` — ``Tracer``/``Span``: seeded-sampled,
  injectable-clock spans around every refresh stage.
* :mod:`repro.obs.stats` — ``TeeMetrics`` (scoped counter capture that
  still charges the shared bag) and ``CQStats`` (per-CQ cumulative
  cost tables + latency histograms).
* :mod:`repro.obs.export` — Prometheus text exposition for ``Metrics``
  counters and histograms, plus a parser for format checks.
* :mod:`repro.obs.sink` — JSON-lines trace sink with rotation.
"""

from repro.obs.export import counter_value, parse_prometheus_text, prometheus_text
from repro.obs.sink import JsonlTraceSink, read_spans
from repro.obs.stats import CQStats, TeeMetrics
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "CQStats",
    "JsonlTraceSink",
    "NULL_SPAN",
    "Span",
    "TeeMetrics",
    "Tracer",
    "counter_value",
    "parse_prometheus_text",
    "prometheus_text",
    "read_spans",
]
