"""JSON-lines trace sink with size-based rotation.

A :class:`JsonlTraceSink` accepts finished span records (plain dicts)
from a :class:`~repro.obs.trace.Tracer` and appends them, one JSON
object per line, to ``path``. When the file would exceed ``max_bytes``
it rotates ``path`` → ``path.1`` → ``path.2`` … keeping at most
``max_files`` rotated generations — enough to cap disk usage in a soak
run without an external log shipper.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List


class JsonlTraceSink:
    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 3,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.written = 0
        self.rotations = 0
        self._lock = threading.Lock()
        self._size = os.path.getsize(path) if os.path.exists(path) else 0

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._size and self._size + len(data) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as fh:
                fh.write(data)
            self._size += len(data)
            self.written += 1

    def _rotate(self) -> None:
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for n in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{n + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")
        self._size = 0
        self.rotations += 1

    def __repr__(self) -> str:
        return (
            f"JsonlTraceSink({self.path!r}, written={self.written}, "
            f"rotations={self.rotations})"
        )


def read_spans(path: str) -> List[Dict[str, Any]]:
    """All span records in a sink file, oldest first."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
