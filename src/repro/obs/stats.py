"""Per-CQ cost attribution on top of the shared :class:`Metrics` bag.

The engine charges counters to whatever ``Metrics`` it is handed. To
attribute that work to an individual CQ without forking every call
site, a refresh temporarily swaps in a :class:`TeeMetrics` — a real
``Metrics`` that *also* forwards every charge to the shared parent —
then folds the scoped counts into a :class:`CQStats` table keyed by CQ
name. The shared totals stay exact; the per-CQ table is pure addition.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.metrics import Histogram, Metrics


class TeeMetrics(Metrics):
    """A scoped ``Metrics`` that mirrors every charge to a parent.

    Counter reads (``get``/``snapshot``/``diff``) see only the scoped
    values, so a refresh can measure exactly what it charged; the
    parent still receives every count and observation, so shared
    totals are unaffected by the indirection.
    """

    __slots__ = ("parent",)

    def __init__(self, parent: Optional[Metrics] = None) -> None:
        super().__init__()
        self.parent = parent

    def count(self, name: str, amount: int = 1) -> None:
        super().count(name, amount)
        if self.parent is not None:
            self.parent.count(name, amount)

    def observe(self, name: str, value: float) -> None:
        super().observe(name, value)
        if self.parent is not None:
            self.parent.observe(name, value)


class CQStats:
    """Cumulative per-key cost table: counters plus a latency histogram.

    Keys are CQ names (or subscription identities on the server side).
    ``record`` adds one refresh's scoped counter deltas and latency;
    readers get copies, so the table is safe to render while refreshes
    continue on other threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, Histogram] = {}

    def record(
        self,
        key: str,
        counters: Dict[str, int],
        latency_us: Optional[float] = None,
    ) -> None:
        with self._lock:
            mine = self._counters.setdefault(key, {})
            for name, value in counters.items():
                if value:
                    mine[name] = mine.get(name, 0) + value
            if latency_us is not None:
                hist = self._latency.get(key)
                if hist is None:
                    hist = self._latency[key] = Histogram()
                hist.observe(latency_us)

    def counters(self, key: str) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters.get(key, {}))

    def latency(self, key: str) -> Histogram:
        with self._lock:
            hist = self._latency.get(key)
            return hist.copy() if hist is not None else Histogram()

    def keys(self):
        with self._lock:
            return sorted(set(self._counters) | set(self._latency))

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """``{key: {counters..., latency: {count, mean, p95, max}}}``."""
        out: Dict[str, Dict[str, object]] = {}
        for key in self.keys():
            row: Dict[str, object] = dict(self.counters(key))
            hist = self.latency(key)
            if hist.count:
                row["latency"] = {
                    "count": hist.count,
                    "mean_us": round(hist.mean, 3),
                    "p95_us": hist.percentile(95),
                    "max_us": hist.max,
                }
            out[key] = row
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(set(self._counters) | set(self._latency))

    def __repr__(self) -> str:
        return f"CQStats({len(self)} keys)"
