"""The Propagate operator: complete re-evaluation as a specification.

``Propagate(Q(R...); [R_i, ΔR_i]...)`` (paper Section 4.2) describes
how a query result changes when operand relations change, defined by
*complete re-evaluation before and after* followed by :func:`Diff`.
The paper introduces it precisely to prove DRA functionally equivalent
to recompute-from-scratch; here it is both the correctness oracle for
the test suite and the baseline the benchmarks compare DRA against.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.metrics import Metrics
from repro.relational.aggregates import AggregateQuery, evaluate_aggregate
from repro.relational.algebra import SPJQuery
from repro.relational.evaluate import Resolver, evaluate_spj
from repro.relational.relation import Relation
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaRelation
from repro.delta.diff import diff
from repro.delta.views import OldStateView

Query = Union[SPJQuery, AggregateQuery]


def _evaluate(query: Query, resolver: Resolver, metrics: Optional[Metrics]) -> Relation:
    if isinstance(query, AggregateQuery):
        return evaluate_aggregate(query, resolver, metrics)
    return evaluate_spj(query, resolver, metrics)


def old_resolver(
    new_resolver: Resolver, deltas: Mapping[str, DeltaRelation]
) -> Resolver:
    """A resolver serving each table's *old* state (current ⊖ delta)."""

    cache: Dict[str, Relation] = {}

    def resolve(name: str) -> Relation:
        if name in cache:
            return cache[name]
        current = new_resolver(name)
        delta = deltas.get(name)
        if delta is None or delta.is_empty():
            relation = current
        else:
            relation = OldStateView(current, delta).materialize()
        cache[name] = relation
        return relation

    return resolve


def propagate(
    query: Query,
    new_resolver: Resolver,
    deltas: Mapping[str, DeltaRelation],
    ts: Timestamp = 0,
    metrics: Optional[Metrics] = None,
) -> DeltaRelation:
    """Diff of complete re-evaluations before and after the updates.

    ``new_resolver`` serves current table contents; ``deltas`` maps
    table names to the consolidated changes since the previous
    execution. Returns the differential result ΔQ with entries stamped
    ``ts``.
    """
    before = _evaluate(query, old_resolver(new_resolver, deltas), metrics)
    after = _evaluate(query, new_resolver, metrics)
    return diff(before, after, ts)


def propagate_between(
    query: Query,
    before_resolver: Resolver,
    after_resolver: Resolver,
    ts: Timestamp = 0,
    metrics: Optional[Metrics] = None,
) -> DeltaRelation:
    """Propagate when both database states are directly available."""
    before = _evaluate(query, before_resolver, metrics)
    after = _evaluate(query, after_resolver, metrics)
    return diff(before, after, ts)
