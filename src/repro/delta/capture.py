"""Capturing deltas from tables and external feeds."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.relational.schema import Schema
from repro.storage.table import Table
from repro.storage.timestamps import Timestamp
from repro.storage.update_log import UpdateRecord
from repro.delta.differential import DeltaRelation


def delta_since(table: Table, ts: Timestamp) -> DeltaRelation:
    """The consolidated net changes to ``table`` after time ``ts``.

    This is Algorithm 1's input (iii): the CQ manager calls it with the
    timestamp of the CQ's previous execution, which plays the role of
    the "proper timestamp predicate" limiting the search space.
    """
    return DeltaRelation.from_records(table.schema, table.log.since(ts))


def deltas_since(
    tables: Sequence[Table], ts: Timestamp
) -> Dict[str, DeltaRelation]:
    """Per-table consolidated deltas after ``ts`` (skipping no-ops)."""
    out: Dict[str, DeltaRelation] = {}
    for table in tables:
        delta = delta_since(table, ts)
        if not delta.is_empty():
            out[table.name] = delta
    return out


class DeltaBuffer:
    """An update-record accumulator for sources that are not tables.

    DIOM-style translators (paper Section 5.5) push update records in;
    consumers drain consolidated deltas since their own last read. The
    buffer is the "differential relation" of a non-relational source.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._records: List[UpdateRecord] = []

    def push(self, record: UpdateRecord) -> None:
        if self._records and record.ts < self._records[-1].ts:
            raise ValueError(
                f"buffer timestamps must be non-decreasing; got {record.ts} "
                f"after {self._records[-1].ts}"
            )
        self._records.append(record)

    def push_all(self, records: Sequence[UpdateRecord]) -> None:
        for record in records:
            self.push(record)

    def delta_since(self, ts: Timestamp) -> DeltaRelation:
        return DeltaRelation.from_records(
            self.schema, [r for r in self._records if r.ts > ts]
        )

    def prune_before(self, ts: Timestamp) -> int:
        before = len(self._records)
        self._records = [r for r in self._records if r.ts > ts]
        return before - len(self._records)

    def __len__(self) -> int:
        return len(self._records)
