"""Old-state overlays: the relation as of the last CQ execution.

DRA runs at execution E_{i+1}; the stored table already holds the *new*
state. Terms of the truth-table expansion that reference unchanged
operands need the *old* state R_i (the paper's Algorithm 1 input (ii)).
Rather than copying tables at every CQ execution, these views overlay
the consolidated delta on the live relation and answer old-state
lookups — including index probes — in O(1) plus delta-sized fixups.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.metrics import Metrics
from repro.relational.indexes import HashIndex
from repro.relational.relation import Relation, Row, Tid, Values
from repro.delta.differential import DeltaRelation


class OldStateView:
    """Read-only view of ``current ⊖ delta`` (the pre-update state)."""

    __slots__ = ("current", "delta")

    def __init__(self, current: Relation, delta: DeltaRelation):
        self.current = current
        self.delta = delta

    @property
    def schema(self):
        return self.current.schema

    def get_or_none(self, tid: Tid) -> Optional[Values]:
        entry = self.delta.get(tid)
        if entry is not None:
            return entry.old  # None when the tuple was inserted
        return self.current.get_or_none(tid)

    def __contains__(self, tid: Tid) -> bool:
        return self.get_or_none(tid) is not None

    def __iter__(self) -> Iterator[Row]:
        delta = self.delta
        for row in self.current:
            entry = delta.get(row.tid)
            if entry is None:
                yield row
        for entry in delta:
            if entry.old is not None:
                yield Row(entry.tid, entry.old)

    def __len__(self) -> int:
        n = len(self.current)
        for entry in self.delta:
            if entry.old is None:  # insert: absent in old state
                n -= 1
            elif entry.new is None:  # delete: present only in old state
                n += 1
        return n

    def materialize(self) -> Relation:
        """Copy the old state into a standalone relation."""
        out = Relation(self.schema)
        for row in self:
            out.add(row.tid, row.values)
        return out


class OldStateIndex:
    """Old-state equality probes backed by a current-state hash index.

    A probe for key k in the old state is answered by:

    * the current index's bucket for k, minus tids the delta touched
      (their current values may differ from their old ones), plus
    * delta entries whose *old* side hashes to k.

    The delta-side map is built once per (index, delta) pair — O(|Δ|) —
    after which each probe is O(bucket).
    """

    __slots__ = ("index", "delta", "view", "_old_buckets")

    def __init__(self, index: HashIndex, delta: DeltaRelation, current: Relation):
        self.index = index
        self.delta = delta
        self.view = OldStateView(current, delta)
        self._old_buckets: Dict[Tuple[Any, ...], List[Tuple[Tid, Values]]] = {}
        for entry in delta:
            if entry.old is not None:
                key = index.key_of(entry.old)
                self._old_buckets.setdefault(key, []).append(
                    (entry.tid, entry.old)
                )

    def lookup(
        self, key: Tuple[Any, ...], metrics: Optional[Metrics] = None
    ) -> List[Tuple[Tid, Values]]:
        """(tid, old values) pairs whose old state matches ``key``."""
        out: List[Tuple[Tid, Values]] = []
        for tid in self.index.lookup(key, metrics):
            if tid in self.delta:
                continue  # delta side below provides the old value
            values = self.view.current.get_or_none(tid)
            if values is not None:
                out.append((tid, values))
        out.extend(self._old_buckets.get(key, ()))
        return out

    def fast_maps(self):
        """``(buckets.get, rows.get)`` bound methods when the delta is
        empty — old-state probes then reduce to current-state bucket
        reads — else ``None``. Batch callers use these to fuse bucket
        iteration, value fetch, and local-predicate filtering into one
        comprehension with no per-row Python calls."""
        if self.delta.is_empty():
            return self.index.buckets_map().get, self.view.current.rows_map().get
        return None

    def lookup_batch(
        self,
        keys: Iterable[Tuple[Any, ...]],
        metrics: Optional[Metrics] = None,
    ) -> Dict[Tuple[Any, ...], List[Tuple[Tid, Values]]]:
        """Batched :meth:`lookup`: ``{key: matches}`` for every key in
        ``keys`` with at least one old-state match.

        One pass with everything bound locally — and, when the delta is
        empty (the common case: this operand did not change), the
        per-tid delta fixups drop out entirely and each bucket resolves
        with a single comprehension over the current rows.
        """
        buckets = self.index.buckets_map()
        rows_get = self.view.current.rows_map().get
        out: Dict[Tuple[Any, ...], List[Tuple[Tid, Values]]] = {}
        probes = 0
        if self.delta.is_empty():
            for key in keys:
                probes += 1
                bucket = buckets.get(key)
                if bucket:
                    out[key] = [
                        (tid, v)
                        for tid in bucket
                        if (v := rows_get(tid)) is not None
                    ]
        else:
            touched = self.delta.__contains__
            old_buckets = self._old_buckets
            for key in keys:
                probes += 1
                matched: List[Tuple[Tid, Values]] = []
                bucket = buckets.get(key)
                if bucket:
                    matched = [
                        (tid, v)
                        for tid in bucket
                        if not touched(tid)
                        and (v := rows_get(tid)) is not None
                    ]
                extra = old_buckets.get(key)
                if extra:
                    matched.extend(extra)
                if matched:
                    out[key] = matched
        if metrics and probes:
            metrics.count(Metrics.INDEX_PROBES, probes)
        return out


class CurrentStateIndex:
    """New-state probes, uniform with :class:`OldStateIndex`'s API."""

    __slots__ = ("index", "current")

    def __init__(self, index: HashIndex, current: Relation):
        self.index = index
        self.current = current

    def lookup(
        self, key: Tuple[Any, ...], metrics: Optional[Metrics] = None
    ) -> List[Tuple[Tid, Values]]:
        out = []
        for tid in self.index.lookup(key, metrics):
            values = self.current.get_or_none(tid)
            if values is not None:
                out.append((tid, values))
        return out
