"""Differential relations (paper Section 4.1).

A :class:`DeltaRelation` represents the *net* effect of a collection of
updates to one relation. Each entry carries the old attribute values,
the new attribute values, and a timestamp:

* insert — old side is null;
* delete — new side is null;
* modify — both sides present.

No tid appears in more than one entry: consolidation folds the whole
multi-transaction history since a point in time into one entry per
tuple (insert∘delete cancels, modify∘modify composes, insert∘modify
folds into an insert of the final value).

The ``insertions``/``deletions`` operators match the paper's usage:
``insertions(ΔR)`` is everything that must be *added* to the old state
(pure inserts plus the new side of modifications) and ``deletions(ΔR)``
everything that must be *removed* (pure deletes plus the old side of
modifications), so that::

    new_state = (old_state − deletions(ΔR)) ∪ insertions(ΔR)
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import DeltaConsolidationError
from repro.relational.relation import Relation, Tid, Values
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType
from repro.storage.timestamps import Timestamp
from repro.storage.update_log import UpdateKind, UpdateRecord


class ChangeKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


class DeltaEntry:
    """The net change to one tuple."""

    __slots__ = ("tid", "old", "new", "ts")

    def __init__(
        self,
        tid: Tid,
        old: Optional[Values],
        new: Optional[Values],
        ts: Timestamp,
    ):
        if old is None and new is None:
            raise DeltaConsolidationError(
                f"delta entry for tid {tid} has neither old nor new side"
            )
        self.tid = tid
        self.old = old
        self.new = new
        self.ts = ts

    @property
    def kind(self) -> ChangeKind:
        if self.old is None:
            return ChangeKind.INSERT
        if self.new is None:
            return ChangeKind.DELETE
        return ChangeKind.MODIFY

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DeltaEntry) and (
            self.tid,
            self.old,
            self.new,
            self.ts,
        ) == (other.tid, other.old, other.new, other.ts)

    def __hash__(self) -> int:
        return hash((self.tid, self.old, self.new, self.ts))

    def __repr__(self) -> str:
        return (
            f"DeltaEntry({self.kind.value}, tid={self.tid}, old={self.old}, "
            f"new={self.new}, ts={self.ts})"
        )


class DeltaRelation:
    """A consolidated set of net changes to one relation."""

    __slots__ = ("schema", "_entries")

    def __init__(self, schema: Schema, entries: Iterable[DeltaEntry] = ()):
        self.schema = schema
        self._entries: Dict[Tid, DeltaEntry] = {}
        for entry in entries:
            if entry.tid in self._entries:
                raise DeltaConsolidationError(
                    f"tid {entry.tid} appears in multiple delta entries"
                )
            self._entries[entry.tid] = entry

    # -- construction -----------------------------------------------------

    @classmethod
    def from_consolidated(
        cls, schema: Schema, entries: Dict[Tid, DeltaEntry]
    ) -> "DeltaRelation":
        """Adopt an already-consolidated ``{tid: entry}`` mapping.

        Skips the per-entry duplicate-tid check — the mapping's keys
        guarantee uniqueness. The caller must ensure each entry's tid
        equals its key and transfers ownership of ``entries``.
        """
        out = cls(schema)
        out._entries = entries
        return out

    @classmethod
    def from_records(
        cls, schema: Schema, records: Sequence[UpdateRecord]
    ) -> "DeltaRelation":
        """Consolidate an ordered update-record history into net effects.

        Records must be in commit order. A tuple whose history nets out
        to nothing (insert then delete, or modifications restoring the
        original value) produces no entry, as the paper's "net effect"
        semantics require.
        """
        first_old: Dict[Tid, Optional[Values]] = {}
        last_new: Dict[Tid, Optional[Values]] = {}
        last_ts: Dict[Tid, Timestamp] = {}

        for record in records:
            tid = record.tid
            if tid not in first_old:
                # First sighting: the old side of this record is the
                # tuple's state at the start of the window.
                first_old[tid] = record.old
                current: Optional[Values] = record.old
            else:
                current = last_new[tid]
            # Chain consistency checks.
            if record.kind is UpdateKind.INSERT:
                if current is not None:
                    raise DeltaConsolidationError(
                        f"insert of live tid {tid} at ts={record.ts}"
                    )
            else:
                if current is None:
                    raise DeltaConsolidationError(
                        f"{record.kind.value} of dead tid {tid} at ts={record.ts}"
                    )
                if record.old != current:
                    raise DeltaConsolidationError(
                        f"old value mismatch for tid {tid} at ts={record.ts}: "
                        f"log says {record.old}, chain says {current}"
                    )
            last_new[tid] = record.new
            last_ts[tid] = record.ts

        entries = []
        for tid, old in first_old.items():
            new = last_new[tid]
            if old is None and new is None:
                continue  # born and died inside the window
            if old is not None and new is not None and old == new:
                continue  # modified back to the original value
            entries.append(DeltaEntry(tid, old, new, last_ts[tid]))
        return cls(schema, entries)

    @classmethod
    def empty(cls, schema: Schema) -> "DeltaRelation":
        return cls(schema)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeltaEntry]:
        return iter(self._entries.values())

    def __contains__(self, tid: Tid) -> bool:
        return tid in self._entries

    def get(self, tid: Tid) -> Optional[DeltaEntry]:
        return self._entries.get(tid)

    def is_empty(self) -> bool:
        return not self._entries

    def signed_rows(self) -> Iterator[tuple]:
        """The delta as a Z-set: ``(tid, values, weight)`` triples, the
        old side of each entry with weight −1 and the new side with +1.

        This is the signed-set reading of §4.1 the DRA term evaluators
        are built on: a modify contributes both sides, and summing
        weighted join results over terms yields Q(S_new) − Q(S_old)
        directly. Emission order (old before new, entries in
        consolidation order) is deterministic so the row and columnar
        evaluators see identical operand layouts.
        """
        for entry in self._entries.values():
            if entry.old is not None:
                yield (entry.tid, entry.old, -1)
            if entry.new is not None:
                yield (entry.tid, entry.new, +1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaRelation):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        kinds = {"insert": 0, "delete": 0, "modify": 0}
        for entry in self:
            kinds[entry.kind.value] += 1
        return (
            f"DeltaRelation({kinds['insert']} ins, {kinds['delete']} del, "
            f"{kinds['modify']} mod)"
        )

    def max_ts(self) -> Timestamp:
        return max((entry.ts for entry in self), default=0)

    # -- the paper's operators ---------------------------------------------

    def insertions(self) -> Relation:
        """insertions(ΔR): rows to add to the old state (paper §4.1)."""
        out = Relation(self.schema)
        for entry in self:
            if entry.new is not None:
                out.add(entry.tid, entry.new)
        return out

    def deletions(self) -> Relation:
        """deletions(ΔR): rows to remove from the old state (paper §4.1)."""
        out = Relation(self.schema)
        for entry in self:
            if entry.old is not None:
                out.add(entry.tid, entry.old)
        return out

    def pure_insertions(self) -> Relation:
        """Only brand-new tuples (no modification new-sides)."""
        out = Relation(self.schema)
        for entry in self:
            if entry.kind is ChangeKind.INSERT:
                out.add(entry.tid, entry.new)
        return out

    def pure_deletions(self) -> Relation:
        """Only removed tuples (no modification old-sides)."""
        out = Relation(self.schema)
        for entry in self:
            if entry.kind is ChangeKind.DELETE:
                out.add(entry.tid, entry.old)
        return out

    def modifications(self) -> List[DeltaEntry]:
        return [e for e in self if e.kind is ChangeKind.MODIFY]

    def filter_since(self, ts: Timestamp) -> "DeltaRelation":
        """Entries with ``entry.ts > ts`` — the timestamp predicate the
        CQ manager appends to the differential query (Section 4.2)."""
        return DeltaRelation(
            self.schema, (e for e in self if e.ts > ts)
        )

    # -- applying -------------------------------------------------------------

    def apply_to(self, relation: Relation) -> Relation:
        """The new state: (relation − deletions) ∪ insertions."""
        out = relation.copy()
        for entry in self:
            if entry.new is None:
                out.remove(entry.tid)
            else:
                out.add(entry.tid, entry.new)
        return out

    def unapply_from(self, relation: Relation) -> Relation:
        """Reconstruct the old state from the new one."""
        out = relation.copy()
        for entry in self:
            if entry.old is None:
                out.remove(entry.tid)
            else:
                out.add(entry.tid, entry.old)
        return out

    def reversed(self) -> "DeltaRelation":
        """The inverse delta (swap old and new sides)."""
        return DeltaRelation(
            self.schema,
            (DeltaEntry(e.tid, e.new, e.old, e.ts) for e in self),
        )

    def compose(self, later: "DeltaRelation") -> "DeltaRelation":
        """The net effect of this delta followed by ``later``.

        ``compose`` is to deltas what consolidation is to logs: for a
        tid in both, the earlier old side pairs with the later new side
        (cancelling if equal). The later delta's old sides must match
        this delta's new sides — a mismatch means the two deltas are
        not consecutive windows of the same history.
        """
        merged: Dict[Tid, DeltaEntry] = dict(self._entries)
        for entry in later:
            earlier = merged.get(entry.tid)
            if earlier is None:
                merged[entry.tid] = entry
                continue
            if earlier.new != entry.old:
                raise DeltaConsolidationError(
                    f"compose mismatch for tid {entry.tid}: earlier new "
                    f"side {earlier.new} != later old side {entry.old}"
                )
            if earlier.old == entry.new:
                del merged[entry.tid]  # net no-op
            else:
                merged[entry.tid] = DeltaEntry(
                    entry.tid, earlier.old, entry.new, entry.ts
                )
        return DeltaRelation(self.schema, merged.values())

    # -- presentation ----------------------------------------------------------

    def wide_schema(self) -> Schema:
        """Schema of the Example 1 "wide" rendering: A_old, A_new, ts."""
        attrs = [
            Attribute(f"{a.name}_old", a.type) for a in self.schema
        ] + [
            Attribute(f"{a.name}_new", a.type) for a in self.schema
        ]
        attrs.append(Attribute("ts", AttributeType.INT))
        return Schema(attrs)

    def as_wide_relation(self) -> Relation:
        """The paper's tabular ΔR form: old side, new side, timestamp.

        Null (None) fills the missing side of inserts and deletes,
        matching the dashes in the paper's Example 1 table.
        """
        arity = len(self.schema)
        out = Relation(self.wide_schema())
        for entry in self:
            old = entry.old if entry.old is not None else (None,) * arity
            new = entry.new if entry.new is not None else (None,) * arity
            out.add(entry.tid, old + new + (entry.ts,))
        return out
