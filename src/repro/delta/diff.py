"""The Diff operator (paper Section 4.2).

``Diff`` computes the difference between two relations of the same
scheme as a differential relation. Together with complete
re-evaluation it defines the *specification* of what any incremental
algorithm must produce; DRA is tested against it.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaEntry, DeltaRelation


def diff(old: Relation, new: Relation, ts: Timestamp = 0) -> DeltaRelation:
    """Net changes turning ``old`` into ``new``, keyed by tid.

    * tid only in ``old``  → delete entry;
    * tid only in ``new``  → insert entry;
    * tid in both with different values → modify entry;
    * tid in both with equal values → no entry.

    All entries carry the supplied timestamp (the comparison is a
    single logical event).
    """
    if not old.schema.union_compatible(new.schema):
        raise SchemaError(
            f"Diff needs union-compatible schemas: {old.schema!r} vs {new.schema!r}"
        )
    entries = []
    for row in old:
        new_values = new.get_or_none(row.tid)
        if new_values is None:
            entries.append(DeltaEntry(row.tid, row.values, None, ts))
        elif new_values != row.values:
            entries.append(DeltaEntry(row.tid, row.values, new_values, ts))
    for row in new:
        if row.tid not in old:
            entries.append(DeltaEntry(row.tid, None, row.values, ts))
    return DeltaRelation(new.schema, entries)
