"""Differential relations, Diff, Propagate, and old-state views.

See DESIGN.md S3 and paper Sections 4.1-4.2.
"""

from repro.delta.capture import DeltaBuffer, delta_since, deltas_since
from repro.delta.diff import diff
from repro.delta.differential import ChangeKind, DeltaEntry, DeltaRelation
from repro.delta.propagate import propagate, propagate_between
from repro.delta.views import CurrentStateIndex, OldStateIndex, OldStateView

__all__ = [
    "ChangeKind",
    "CurrentStateIndex",
    "DeltaBuffer",
    "DeltaEntry",
    "DeltaRelation",
    "OldStateIndex",
    "OldStateView",
    "delta_since",
    "deltas_since",
    "diff",
    "propagate",
    "propagate_between",
]
