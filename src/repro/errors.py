"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared attribute type."""


class UnknownAttributeError(SchemaError):
    """A column reference does not resolve against the given schema(s)."""


class AmbiguousAttributeError(SchemaError):
    """An unqualified column reference matches more than one relation."""


class ExpressionError(ReproError):
    """An expression or predicate is structurally invalid."""


class QueryError(ReproError):
    """A query (algebra tree or SQL text) is invalid."""


class SQLSyntaxError(QueryError):
    """The SQL-subset parser rejected the input text."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class UnsupportedQueryError(QueryError):
    """The query is valid SQL but outside the supported SPJ fragment."""


class StorageError(ReproError):
    """Errors from the table / transaction layer."""


class NoSuchTupleError(StorageError):
    """A tid does not identify a live tuple in the table."""


class NoSuchTableError(StorageError):
    """A table name does not resolve in the database catalog."""


class DuplicateTableError(StorageError):
    """A table with the same name is already registered."""


class TransactionError(StorageError):
    """Illegal transaction state transition (e.g. commit twice)."""


class WALError(StorageError):
    """The write-ahead log is unusable (bad header, closed, misuse)."""


class CheckpointError(StorageError):
    """A checkpoint file failed validation (version, checksum, shape)."""


class DeltaError(ReproError):
    """Errors from the differential-relation layer."""


class DeltaConsolidationError(DeltaError):
    """The update log is inconsistent (e.g. modify of a never-seen tid)."""


class ContinualQueryError(ReproError):
    """Errors from the continual-query layer."""


class RegistrationError(ContinualQueryError):
    """A continual query could not be registered with the manager."""


class TriggerError(ContinualQueryError):
    """A trigger condition is malformed or cannot be evaluated."""


class SourceError(ReproError):
    """Errors from the DIOM-style source adapters."""


class NetworkError(ReproError):
    """Errors from the simulated network layer."""


class CodecError(NetworkError):
    """A wire frame is malformed: oversized length prefix, undecodable
    payload, or field structure that fails validation."""


class ClusterError(ReproError):
    """Errors from the sharded cluster layer (repro.cluster)."""


class ShardTimeout(ClusterError):
    """A shard request exceeded its deadline: the shard may be wedged,
    overloaded, or dead — the router cannot tell which, so the health
    state machine treats the request as a missed ack and the caller
    retries (or fails over) instead of blocking forever."""


class ConnectTimeout(NetworkError):
    """A session could not establish a connection within its total
    deadline; ``attempts`` counts the dial attempts made."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts
