"""Baseline 3: naive polling — re-run and ship everything.

The pre-continual-query workflow the paper's introduction motivates
against: the user "re-issues their query" at every refresh, the system
recomputes it from scratch and transfers the entire result. Optionally
the client filters out rows it already saw ("naively executing the
entire query and then filtering out the part of the query result that
is the same as the previous result", Section 3.3) — which saves the
user attention but none of the compute or transfer cost.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.metrics import Metrics
from repro.relational.aggregates import AggregateQuery
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.storage.database import Database

Query = Union[SPJQuery, AggregateQuery]


class NaivePoller:
    """Recompute-and-ship-all polling."""

    def __init__(
        self,
        query: Query,
        db: Database,
        metrics: Optional[Metrics] = None,
    ):
        self.query = query
        self.db = db
        self.metrics = metrics
        self.result: Relation = db.query(query, metrics)
        self.polls = 0

    def poll(self) -> Relation:
        """Re-run the query; the full result is the 'notification'."""
        self.result = self.db.query(self.query, self.metrics)
        self.polls += 1
        return self.result

    def poll_filtered(self) -> Relation:
        """Re-run, then post-filter to rows not in the previous result.

        Value-based filtering (tids are invisible to a user screen):
        a row counts as new if its value tuple was absent before.
        """
        previous_values = self.result.values_set()
        current = self.db.query(self.query, self.metrics)
        fresh = Relation(current.schema)
        for row in current:
            if row.values not in previous_values:
                fresh.add(row.tid, row.values)
        self.result = current
        self.polls += 1
        return fresh
