"""Comparison baselines. See DESIGN.md S9.

* :class:`ReevaluationRefresher` — complete re-evaluation + Diff;
* :class:`TerryContinuousQuery` — Terry et al.'s append-only model;
* :class:`NaivePoller` — re-run and ship everything.
"""

from repro.baselines.naive import NaivePoller
from repro.baselines.reeval import ReevaluationRefresher
from repro.baselines.terry import AppendOnlyViolation, TerryContinuousQuery

__all__ = [
    "AppendOnlyViolation",
    "NaivePoller",
    "ReevaluationRefresher",
    "TerryContinuousQuery",
]
