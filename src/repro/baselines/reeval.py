"""Baseline 1: complete re-evaluation + Diff (the Propagate strategy).

This is the paper's correctness yardstick turned into a refresher: at
every trigger, recompute Q from scratch over the full base relations
and Diff against the retained previous result. Identical output to
DRA, maximal compute cost — the denominator in every speedup the
benchmarks report.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.metrics import Metrics
from repro.relational.aggregates import AggregateQuery
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.delta.differential import DeltaRelation
from repro.delta.diff import diff

Query = Union[SPJQuery, AggregateQuery]


class ReevaluationRefresher:
    """Recompute-from-scratch refreshes with Diff-based notifications."""

    def __init__(
        self,
        query: Query,
        db: Database,
        metrics: Optional[Metrics] = None,
    ):
        self.query = query
        self.db = db
        self.metrics = metrics
        self.result: Relation = db.query(query, metrics)
        self.last_ts: Timestamp = db.now()
        self.refreshes = 0

    def refresh(self, ts: Optional[Timestamp] = None) -> DeltaRelation:
        """Recompute and return the change since the previous refresh."""
        if ts is None:
            ts = self.db.now()
        new_result = self.db.query(self.query, self.metrics)
        delta = diff(self.result, new_result, ts)
        self.result = new_result
        self.last_ts = ts
        self.refreshes += 1
        return delta
