"""Baseline 2: Terry et al.'s Continuous Queries (append-only).

Continuous Queries [Terry et al., SIGMOD 1992] incrementally re-run a
standing query over only the data appended since the last execution —
correct under their assumption that "database updates are limited to
append-only, disallowing deletions and modifications" (paper Section
2). This baseline reproduces that behaviour on our substrate:

* each refresh consolidates only the INSERT records since the last
  execution into a differential relation and evaluates the query's
  incremental form over them (new-tuples × existing-data, exactly
  Terry's timestamp-rewritten query);
* the cumulative result only ever grows.

In ``strict`` mode the refresher raises when it observes a delete or
modify — an honest Terry system deployed on a general database. With
``strict=False`` it silently ignores them, which is how the E9
benchmark demonstrates the stale/incorrect results that motivated the
paper's general-update DRA.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ReproError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.relation import Relation
from repro.storage.database import Database
from repro.storage.timestamps import Timestamp
from repro.storage.update_log import UpdateKind
from repro.delta.differential import DeltaRelation
from repro.dra.algorithm import dra_execute


class AppendOnlyViolation(ReproError):
    """A delete or in-place modification reached a strict Terry CQ."""


class TerryContinuousQuery:
    """An append-only continuous query over an SPJ definition."""

    def __init__(
        self,
        query: SPJQuery,
        db: Database,
        strict: bool = True,
        metrics: Optional[Metrics] = None,
    ):
        self.query = query
        self.db = db
        self.strict = strict
        self.metrics = metrics
        self.result: Relation = db.query(query, metrics)
        self.last_ts: Timestamp = db.now()
        self.refreshes = 0
        self.ignored_updates = 0

    def refresh(self, ts: Optional[Timestamp] = None) -> Relation:
        """Evaluate over appended data only; returns the new matches.

        The cumulative :attr:`result` grows by the returned rows and
        never shrinks — deletions and modifications are invisible to
        this model by construction.
        """
        if ts is None:
            ts = self.db.now()
        deltas: Dict[str, DeltaRelation] = {}
        for name in set(self.query.table_names):
            table = self.db.table(name)
            records = table.log.since(self.last_ts)
            inserts = [r for r in records if r.kind is UpdateKind.INSERT]
            skipped = len(records) - len(inserts)
            if skipped:
                if self.strict:
                    raise AppendOnlyViolation(
                        f"table {name!r} saw {skipped} non-append updates; "
                        "continuous queries require append-only sources"
                    )
                self.ignored_updates += skipped
            delta = DeltaRelation.from_records(table.schema, inserts)
            if not delta.is_empty():
                deltas[name] = delta

        self.last_ts = ts
        self.refreshes += 1
        if not deltas:
            return Relation(self.result.schema)

        outcome = dra_execute(
            self.query, self.db, deltas=deltas, ts=ts, metrics=self.metrics
        )
        new_matches = outcome.delta.insertions()
        self.result = self.result.union(new_matches)
        return new_matches
