"""Snapshot-diff sources: legacy systems that only expose full states.

The paper notes that delta availability "may not be trivial for legacy
databases" (Section 5.1). The standard workaround — also the classic
differential-file technique DRA descends from — is to diff consecutive
full snapshots on a designated key. This source does exactly that:
each :meth:`publish` of a complete state is compared to the previous
one and translated into insert/modify/delete events.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence, Tuple

from repro.errors import SourceError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.update_log import UpdateKind
from repro.sources.base import Source, SourceEvent


class SnapshotDiffSource(Source):
    """Diffs consecutive full snapshots keyed by ``key_columns``."""

    def __init__(self, schema: Schema, key_columns: Sequence[str]):
        if not key_columns:
            raise SourceError("snapshot diffing needs at least one key column")
        self._schema = schema
        self._key_positions = tuple(schema.position(c) for c in key_columns)
        self._state: Dict[Tuple, Tuple] = {}
        self._pending: List[SourceEvent] = []
        self.snapshots_published = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def _key_of(self, values: Tuple) -> Tuple:
        return tuple(values[p] for p in self._key_positions)

    def publish(self, rows: Sequence[Sequence]) -> Dict[str, int]:
        """Publish a complete new state; returns change counts.

        Duplicate keys within one snapshot are rejected — a snapshot is
        a relation, and silent last-writer-wins would hide source bugs.
        """
        new_state: Dict[Tuple, Tuple] = {}
        for row in rows:
            values = self._schema.validate_row(tuple(row))
            key = self._key_of(values)
            if key in new_state:
                raise SourceError(f"duplicate key {key!r} in snapshot")
            new_state[key] = values

        counts = {"insert": 0, "modify": 0, "delete": 0}
        for key, values in new_state.items():
            old = self._state.get(key)
            if old is None:
                self._pending.append(SourceEvent(UpdateKind.INSERT, key, values))
                counts["insert"] += 1
            elif old != values:
                self._pending.append(SourceEvent(UpdateKind.MODIFY, key, values))
                counts["modify"] += 1
        for key in self._state:
            if key not in new_state:
                self._pending.append(SourceEvent(UpdateKind.DELETE, key, None))
                counts["delete"] += 1
        self._state = new_state
        self.snapshots_published += 1
        return counts

    def drain(self) -> List[SourceEvent]:
        out = self._pending
        self._pending = []
        return out

    def __repr__(self) -> str:
        return (
            f"SnapshotDiffSource({len(self._state)} rows, "
            f"{self.snapshots_published} snapshots)"
        )


class CSVSnapshotSource(SnapshotDiffSource):
    """Snapshot diffing over CSV text — a stand-in for scraped pages
    or periodically fetched reports.

    The header row must match the schema's attribute names; values are
    coerced per attribute type.
    """

    def publish_csv(self, text: str) -> Dict[str, int]:
        reader = csv.reader(io.StringIO(text.strip()))
        rows = list(reader)
        if not rows:
            return self.publish([])
        header = [h.strip() for h in rows[0]]
        if tuple(header) != self.schema.names:
            raise SourceError(
                f"CSV header {header} does not match schema {list(self.schema.names)}"
            )
        return self.publish([self._coerce(row) for row in rows[1:] if row])

    def _coerce(self, row: Sequence[str]) -> Tuple:
        if len(row) != len(self.schema):
            raise SourceError(f"CSV row arity {len(row)} != schema {len(self.schema)}")
        out = []
        for raw, attr in zip(row, self.schema):
            raw = raw.strip()
            if attr.type is AttributeType.INT:
                out.append(int(raw))
            elif attr.type is AttributeType.FLOAT:
                out.append(float(raw))
            elif attr.type is AttributeType.BOOL:
                out.append(raw.lower() in ("1", "true", "yes"))
            else:
                out.append(raw)
        return tuple(out)
