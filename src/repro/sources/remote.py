"""Remote-site tables: delta shipping between autonomous databases.

The paper's setting is federated — "query results need to be gathered
from multiple source data repositories" owned by autonomous producers.
This module models that topology with the pieces already in hand: each
*site* is its own :class:`~repro.storage.Database`; a consumer site
mirrors a producer table by periodically pulling the producer's update
log suffix as a differential relation ("each server only generates
delta relations when communicating with the clients", §5.1), optionally
charging the transfer to a simulated network.

The consumer's CQ manager then treats the mirror like any local table —
DRA neither knows nor cares that the deltas crossed a site boundary,
which is precisely the paper's interoperability argument (§5.5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics import Metrics
from repro.relational.schema import Schema
from repro.relational.types import value_wire_size
from repro.storage.table import Table
from repro.storage.timestamps import Timestamp
from repro.storage.update_log import UpdateKind, UpdateRecord
from repro.sources.base import Source, SourceEvent


def records_wire_size(records: List[UpdateRecord]) -> int:
    """Nominal bytes to ship raw update records between sites."""
    total = 0
    for record in records:
        total += 20  # kind + tid + ts framing
        for side in (record.old, record.new):
            if side is not None:
                total += sum(value_wire_size(v) for v in side)
    return total


class RemoteTableSource(Source):
    """Pull-based replication of one producer table into a consumer.

    Each :meth:`drain` reads the producer's update-log suffix since the
    last pull and translates it into source events keyed by the
    producer's tids. The producer's own garbage collector must keep the
    suffix available — exactly the active-delta-zone contract of §5.4,
    with this replica acting as one more "CQ" whose zone boundary is
    the last pull. Use :meth:`zone_ts` to register that boundary with
    the producer's GC.
    """

    def __init__(
        self,
        producer_table: Table,
        network=None,
        producer_site: str = "producer",
        consumer_site: str = "consumer",
        metrics: Optional[Metrics] = None,
    ):
        self.table = producer_table
        self.network = network
        self.producer_site = producer_site
        self.consumer_site = consumer_site
        self.metrics = metrics
        self._pulled_through: Timestamp = 0
        self.pulls = 0

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def zone_ts(self) -> Timestamp:
        """The replication horizon: producers must retain newer records."""
        return self._pulled_through

    def drain(self) -> List[SourceEvent]:
        records = self.table.log.since(self._pulled_through)
        if records:
            self._pulled_through = records[-1].ts
        self.pulls += 1
        if self.network is not None:
            self.network.send(
                self.producer_site,
                self.consumer_site,
                records_wire_size(records) + 64,
                self.metrics,
            )
        events: List[SourceEvent] = []
        for record in records:
            if record.kind is UpdateKind.INSERT:
                events.append(
                    SourceEvent(UpdateKind.INSERT, record.tid, record.new)
                )
            elif record.kind is UpdateKind.DELETE:
                events.append(SourceEvent(UpdateKind.DELETE, record.tid, None))
            else:
                events.append(
                    SourceEvent(UpdateKind.MODIFY, record.tid, record.new)
                )
        return events

    def __repr__(self) -> str:
        return (
            f"RemoteTableSource({self.table.name!r}, "
            f"pulled_through={self._pulled_through}, pulls={self.pulls})"
        )
