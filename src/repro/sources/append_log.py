"""An append-only event feed — the Terry et al. environment.

Continuous Queries (the paper's closest prior work) assumed all sources
are append-only. This source models exactly that world: producers can
only :meth:`append`; the translator emits pure insert events. It exists
both as a realistic source (news feeds, tickers, mail) and as the
substrate for the E9 baseline comparison.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SourceError
from repro.relational.schema import Schema
from repro.storage.update_log import UpdateKind
from repro.sources.base import Source, SourceEvent


class AppendOnlyFeed(Source):
    """A write-once stream of rows."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._pending: List[SourceEvent] = []
        self._next_key = 1
        self.total_appended = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def append(self, values: Sequence) -> int:
        """Publish one row; returns its feed-assigned key."""
        validated = self._schema.validate_row(tuple(values))
        key = self._next_key
        self._next_key += 1
        self._pending.append(SourceEvent(UpdateKind.INSERT, key, validated))
        self.total_appended += 1
        return key

    def append_many(self, rows) -> List[int]:
        return [self.append(row) for row in rows]

    def drain(self) -> List[SourceEvent]:
        out = self._pending
        self._pending = []
        return out

    # The whole point of this source: no deletes, no modifies.
    def delete(self, key) -> None:
        raise SourceError("AppendOnlyFeed does not support deletion")

    def modify(self, key, values) -> None:
        raise SourceError("AppendOnlyFeed does not support modification")

    def __repr__(self) -> str:
        return (
            f"AppendOnlyFeed({self.total_appended} appended, "
            f"{len(self._pending)} pending)"
        )
