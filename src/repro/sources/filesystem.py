"""A simulated file system and its update translator.

The paper's canonical non-database example: "file system updates can be
captured by either operating system or middleware and translated into a
differential relation and fed into DRA" (Sections 1, 5.5). Since the
reproduction must be deterministic and self-contained, the file system
is simulated: an in-memory tree supporting create/write/remove/touch,
whose change journal the :class:`FileSystemSource` translates into
events over the relation ``files(path, directory, size, mtime)``.
"""

from __future__ import annotations

import posixpath
from typing import Dict, List, Tuple

from repro.errors import SourceError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.update_log import UpdateKind
from repro.sources.base import Source, SourceEvent

FILES_SCHEMA = Schema.of(
    ("path", AttributeType.STR),
    ("directory", AttributeType.STR),
    ("size", AttributeType.INT),
    ("mtime", AttributeType.INT),
)


class SimulatedFileSystem:
    """A tiny in-memory file system with a change journal.

    Paths are POSIX-style and normalized; directories are implicit
    (derived from paths). Every mutation advances an internal mtime
    counter, so histories are deterministic.
    """

    def __init__(self) -> None:
        self._files: Dict[str, Tuple[int, int]] = {}  # path -> (size, mtime)
        self._journal: List[SourceEvent] = []
        self._mtime = 0

    @staticmethod
    def _normalize(path: str) -> str:
        normalized = posixpath.normpath("/" + path.strip().lstrip("/"))
        if normalized == "/":
            raise SourceError("the root directory is not a file path")
        return normalized

    def _tick(self) -> int:
        self._mtime += 1
        return self._mtime

    def _row(self, path: str) -> Tuple[str, str, int, int]:
        size, mtime = self._files[path]
        return (path, posixpath.dirname(path), size, mtime)

    # -- operations --------------------------------------------------------

    def create(self, path: str, size: int = 0) -> None:
        path = self._normalize(path)
        if path in self._files:
            raise SourceError(f"file exists: {path}")
        self._files[path] = (size, self._tick())
        self._journal.append(
            SourceEvent(UpdateKind.INSERT, path, self._row(path))
        )

    def write(self, path: str, size: int) -> None:
        """Overwrite a file's contents (size change + mtime bump)."""
        path = self._normalize(path)
        if path not in self._files:
            raise SourceError(f"no such file: {path}")
        self._files[path] = (size, self._tick())
        self._journal.append(
            SourceEvent(UpdateKind.MODIFY, path, self._row(path))
        )

    def touch(self, path: str) -> None:
        """Update mtime only (or create an empty file)."""
        path = self._normalize(path)
        if path in self._files:
            size, __ = self._files[path]
            self._files[path] = (size, self._tick())
            self._journal.append(
                SourceEvent(UpdateKind.MODIFY, path, self._row(path))
            )
        else:
            self.create(path, 0)

    def remove(self, path: str) -> None:
        path = self._normalize(path)
        if path not in self._files:
            raise SourceError(f"no such file: {path}")
        del self._files[path]
        self._journal.append(SourceEvent(UpdateKind.DELETE, path, None))

    def rename(self, old: str, new: str) -> None:
        """A rename is a delete of the old path + create of the new one
        (that is exactly what a path-keyed relation observes)."""
        old = self._normalize(old)
        new = self._normalize(new)
        if old not in self._files:
            raise SourceError(f"no such file: {old}")
        if new in self._files:
            raise SourceError(f"target exists: {new}")
        size, __ = self._files[old]
        self.remove(old)
        self.create(new, size)

    # -- inspection ----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._files

    def size_of(self, path: str) -> int:
        return self._files[self._normalize(path)][0]

    def listdir(self, directory: str) -> List[str]:
        directory = posixpath.normpath("/" + directory.strip().lstrip("/"))
        return sorted(
            path
            for path in self._files
            if posixpath.dirname(path) == directory
        )

    def file_count(self) -> int:
        return len(self._files)

    def drain_journal(self) -> List[SourceEvent]:
        out = self._journal
        self._journal = []
        return out


class FileSystemSource(Source):
    """Translates a :class:`SimulatedFileSystem` journal into events."""

    def __init__(self, fs: SimulatedFileSystem):
        self.fs = fs

    @property
    def schema(self) -> Schema:
        return FILES_SCHEMA

    def drain(self) -> List[SourceEvent]:
        return self.fs.drain_journal()
