"""DIOM-style source translators (paper Section 5.5). See DESIGN.md S6."""

from repro.sources.append_log import AppendOnlyFeed
from repro.sources.base import MirrorAdapter, Source, SourceEvent
from repro.sources.filesystem import (
    FILES_SCHEMA,
    FileSystemSource,
    SimulatedFileSystem,
)
from repro.sources.remote import RemoteTableSource
from repro.sources.snapshot import CSVSnapshotSource, SnapshotDiffSource

__all__ = [
    "AppendOnlyFeed",
    "CSVSnapshotSource",
    "FILES_SCHEMA",
    "FileSystemSource",
    "MirrorAdapter",
    "RemoteTableSource",
    "SimulatedFileSystem",
    "SnapshotDiffSource",
    "Source",
    "SourceEvent",
]
