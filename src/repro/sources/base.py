"""Source adapters: DIOM-style translators (paper Section 5.5).

"For those information sources other than relational databases, simple
translators (as part of the DIOM services) will be used to extract the
updates in the form of differential relations."

A :class:`Source` exposes a relational schema and yields
:class:`~repro.storage.update_log.UpdateRecord`-shaped changes; a
:class:`MirrorAdapter` pulls them and applies them to a local mirror
table, whose update log then feeds DRA exactly like any native table.
The adapter is the entire integration surface — DRA itself never knows
where a delta came from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SourceError
from repro.relational.relation import Values
from repro.relational.schema import Schema
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.update_log import UpdateKind


class SourceEvent:
    """One change reported by an external source.

    ``key`` identifies the external entity (file path, account id,
    message id ...); the adapter maps keys to local tids.
    """

    __slots__ = ("kind", "key", "values")

    def __init__(self, kind: UpdateKind, key, values: Optional[Values]):
        if kind is not UpdateKind.DELETE and values is None:
            raise SourceError(f"{kind.value} event needs values")
        self.kind = kind
        self.key = key
        self.values = values

    def __repr__(self) -> str:
        return f"SourceEvent({self.kind.value}, key={self.key!r}, {self.values!r})"


class Source:
    """Anything that can report its schema and drain pending events."""

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def drain(self) -> List[SourceEvent]:
        """Return and clear all pending events, in occurrence order."""
        raise NotImplementedError


class MirrorAdapter:
    """Mirrors an external source into a local table.

    Each :meth:`sync` drains the source and applies the events in one
    transaction, so downstream CQs observe a consistent batch. Unknown
    keys on modify are treated as inserts and deletes of unknown keys
    are ignored (sources may compact their histories), with counters so
    tests can assert on the slippage.
    """

    def __init__(self, db: Database, table_name: str, source: Source):
        self.db = db
        self.source = source
        if table_name in db:
            self.table: Table = db.table(table_name)
            if self.table.schema != source.schema:
                raise SourceError(
                    f"mirror table {table_name!r} schema does not match source"
                )
        else:
            self.table = db.create_table(table_name, source.schema)
        self._key_to_tid: Dict[object, int] = {}
        self.coerced_inserts = 0
        self.dropped_deletes = 0

    def sync(self) -> int:
        """Pull pending source events into the mirror; returns count."""
        events = self.source.drain()
        if not events:
            return 0
        with self.db.begin() as txn:
            for event in events:
                self._apply(txn, event)
        return len(events)

    def _apply(self, txn, event: SourceEvent) -> None:
        tid = self._key_to_tid.get(event.key)
        # Liveness must be judged through the transaction's own view:
        # a batch may insert and then modify/delete the same key before
        # anything is committed to the table.
        live = tid is not None and txn.read(self.table, tid) is not None
        if event.kind is UpdateKind.INSERT:
            if live:
                # Source re-announced a live key: treat as modify.
                txn.modify_in(self.table, tid, values=event.values)
                return
            self._key_to_tid[event.key] = txn.insert_into(
                self.table, event.values
            )
        elif event.kind is UpdateKind.MODIFY:
            if not live:
                self.coerced_inserts += 1
                self._key_to_tid[event.key] = txn.insert_into(
                    self.table, event.values
                )
            else:
                txn.modify_in(self.table, tid, values=event.values)
        else:  # DELETE
            if not live:
                self.dropped_deletes += 1
                return
            txn.delete_from(self.table, tid)
            del self._key_to_tid[event.key]

    def __repr__(self) -> str:
        return (
            f"MirrorAdapter({self.table.name!r}, {len(self.table)} rows, "
            f"{self.coerced_inserts} coerced, {self.dropped_deletes} dropped)"
        )
