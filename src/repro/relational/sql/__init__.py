"""A small SQL-subset front end.

Supports exactly the fragment the paper's queries live in:
``SELECT``/``FROM``/``WHERE`` over multiple relations (SPJ), column
aliases, arithmetic and ``ABS`` in predicates, and global or grouped
``SUM``/``COUNT``/``AVG``/``MIN``/``MAX`` aggregates.

>>> parse_query("SELECT name, price FROM stocks WHERE price > 120")
"""

from repro.relational.sql.lexer import Token, TokenKind, tokenize
from repro.relational.sql.parser import parse_query

__all__ = ["Token", "TokenKind", "tokenize", "parse_query"]
