"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from repro.errors import SQLSyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "GROUP",
    "BY",
    "HAVING",
    "TRUE",
    "FALSE",
    "ABS",
    "SUM",
    "COUNT",
    "AVG",
    "MIN",
    "MAX",
    "BETWEEN",
}

# Longest symbols first so `<=` wins over `<`.
SYMBOLS = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/"]


class Token:
    __slots__ = ("kind", "text", "value", "position")

    def __init__(self, kind: TokenKind, text: str, position: int, value: Any = None):
        self.kind = kind
        self.text = text
        self.value = value
        self.position = position

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; always ends with one EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            token, i = _read_string(text, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_word(text, i)
            tokens.append(token)
            continue
        symbol = _match_symbol(text, i)
        if symbol is not None:
            tokens.append(Token(TokenKind.SYMBOL, symbol, i))
            i += len(symbol)
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


def _match_symbol(text: str, i: int) -> Optional[str]:
    for symbol in SYMBOLS:
        if text.startswith(symbol, i):
            return symbol
    return None


def _read_string(text: str, start: int):
    """Read a single-quoted string; '' escapes a quote."""
    i = start + 1
    parts: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return (
                Token(TokenKind.STRING, text[start : i + 1], start, "".join(parts)),
                i + 1,
            )
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start)


def _read_number(text: str, start: int):
    i = start
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # Don't swallow a dot not followed by a digit (e.g. `1.x`).
            if i + 1 >= n or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    raw = text[start:i]
    value: Any = float(raw) if seen_dot else int(raw)
    return Token(TokenKind.NUMBER, raw, start, value), i


def _read_word(text: str, start: int):
    i = start
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    raw = text[start:i]
    upper = raw.upper()
    if upper in KEYWORDS:
        return Token(TokenKind.KEYWORD, upper, start), i
    return Token(TokenKind.IDENT, raw, start), i
